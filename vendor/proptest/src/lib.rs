//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this workspace vendors a
//! deterministic mini-implementation of the proptest API its test suites
//! use: the [`proptest!`] macro, [`Strategy`] combinators (`prop_map`,
//! `prop_flat_map`, tuples, ranges, [`Just`]), `prop::collection::vec`,
//! `prop::sample::select`, `prop::option::of`, [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its seed and values; rerunning
//!   is deterministic, so the failure reproduces exactly.
//! - **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so runs are reproducible across machines and reorderings.
//! - `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test-case RNG: xoshiro-free SplitMix64 (speed is irrelevant here,
/// determinism is everything).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Runner configuration (`cases` is the only knob this stand-in honors).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// produces one value per call.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; at least one arm is required.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Combinator namespaces mirroring upstream's `prop::` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec`]: an exact size or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// Generates `Vec`s with length drawn from `len` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }

        /// See [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.hi - self.len.lo).max(1) as u64;
                let n = self.len.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        /// See [`select`].
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Generates `None` about a quarter of the time, `Some` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Derives a stable RNG seed from a test's name.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `cases` deterministic cases of `body`, panicking with diagnostics on
/// the first failure. Used by the [`proptest!`] macro; not public API.
pub fn run_cases<F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>>(
    name: &str,
    cases: u32,
    mut body: F,
) {
    let mut rng = TestRng::seed_from_u64(seed_of(name));
    for case in 0..cases {
        if let Err(e) = body(&mut rng, case) {
            panic!("proptest '{name}' failed at case {case}/{cases}: {e}");
        }
    }
}

/// Asserts a condition inside a property, recording a failure instead of
/// unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __a, __b
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($arm) as $crate::BoxedStrategy<_>),+])
    };
}

/// Declares deterministic property tests; see the crate docs for the
/// differences from upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]: splits off one test fn at a
/// time and hands its argument list to [`__proptest_one!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_one! { ($cfg) [$(#[$meta])*] fn $name () ($($args)*) $body }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Internal argument normalizer: rewrites both `pat in strategy` and the
/// `name: Type` (= `name in any::<Type>()`) forms into `(pat => strategy)`
/// pairs, then emits the test function.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_one {
    // All arguments normalized: emit the function.
    (($cfg:expr) [$(#[$meta:meta])*] fn $name:ident ($(($p:pat => $s:expr))*) () $body:block) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strats = ($($s,)*);
            $crate::run_cases(stringify!($name), __cfg.cases, |__rng, _case| {
                let ($($p,)*) = $crate::Strategy::generate(&__strats, __rng);
                $body
                ::std::result::Result::Ok(())
            });
        }
    };
    // `pat in strategy` (last argument, optional trailing comma).
    (($cfg:expr) [$($meta:tt)*] fn $name:ident ($($done:tt)*) ($p:pat in $s:expr $(,)?) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] fn $name ($($done)* ($p => $s)) () $body }
    };
    // `pat in strategy`, more arguments follow.
    (($cfg:expr) [$($meta:tt)*] fn $name:ident ($($done:tt)*) ($p:pat in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] fn $name ($($done)* ($p => $s)) ($($rest)*) $body }
    };
    // `name: Type` (last argument, optional trailing comma).
    (($cfg:expr) [$($meta:tt)*] fn $name:ident ($($done:tt)*) ($p:ident: $t:ty $(,)?) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] fn $name ($($done)* ($p => $crate::any::<$t>())) () $body }
    };
    // `name: Type`, more arguments follow.
    (($cfg:expr) [$($meta:tt)*] fn $name:ident ($($done:tt)*) ($p:ident: $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_one! { ($cfg) [$($meta)*] fn $name ($($done)* ($p => $crate::any::<$t>())) ($($rest)*) $body }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let o = prop::sample::select(vec![1, 2, 3]).generate(&mut rng);
            assert!([1, 2, 3].contains(&o));
            let xs = prop::collection::vec(0u32..5, 2..6).generate(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 6);
            let m = (0u8..4).prop_map(|x| x * 2).generate(&mut rng);
            assert!(m % 2 == 0 && m < 8);
            let u = prop_oneof![Just(1u8), Just(2u8)].generate(&mut rng);
            assert!(u == 1u8 || u == 2u8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in any::<u64>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + 1, a + 1);
            prop_assert_ne!(b, b.wrapping_add(1));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_cases("x", 4, |_rng, case| {
            prop_assert!(case < 2, "boom at {case}");
            Ok(())
        });
    }
}
