//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this workspace vendors a
//! small wall-clock benchmark harness exposing the criterion API surface its
//! benches use: [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`, and
//! [`Bencher::iter`]. No statistics beyond min/mean — enough to compare
//! hot-path changes, not a criterion replacement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench("", &id, 10, f);
        self
    }

    /// Upstream-API shim: prints nothing extra.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&self.name, &id, self.sample_size, f);
        self
    }

    /// Ends the group (upstream-API shim).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured round.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        // Aim for ~10 ms per sample, clamped to keep total time bounded.
        let per = (Duration::from_millis(10).as_nanos() / once.as_nanos().max(1)) as u64;
        self.iters_per_sample = per.clamp(1, 1000);
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(t0.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.samples.is_empty() || b.iters_per_sample == 0 {
        eprintln!("  {label}: no samples (closure never called iter)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
    let best = b.samples.iter().map(&per_iter).fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().map(&per_iter).sum::<f64>() / b.samples.len() as f64;
    eprintln!("  {label}: min {:.0} ns/iter, mean {:.0} ns/iter", best, mean);
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0, "benchmark closure ran");
    }
}
