//! Vendored offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `rand` 0.9 API it actually
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::random`], and
//! [`Rng::random_range`] on [`rngs::StdRng`].
//!
//! The generator is SplitMix64 feeding xoshiro256** — deterministic,
//! seedable, and statistically solid for synthetic-workload generation.
//! Streams differ from upstream `rand`, which is fine: everything in this
//! repo that consumes randomness asserts *invariants*, not exact values.

#![forbid(unsafe_code)]

/// A seedable random number generator (minimal `rand`-compatible form).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable as [`Rng::random_range`] bounds.
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// The user-facing generator trait (minimal `rand`-compatible form).
pub trait Rng {
    /// Produces the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` (integers: full range; `f64`: `[0, 1)`).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a value uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift range reduction (Lemire); the tiny bias is
                // irrelevant for workload synthesis.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }
}
