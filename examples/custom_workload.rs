//! Build your own workload against the public API: assemble a kernel with
//! the `sim-isa` DSL, lay out its data, and run it under every technique.
//!
//! The kernel is a two-level indirection with a data-dependent branch —
//! exactly the pattern class DVR targets:
//!
//! ```text
//! for (i = 0; i < N; i++) {
//!     v = idx[i];                 // striding
//!     w = table[v];               // dependent indirect
//!     if (w & 1) acc += spill[w % M];  // divergent second level
//! }
//! ```
//!
//! ```text
//! cargo run --release -p dvr-sim --example custom_workload
//! ```

use dvr_sim::{simulate, SimConfig, Technique};
use sim_isa::{Asm, Reg, SparseMemory};
use workloads::Workload;

fn build() -> Workload {
    const N: usize = 64 * 1024;
    const M: usize = 512 * 1024; // 4 MB table per array
    let idx_base = 0x100_0000u64;
    let table_base = 0x200_0000u64;
    let spill_base = 0x800_0000u64;

    // Data: pseudo-random indices and table contents.
    let mut mem = SparseMemory::new();
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for k in 0..N as u64 {
        let v = next() % M as u64;
        mem.write_u64(idx_base + 8 * k, v);
    }
    for k in 0..M as u64 {
        mem.write_u64(table_base + 8 * k, next());
    }

    // Kernel.
    let (ridx, rtab, rspill) = (Reg::R1, Reg::R2, Reg::R3);
    let (i, n, v, w, f, acc, c, t) =
        (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R11);
    let mut asm = Asm::new();
    asm.li(ridx, idx_base as i64);
    asm.li(rtab, table_base as i64);
    asm.li(rspill, spill_base as i64);
    asm.li(i, 0);
    asm.li(n, N as i64);
    let top = asm.here();
    let skip = asm.label();
    asm.ld8_idx(v, ridx, i, 3); // striding
    asm.ld8_idx(w, rtab, v, 3); // indirect
    asm.andi(f, w, 1);
    asm.bez(f, skip); // data-dependent branch
    asm.andi(t, w, (M - 1) as i64);
    asm.ld8_idx(t, rspill, t, 3); // divergent second level
    asm.add(acc, acc, t);
    asm.bind(skip);
    asm.addi(i, i, 1);
    asm.slt(c, i, n);
    asm.bnz(c, top);
    asm.halt();

    Workload {
        name: "custom".into(),
        prog: asm.finish().expect("assembles"),
        mem,
        description: "two-level indirection with divergent second level".into(),
        regions: vec![("idx".into(), idx_base), ("table".into(), table_base)],
    }
}

fn main() {
    let wl = build();
    println!("{} — {}\n", wl.name, wl.description);
    println!("{:>10} {:>8} {:>9} {:>7}", "technique", "IPC", "speedup", "MLP");
    let base = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(150_000));
    for t in [
        Technique::Baseline,
        Technique::Pre,
        Technique::Imp,
        Technique::Vr,
        Technique::Dvr,
        Technique::Oracle,
    ] {
        let r = simulate(&wl, &SimConfig::new(t).with_max_instructions(150_000));
        println!("{:>10} {:>8.3} {:>8.2}x {:>7.1}", t.name(), r.ipc, r.speedup_over(&base), r.mlp);
    }
}
