//! Quickstart: simulate one benchmark under the baseline core and under
//! Decoupled Vector Runahead, and compare.
//!
//! ```text
//! cargo run --release -p dvr-sim --example quickstart
//! ```

use dvr_sim::{simulate, SimConfig, Technique};
use workloads::{Benchmark, SizeClass};

fn main() {
    // Build the paper's Figure-1 workload (Camel: C[hash(B[hash(A[i])])]++)
    // at a reduced size so this example runs in seconds.
    let workload = Benchmark::Camel.build(None, SizeClass::Small, 42);
    println!("workload : {} — {}", workload.name, workload.description);
    println!("program  : {} static instructions", workload.prog.len());

    // Run 200k instructions on the Table-1 baseline out-of-order core...
    let base_cfg = SimConfig::new(Technique::Baseline).with_max_instructions(200_000);
    let base = simulate(&workload, &base_cfg);
    println!(
        "\nbaseline : IPC {:.3} | MLP {:.1} | {:.0}% cycles window-full | {} DRAM reads",
        base.ipc,
        base.mlp,
        100.0 * base.core.rob_full_stall_fraction(),
        base.mem.dram_reads(),
    );

    // ...and with the DVR subthread attached.
    let dvr_cfg = SimConfig::new(Technique::Dvr).with_max_instructions(200_000);
    let dvr = simulate(&workload, &dvr_cfg);
    println!(
        "DVR      : IPC {:.3} | MLP {:.1} | {} subthread episodes | {} lane loads",
        dvr.ipc, dvr.mlp, dvr.engine.episodes, dvr.engine.runahead_loads,
    );
    println!("\nspeedup  : {:.2}x", dvr.speedup_over(&base));
    if let Some(t) = dvr.timeliness() {
        println!(
            "timeliness: {:.0}% of prefetched lines found in L1, {:.0}% L2, {:.0}% L3, {:.0}% off-chip",
            100.0 * t[0],
            100.0 * t[1],
            100.0 * t[2],
            100.0 * t[3]
        );
    }
}
