//! Walk through what DVR actually does on breadth-first search (the
//! paper's Algorithm 1): stride detection, Discovery Mode, the vectorized
//! subthread, and Nested Vector Runahead on short inner loops.
//!
//! ```text
//! cargo run --release -p dvr-sim --example bfs_prefetch_demo
//! ```

use dvr_sim::{simulate, DvrConfig, DvrEngine, SimConfig, Technique};
use dvr_sim::{CoreConfig, HierarchyConfig, MemoryHierarchy, OooCore};
use workloads::{Benchmark, GraphInput, SizeClass};

fn main() {
    // Urand is the paper's hard case: uniformly small vertex degrees mean
    // short inner loops, so plain 128-lane vectorization over-fetches and
    // Nested Vector Runahead has to find iterations across outer loops.
    for input in [GraphInput::Kr, GraphInput::Ur] {
        let wl = Benchmark::Bfs.build(Some(input), SizeClass::Small, 42);
        println!("=== bfs on {} ===", input.name());

        // Run with direct engine access so we can inspect DVR's internals.
        let mut engine = DvrEngine::new(DvrConfig::default());
        let mut core = OooCore::new(CoreConfig::default());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let mut mem = wl.mem.clone();
        let stats =
            *core.run(&wl.prog, &mut mem, &mut hier, &mut engine, 150_000).expect("run failed");

        let d = engine.stats();
        println!("  IPC                      {:.3}", stats.ipc());
        println!("  subthread episodes       {}", d.episodes);
        println!("  nested (NDM) episodes    {}", d.ndm_episodes);
        println!("  lanes spawned            {}", d.lanes_spawned);
        println!("  lane loads issued        {}", d.lane_loads);
        println!("  diverged episodes        {}", d.diverged_episodes);
        println!("  innermost switches       {}", d.innermost_switches);
        println!("  covered-window skips     {}", d.covered_skips);

        // Compare against the baseline for context.
        let base =
            simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(150_000));
        println!("  speedup over OoO         {:.2}x", stats.ipc() / base.ipc);
        println!();
    }
}
