//! Reproduce the paper's headline trend (Figures 2 and 12) on one
//! benchmark: VR's benefit shrinks as the ROB grows, DVR's does not.
//!
//! ```text
//! cargo run --release -p dvr-sim --example rob_sweep
//! ```

use dvr_sim::{simulate, SimConfig, Technique};
use workloads::{Benchmark, SizeClass};

fn main() {
    let wl = Benchmark::Hj2.build(None, SizeClass::Small, 42);
    let instrs = 150_000;

    // Normalize everything to the 350-entry-ROB baseline, as the paper does.
    let base350 = simulate(
        &wl,
        &SimConfig::new(Technique::Baseline).with_rob(350).with_max_instructions(instrs),
    );

    println!("HJ2, normalized to OoO with a 350-entry ROB\n");
    println!("{:>6} {:>10} {:>10} {:>10}", "ROB", "OoO", "VR", "DVR");
    for rob in [128usize, 192, 224, 350, 512] {
        let mut row = format!("{rob:>6}");
        for t in [Technique::Baseline, Technique::Vr, Technique::Dvr] {
            let cfg = SimConfig::new(t).with_rob(rob).with_max_instructions(instrs);
            let r = simulate(&wl, &cfg);
            row.push_str(&format!(" {:>10.3}", r.ipc / base350.ipc));
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper Figs 2 & 12): the OoO column grows with ROB size, \
         VR's advantage over it shrinks, DVR's advantage persists."
    );
}
