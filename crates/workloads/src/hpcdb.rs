//! The eight hpc-db benchmarks (database and HPC kernels with indirect
//! memory accesses), as used by the paper and its predecessors
//! (Ainsworth & Jones; Naithani et al.).
//!
//! Where the original programs are not redistributable, each kernel is a
//! faithful re-expression of the published access pattern (see DESIGN.md
//! §2): the striding index stream, the depth of the dependent chain, the
//! hash/address arithmetic between levels, and the presence or absence of
//! data-dependent branches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_isa::{Asm, Reg, SparseMemory};

use crate::graphs::rmat;
use crate::suite::{Layout, SizeClass, Workload};

/// Knuth's multiplicative-hash constant (fits in an i64 immediate).
const HASH_K: i64 = 0x2545_F491_4F6C_DD1D;

fn fill_random(mem: &mut SparseMemory, base: u64, n: usize, modulo: u64, rng: &mut StdRng) {
    for k in 0..n {
        mem.write_u64(base + 8 * k as u64, rng.random_range(0..modulo));
    }
}

/// Stand-in for the per-iteration compute of the original benchmarks
/// (payload checksums, key comparisons, rank arithmetic) that the lean
/// kernels would otherwise omit. Keeps instructions-per-miss near the
/// paper's regime so the 350-entry window holds a realistic number of
/// iterations (DESIGN.md §2).
pub(crate) fn busy_work(asm: &mut Asm, acc: Reg, val: Reg, rounds: usize) {
    for k in 0..rounds {
        asm.xor(acc, acc, val);
        asm.alui(sim_isa::AluOp::Add, acc, acc, 0x9E37 + k as i64);
    }
}

/// Camel: the paper's Figure 1 pattern, `C[hash(B[hash(A[i])])]++` — a
/// two-level hashed indirect chain with a read-modify-write at the end.
pub fn camel(size: SizeClass, seed: u64) -> Workload {
    let n = size.elems(1 << 20);
    let table = size.elems(1 << 21);
    let mask = (table - 1) as i64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let a = layout.alloc_words(n);
    let b = layout.alloc_words(table);
    let c_arr = layout.alloc_words(table);
    fill_random(&mut mem, a, n, u64::MAX, &mut rng);
    fill_random(&mut mem, b, table, u64::MAX, &mut rng);

    // r1 A, r2 B, r3 C; r4 i, r5 n, r6 v, r7 h, r8 k, r13 cnd, r15 tmp
    let mut asm = Asm::new();
    asm.region("A", a, 8 * n as u64);
    asm.region("B", b, 8 * table as u64);
    asm.region("C", c_arr, 8 * table as u64);
    let (ra, rb, rc) = (Reg::R1, Reg::R2, Reg::R3);
    let (i, nn, v, h, kreg, cnd, tmp) =
        (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R13, Reg::R15);
    asm.li(ra, a as i64);
    asm.li(rb, b as i64);
    asm.li(rc, c_arr as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    asm.li(kreg, HASH_K);
    let top = asm.here();
    asm.ld8_idx(v, ra, i, 3); // A[i]           (striding)
    asm.mul(h, v, kreg); // hash
    asm.shri(h, h, 24);
    asm.andi(h, h, mask);
    asm.ld8_idx(v, rb, h, 3); // B[hash]        (indirect level 1)
    asm.mul(h, v, kreg);
    asm.shri(h, h, 24);
    asm.andi(h, h, mask);
    asm.ld8_idx(tmp, rc, h, 3); // C[hash]       (indirect level 2)
    asm.addi(tmp, tmp, 1);
    asm.st8_idx(tmp, rc, h, 3); // C[hash]++
    busy_work(&mut asm, h, v, 8);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    asm.halt();

    Workload {
        name: "Camel".to_string(),
        prog: asm.finish().expect("camel assembles"),
        mem,
        description: "Figure-1 pattern: C[hash(B[hash(A[i])])]++, two hashed levels".to_string(),
        regions: vec![("A".into(), a), ("B".into(), b), ("C".into(), c_arr)],
    }
}

/// Graph500: top-down BFS on a Graph500-parameter Kronecker graph.
pub fn graph500(size: SizeClass, seed: u64) -> Workload {
    let scale = 16u32.saturating_sub(size.graph_scale_shift()).max(6);
    let g = rmat(scale, 16, 0.57, 0.19, 0.19, seed ^ 0x500);
    let mut wl = crate::gap::build_bfs_like("Graph500", &g, "Kron(graph500)");
    wl.description = "Graph500 top-down BFS step on a scale-16 Kronecker graph".to_string();
    wl
}

/// Hash join probe with `levels` chained bucket elements per tuple (HJ2 /
/// HJ8 in the paper: hash joins with two and eight elements per bucket):
/// each element dereference depends on the previous one, giving a deep
/// dependent chain that no stride or affine prefetcher can follow.
pub fn hashjoin(levels: usize, size: SizeClass, seed: u64) -> Workload {
    assert!(levels >= 1, "hash join needs at least one element per bucket");
    let n = size.elems(1 << 20);
    let table = size.elems(1 << 21);
    let mask = (table - 1) as i64;
    let mut rng = StdRng::seed_from_u64(seed ^ (0x6A + levels as u64));
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let keys = layout.alloc_words(n);
    let ht = layout.alloc_words(table);
    let out = layout.alloc_words(n);
    fill_random(&mut mem, keys, n, u64::MAX, &mut rng);
    fill_random(&mut mem, ht, table, u64::MAX, &mut rng);

    // r1 keys, r2 HT, r3 out; r4 i, r5 n, r6 k, r7 h, r8 K, r9 v,
    // r10 acc, r13 c
    let mut asm = Asm::new();
    asm.region("keys", keys, 8 * n as u64);
    asm.region("table", ht, 8 * table as u64);
    asm.region("out", out, 8 * n as u64);
    let (rk, rht, rout) = (Reg::R1, Reg::R2, Reg::R3);
    let (i, nn, k, h, kc, v, acc, cnd) =
        (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R13);
    asm.li(rk, keys as i64);
    asm.li(rht, ht as i64);
    asm.li(rout, out as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    asm.li(kc, HASH_K);
    let top = asm.here();
    asm.ld8_idx(k, rk, i, 3); // keys[i]        (striding)
    asm.li(acc, 0);
    for _ in 0..levels {
        // h = hash(k); v = HT[h]; k += v — each element dereference
        // depends on the previous one (bucket-chain walk).
        asm.mul(h, k, kc);
        asm.shri(h, h, 24);
        asm.andi(h, h, mask);
        asm.ld8_idx(v, rht, h, 3); // bucket element  (dependent indirect)
        asm.add(k, k, v);
        asm.add(acc, acc, v);
    }
    asm.st8_idx(acc, rout, i, 3);
    busy_work(&mut asm, h, acc, 8);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    asm.halt();

    Workload {
        name: format!("HJ{levels}"),
        prog: asm.finish().expect("hashjoin assembles"),
        mem,
        description: format!("hash-join probe: {levels} chained bucket-element loads per tuple"),
        regions: vec![("keys".into(), keys), ("table".into(), ht), ("out".into(), out)],
    }
}

/// Kangaroo: data-dependent pointer hops where *which* table is hopped
/// into depends on the value — broad per-lane divergence.
pub fn kangaroo(size: SizeClass, seed: u64) -> Workload {
    let n = size.elems(1 << 20);
    let table = size.elems(1 << 20);
    let mask = (table - 1) as i64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4B);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let a = layout.alloc_words(n);
    let t1 = layout.alloc_words(table);
    let t2 = layout.alloc_words(table);
    fill_random(&mut mem, a, n, u64::MAX, &mut rng);
    fill_random(&mut mem, t1, table, u64::MAX, &mut rng);
    fill_random(&mut mem, t2, table, u64::MAX, &mut rng);

    // r1 A, r2 T1, r3 T2; r4 i, r5 n, r6 x, r7 h, r8 acc, r12 parity,
    // r13 c
    let mut asm = Asm::new();
    asm.region("A", a, 8 * n as u64);
    asm.region("T1", t1, 8 * table as u64);
    asm.region("T2", t2, 8 * table as u64);
    let (ra, rt1, rt2) = (Reg::R1, Reg::R2, Reg::R3);
    let (i, nn, x, h, acc, parity, cnd) =
        (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R12, Reg::R13);
    asm.li(ra, a as i64);
    asm.li(rt1, t1 as i64);
    asm.li(rt2, t2 as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    let top = asm.here();
    asm.ld8_idx(x, ra, i, 3); // A[i]            (striding)
    for _ in 0..3 {
        // Hop: x = (x&1 ? T1 : T2)[(x>>1) & mask] — value-dependent table.
        let else_arm = asm.label();
        let join = asm.label();
        asm.andi(parity, x, 1);
        asm.shri(h, x, 1);
        asm.andi(h, h, mask);
        asm.bez(parity, else_arm); // data-dependent branch
        asm.ld8_idx(x, rt1, h, 3); // hop into T1    (indirect)
        asm.jmp(join);
        asm.bind(else_arm);
        asm.ld8_idx(x, rt2, h, 3); // hop into T2    (indirect)
        asm.bind(join);
    }
    asm.add(acc, acc, x);
    busy_work(&mut asm, h, x, 8);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    asm.halt();

    Workload {
        name: "Kangaroo".to_string(),
        prog: asm.finish().expect("kangaroo assembles"),
        mem,
        description: "3 value-dependent pointer hops per key across two tables (divergent)"
            .to_string(),
        regions: vec![("A".into(), a), ("T1".into(), t1), ("T2".into(), t2)],
    }
}

/// NAS-CG kernel: sparse matrix-vector multiply (CSR, integer values).
pub fn nas_cg(size: SizeClass, seed: u64) -> Workload {
    let rows = size.elems(1 << 18);
    let nnz_per_row = 12usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC6);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let offs = layout.alloc_words(rows + 1);
    let cols = layout.alloc_words(rows * nnz_per_row);
    let vals = layout.alloc_words(rows * nnz_per_row);
    let x = layout.alloc_words(rows);
    let y = layout.alloc_words(rows);
    for r in 0..=rows {
        mem.write_u64(offs + 8 * r as u64, (r * nnz_per_row) as u64);
    }
    for k in 0..rows * nnz_per_row {
        mem.write_u64(cols + 8 * k as u64, rng.random_range(0..rows as u64));
        mem.write_u64(vals + 8 * k as u64, rng.random_range(1..100));
    }
    fill_random(&mut mem, x, rows, 1000, &mut rng);

    // r1 offs, r2 cols, r3 vals, r4 x, r5 y; r6 row, r7 n, r8 i, r9 e,
    // r10 cidx, r11 xv, r12 vv, r13 c, r14 sum, r15 tmp
    let mut asm = Asm::new();
    asm.region("offsets", offs, 8 * (rows as u64 + 1));
    asm.region("cols", cols, 8 * (rows * nnz_per_row) as u64);
    asm.region("vals", vals, 8 * (rows * nnz_per_row) as u64);
    asm.region("x", x, 8 * rows as u64);
    asm.region("y", y, 8 * rows as u64);
    let (roffs, rcols, rvals, rx, ry) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    let (row, n, i, e, cidx, xv, vv, cnd, sum, tmp) = (
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    );
    asm.li(roffs, offs as i64);
    asm.li(rcols, cols as i64);
    asm.li(rvals, vals as i64);
    asm.li(rx, x as i64);
    asm.li(ry, y as i64);
    asm.li(row, 0);
    asm.li(n, rows as i64);
    let outer = asm.here();
    let inner_done = asm.label();
    asm.ld8_idx(i, roffs, row, 3);
    asm.addi(tmp, row, 1);
    asm.ld8_idx(e, roffs, tmp, 3);
    asm.li(sum, 0);
    asm.slt(cnd, i, e);
    asm.bez(cnd, inner_done);
    let inner = asm.here();
    asm.ld8_idx(cidx, rcols, i, 3); // col index     (striding)
    asm.ld8_idx(vv, rvals, i, 3); // value          (striding)
    asm.ld8_idx(xv, rx, cidx, 3); // x[col]         (indirect)
    asm.mul(xv, xv, vv);
    asm.add(sum, sum, xv);
    busy_work(&mut asm, xv, vv, 4);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, e);
    asm.bnz(cnd, inner);
    asm.bind(inner_done);
    asm.st8_idx(sum, ry, row, 3);
    asm.addi(row, row, 1);
    asm.slt(cnd, row, n);
    asm.bnz(cnd, outer);
    asm.halt();

    Workload {
        name: "NAS-CG".to_string(),
        prog: asm.finish().expect("nas-cg assembles"),
        mem,
        description: "CSR SpMV: col/val stride streams, x[col] indirect gather per row".to_string(),
        regions: vec![
            ("offsets".into(), offs),
            ("cols".into(), cols),
            ("vals".into(), vals),
            ("x".into(), x),
            ("y".into(), y),
        ],
    }
}

/// NAS-IS kernel: counting-sort histogram, `C[keys[i]]++`.
pub fn nas_is(size: SizeClass, seed: u64) -> Workload {
    let n = size.elems(1 << 21);
    // NAS-IS class keys span a narrower range than GUPS's table: the
    // histogram is partially cache-resident (hot head, cold tail).
    let range = size.elems(1 << 19);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x15);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let keys = layout.alloc_words(n);
    let hist = layout.alloc_words(range);
    for k in 0..n {
        mem.write_u64(keys + 8 * k as u64, rng.random_range(0..range as u64));
    }

    // r1 keys, r2 hist; r4 i, r5 n, r6 k, r7 tmp, r13 c
    let mut asm = Asm::new();
    asm.region("keys", keys, 8 * n as u64);
    asm.region("hist", hist, 8 * range as u64);
    let (rk, rh) = (Reg::R1, Reg::R2);
    let (i, nn, k, tmp, cnd) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R13);
    asm.li(rk, keys as i64);
    asm.li(rh, hist as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    let top = asm.here();
    asm.ld8_idx(k, rk, i, 3); // keys[i]     (striding)
    asm.ld8_idx(tmp, rh, k, 3); // C[key]    (simple indirect)
    asm.addi(tmp, tmp, 1);
    asm.st8_idx(tmp, rh, k, 3); // C[key]++
    busy_work(&mut asm, k, tmp, 8);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    asm.halt();

    Workload {
        name: "NAS-IS".to_string(),
        prog: asm.finish().expect("nas-is assembles"),
        mem,
        description: "integer-sort histogram: single-level affine indirection C[keys[i]]++"
            .to_string(),
        regions: vec![("keys".into(), keys), ("hist".into(), hist)],
    }
}

/// RandomAccess (HPCC GUPS): `T[V[i]] ^= V[i]` over a huge table.
pub fn random_access(size: SizeClass, seed: u64) -> Workload {
    let n = size.elems(1 << 20);
    // GUPS updates a table far larger than the LLC: virtually every update
    // is a DRAM access.
    let table = size.elems(1 << 22);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let v = layout.alloc_words(n);
    let t = layout.alloc_words(table);
    for k in 0..n {
        mem.write_u64(v + 8 * k as u64, rng.random_range(0..table as u64));
    }

    // r1 V, r2 T; r4 i, r5 n, r6 idx, r7 tmp, r13 c
    let mut asm = Asm::new();
    asm.region("V", v, 8 * n as u64);
    asm.region("T", t, 8 * table as u64);
    let (rv, rt) = (Reg::R1, Reg::R2);
    let (i, nn, idx, tmp, cnd) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R13);
    asm.li(rv, v as i64);
    asm.li(rt, t as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    let top = asm.here();
    asm.ld8_idx(idx, rv, i, 3); // V[i]      (striding)
    asm.ld8_idx(tmp, rt, idx, 3); // T[idx]  (indirect)
    asm.xor(tmp, tmp, idx);
    asm.st8_idx(tmp, rt, idx, 3); // update
    busy_work(&mut asm, idx, tmp, 8);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    asm.halt();

    Workload {
        name: "RandomAccess".to_string(),
        prog: asm.finish().expect("randomaccess assembles"),
        mem,
        description: "GUPS: T[V[i]] ^= V[i], single-level random indirection".to_string(),
        regions: vec![("V".into(), v), ("T".into(), t)],
    }
}

/// The secret-dependent-gather attack kernel for the leak audit.
///
/// The index array S is declared secret (`.secret`) and every iteration
/// gathers `x = B[S[i]]` — the exact dependent-load chain that runahead
/// vectorization turns into a speculative side channel (Karuppanan &
/// Mirbagher Ajorpaz): under VR/DVR the subthread gathers `B[S[i+1..k]]`
/// transiently, encoding future secret values in which lines get filled.
/// Deliberately **not** part of [`crate::Benchmark::ALL`]: it exists to be
/// *flagged* by the taint lint and the leak audit, not to be scored.
pub fn gather_attack(size: SizeClass, seed: u64) -> Workload {
    let n = size.elems(1 << 20);
    let table = size.elems(1 << 21);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let s = layout.alloc_words(n);
    let b = layout.alloc_words(table);
    for k in 0..n {
        mem.write_u64(s + 8 * k as u64, rng.random_range(0..table as u64));
    }
    fill_random(&mut mem, b, table, u64::MAX, &mut rng);

    // r1 S, r2 B; r4 i, r5 n, r6 v, r7 x, r10 acc, r13 c
    let mut asm = Asm::new();
    let (rs, rb) = (Reg::R1, Reg::R2);
    let (i, nn, v, x, acc, cnd) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R10, Reg::R13);
    asm.secret(s, 8 * n as u64);
    asm.region("S", s, 8 * n as u64);
    asm.region("B", b, 8 * table as u64);
    asm.li(rs, s as i64);
    asm.li(rb, b as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    let top = asm.here();
    asm.ld8_idx(v, rs, i, 3); // S[i]   (striding, secret source)
    asm.ld8_idx(x, rb, v, 3); // B[S[i]] (the gather gadget)
    asm.xor(acc, acc, x);
    busy_work(&mut asm, acc, x, 4);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    asm.halt();

    Workload {
        name: "gather-attack".to_string(),
        prog: asm.finish().expect("gather-attack assembles"),
        mem,
        description: "secret-dependent gather x = B[S[i]] with S declared .secret".to_string(),
        regions: vec![("S".into(), s), ("B".into(), b)],
    }
}

/// Intentionally out-of-bounds gather for the bounds audit: `B[A[i]]`
/// where A's index values were generated for a table **twice** B's
/// declared size (the classic stale-size-constant bug), plus a
/// one-past-the-end constant load after the loop. Deliberately **not**
/// part of [`crate::Benchmark::ALL`]: it exists to be *flagged* by the
/// static bounds verifier and *confirmed* by the dynamic bounds oracle,
/// not to be scored.
pub fn oob_gather(size: SizeClass, seed: u64) -> Workload {
    let n = size.elems(1 << 20);
    let table = size.elems(1 << 21);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00B);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let a = layout.alloc_words(n);
    let b = layout.alloc_words(table);
    // The bug under test: indices drawn as if B had 2*table entries.
    for k in 0..n {
        mem.write_u64(a + 8 * k as u64, rng.random_range(0..2 * table as u64));
    }
    fill_random(&mut mem, b, table, u64::MAX, &mut rng);

    // r1 A, r2 B; r4 i, r5 n, r6 v, r7 x, r10 acc, r13 c
    let mut asm = Asm::new();
    asm.region("A", a, 8 * n as u64);
    asm.region("B", b, 8 * table as u64);
    let (ra, rb) = (Reg::R1, Reg::R2);
    let (i, nn, v, x, acc, cnd) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R10, Reg::R13);
    asm.li(ra, a as i64);
    asm.li(rb, b as i64);
    asm.li(i, 0);
    asm.li(nn, n as i64);
    let top = asm.here();
    asm.ld8_idx(v, ra, i, 3); // A[i]    (striding)
    asm.ld8_idx(x, rb, v, 3); // B[A[i]] — half the indices land past B
    asm.xor(acc, acc, x);
    busy_work(&mut asm, acc, x, 4);
    asm.addi(i, i, 1);
    asm.slt(cnd, i, nn);
    asm.bnz(cnd, top);
    // One-past-the-end epilogue read: provably outside every region.
    asm.li(v, (b + 8 * table as u64) as i64);
    asm.ld8(x, v, 0);
    asm.xor(acc, acc, x);
    asm.halt();

    Workload {
        name: "oob-gather".to_string(),
        prog: asm.finish().expect("oob-gather assembles"),
        mem,
        description: "out-of-bounds gather B[A[i]]: index values sized for a table 2x the \
                      declared region, plus a one-past-the-end epilogue load"
            .to_string(),
        regions: vec![("A".into(), a), ("B".into(), b)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Cpu;

    fn runs_to_halt(mut wl: Workload) -> Workload {
        let mut cpu = Cpu::new();
        cpu.run(&wl.prog, &mut wl.mem, 500_000_000).expect("kernel executes");
        assert!(cpu.is_halted(), "{} must halt", wl.name);
        wl
    }

    #[test]
    fn gather_attack_declares_secrets_and_halts() {
        let wl = runs_to_halt(gather_attack(SizeClass::Test, 3));
        assert_eq!(wl.name, "gather-attack");
        let secrets = wl.prog.secrets();
        assert_eq!(secrets.len(), 1, "one secret range (the index array S)");
        assert_eq!(secrets[0].0, wl.region("S"));
        assert!(wl.prog.is_secret_addr(wl.region("S")));
        assert!(!wl.prog.is_secret_addr(wl.region("B")));
    }

    #[test]
    fn camel_increments_histogram() {
        let wl = runs_to_halt(camel(SizeClass::Test, 1));
        let c = wl.region("C");
        let table = SizeClass::Test.elems(1 << 21);
        let total: u64 = (0..table).map(|k| wl.mem.read_u64(c + 8 * k as u64)).sum();
        assert_eq!(total, SizeClass::Test.elems(1 << 20) as u64);
    }

    #[test]
    fn nas_is_histogram_sums_to_n() {
        let wl = runs_to_halt(nas_is(SizeClass::Test, 2));
        let h = wl.region("hist");
        let range = SizeClass::Test.elems(1 << 21);
        let total: u64 = (0..range).map(|k| wl.mem.read_u64(h + 8 * k as u64)).sum();
        assert_eq!(total, SizeClass::Test.elems(1 << 21) as u64);
    }

    #[test]
    fn random_access_xors_table() {
        let before = random_access(SizeClass::Test, 3);
        let t = before.region("T");
        let table = SizeClass::Test.elems(1 << 21);
        let zeros_before =
            (0..table).filter(|k| before.mem.read_u64(t + 8 * *k as u64) == 0).count();
        let wl = runs_to_halt(before);
        let zeros_after = (0..table).filter(|k| wl.mem.read_u64(t + 8 * *k as u64) == 0).count();
        assert_ne!(zeros_before, zeros_after, "table must change");
    }

    #[test]
    fn hashjoin_depth_reflected_in_program() {
        let hj2 = hashjoin(2, SizeClass::Test, 4);
        let hj8 = hashjoin(8, SizeClass::Test, 4);
        let loads = |wl: &Workload| wl.prog.instrs().iter().filter(|i| i.is_load()).count();
        assert_eq!(loads(&hj8) - loads(&hj2), 6, "HJ8 has 6 more probe loads than HJ2");
        runs_to_halt(hj2);
        runs_to_halt(hj8);
    }

    #[test]
    fn kangaroo_has_branches_in_chain() {
        let wl = kangaroo(SizeClass::Test, 5);
        let branches = wl.prog.instrs().iter().filter(|i| i.is_cond_branch()).count();
        assert!(branches >= 4, "3 hop branches + loop branch, got {branches}");
        runs_to_halt(wl);
    }

    #[test]
    fn nas_cg_computes_spmv() {
        let wl = runs_to_halt(nas_cg(SizeClass::Test, 6));
        let rows = SizeClass::Test.elems(1 << 18);
        let (offs, cols, vals, x, y) = (
            wl.region("offsets"),
            wl.region("cols"),
            wl.region("vals"),
            wl.region("x"),
            wl.region("y"),
        );
        for r in 0..rows.min(64) {
            let s = wl.mem.read_u64(offs + 8 * r as u64);
            let e = wl.mem.read_u64(offs + 8 * (r + 1) as u64);
            let mut want = 0u64;
            for k in s..e {
                let c = wl.mem.read_u64(cols + 8 * k);
                let v = wl.mem.read_u64(vals + 8 * k);
                want = want.wrapping_add(v.wrapping_mul(wl.mem.read_u64(x + 8 * c)));
            }
            assert_eq!(wl.mem.read_u64(y + 8 * r as u64), want, "row {r}");
        }
    }

    #[test]
    fn graph500_is_bfs_shaped() {
        let wl = graph500(SizeClass::Test, 7);
        assert_eq!(wl.name, "Graph500");
        assert!(wl.regions.iter().any(|(n, _)| n == "visited"));
        runs_to_halt(wl);
    }

    #[test]
    fn oob_gather_indices_walk_past_declared_region() {
        let wl = oob_gather(SizeClass::Test, 3);
        let (_, _, b_len) =
            wl.prog.regions().iter().find(|(n, _, _)| n == "B").cloned().expect("B declared");
        let a = wl.region("A");
        let n = SizeClass::Test.elems(1 << 20);
        let words = b_len / 8;
        assert!(
            (0..n).any(|k| wl.mem.read_u64(a + 8 * k as u64) >= words),
            "some index must point past B's declared {words} words"
        );
        runs_to_halt(wl);
    }

    #[test]
    fn every_benchmark_declares_its_footprint_regions() {
        use crate::suite::Benchmark;
        for b in Benchmark::ALL {
            let wl = b.build(None, SizeClass::Test, 1);
            assert!(!wl.prog.regions().is_empty(), "{}: no .region declarations", wl.name);
            // Every named base the host knows about is a declared region.
            for (name, base) in &wl.regions {
                let found = wl.prog.regions().iter().any(|(n, a, _)| n == name && a == base);
                assert!(found, "{}: region {name}@{base:#x} not declared in program", wl.name);
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = camel(SizeClass::Test, 42);
        let b = camel(SizeClass::Test, 42);
        assert_eq!(a.prog.instrs(), b.prog.instrs());
        let ra = a.region("A");
        for k in 0..64 {
            assert_eq!(a.mem.read_u64(ra + 8 * k), b.mem.read_u64(ra + 8 * k));
        }
    }
}
