//! # workloads — the 13 evaluated benchmarks of the DVR paper
//!
//! Graph analytics (GAP: bc, bfs, cc, pr, sssp on five graph inputs),
//! database, and HPC kernels (hpc-db: Camel, Graph500, HJ2, HJ8, Kangaroo,
//! NAS-CG, NAS-IS, RandomAccess), re-expressed for the simulator ISA with
//! synthetic inputs sized per DESIGN.md §2/§7.
//!
//! ## Example
//!
//! ```
//! use workloads::{Benchmark, GraphInput, SizeClass};
//!
//! let wl = Benchmark::Bfs.build(Some(GraphInput::Ur), SizeClass::Test, 42);
//! assert_eq!(wl.name, "bfs");
//! assert!(wl.prog.len() > 10);
//! // The workload is ready to run on the simulator:
//! let mut cpu = sim_isa::Cpu::new();
//! let mut mem = wl.mem.clone();
//! cpu.run(&wl.prog, &mut mem, 10_000)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gap;
pub mod graphs;
pub mod hpcdb;
mod suite;

pub use gap::RESULT_ADDR;
pub use graphs::{rmat, uniform, Csr, GraphInput};
pub use hpcdb::{gather_attack, oob_gather};
pub use suite::{Benchmark, Layout, SizeClass, Workload};
