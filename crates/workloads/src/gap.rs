//! The five GAP-suite kernels (bc, bfs, cc, pr, sssp), re-expressed for the
//! simulator ISA.
//!
//! Each kernel reproduces the memory-access *shape* the paper's evaluation
//! depends on: an outer striding load over a worklist or vertex range, a
//! data-dependent inner loop over a CSR edge list (striding), and one or
//! more loads indirect on the edge value — plus the data-dependent branches
//! (bfs/sssp/bc) that exercise divergence. Frontier-based kernels simulate
//! the *largest* top-down step, set up host-side, which is the
//! representative phase of the 500 M-instruction ROIs the paper samples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_isa::{Asm, Reg, SparseMemory};

use crate::graphs::{Csr, GraphInput};
use crate::hpcdb::busy_work;
use crate::suite::{Layout, SizeClass, Workload};

/// Writes a CSR graph into memory as two u64 arrays; returns
/// `(offsets_base, edges_base)`.
fn write_csr(mem: &mut SparseMemory, layout: &mut Layout, g: &Csr) -> (u64, u64) {
    let offs = layout.alloc_words(g.n + 1);
    let edges = layout.alloc_words(g.m());
    mem.write_u64_slice(offs, &g.offsets);
    for (k, e) in g.edges.iter().enumerate() {
        mem.write_u64(edges + 8 * k as u64, *e as u64);
    }
    (offs, edges)
}

/// Address where kernels store their final result (for host validation).
pub const RESULT_ADDR: u64 = 0x8_0000;

/// Breadth-first search: one top-down step of Algorithm 1 over the largest
/// frontier.
pub fn bfs(input: GraphInput, size: SizeClass, seed: u64) -> Workload {
    let g = input.generate(size.graph_scale_shift(), seed);
    build_bfs_like("bfs", &g, input.name())
}

/// Graph500 is BFS on a Graph500-parameter Kronecker graph; shared builder.
pub(crate) fn build_bfs_like(name: &str, g: &Csr, input_name: &str) -> Workload {
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let (offs, edges) = write_csr(&mut mem, &mut layout, g);

    let depth = g.bfs_depths(0);
    let (fd, frontier) = g.largest_frontier(0);
    let visited = layout.alloc_words(g.n);
    for (v, d) in depth.iter().enumerate() {
        if *d != u32::MAX && *d <= fd {
            mem.write_u64(visited + 8 * v as u64, 1);
        }
    }
    let wl = layout.alloc_words(frontier.len().max(1));
    for (k, v) in frontier.iter().enumerate() {
        mem.write_u64(wl + 8 * k as u64, *v as u64);
    }
    let nextwl = layout.alloc_words(g.m().max(1));

    // Register plan:
    //   r1 wl, r2 offs, r3 edges, r4 visited, r5 nextwl
    //   r6 j, r7 wl_n, r8 v, r9 e_end, r10 i, r11 u, r12 flag,
    //   r13 c, r14 next_n, r15 tmp, r0 one
    let mut asm = Asm::new();
    asm.region("offsets", offs, 8 * (g.n as u64 + 1));
    asm.region("edges", edges, 8 * g.m().max(1) as u64);
    asm.region("visited", visited, 8 * g.n as u64);
    asm.region("worklist", wl, 8 * frontier.len().max(1) as u64);
    asm.region("next_worklist", nextwl, 8 * g.m().max(1) as u64);
    asm.region("result", RESULT_ADDR, 8);
    let (rwl, roffs, redges, rvis, rnext) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    let (j, wl_n, v, e_end, i, u, flag, c, next_n, tmp, one) = (
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R0,
    );
    asm.li(rwl, wl as i64);
    asm.li(roffs, offs as i64);
    asm.li(redges, edges as i64);
    asm.li(rvis, visited as i64);
    asm.li(rnext, nextwl as i64);
    asm.li(j, 0);
    asm.li(wl_n, frontier.len() as i64);
    asm.li(next_n, 0);
    asm.li(one, 1);
    asm.name("outer");
    let outer = asm.here();
    let inner_done = asm.label();
    asm.ld8_idx(v, rwl, j, 3); // v = wl[j]            (outer striding)
    asm.ld8_idx(i, roffs, v, 3); // i = offs[v]        (dependent)
    asm.add(tmp, v, one);
    asm.ld8_idx(e_end, roffs, tmp, 3); // e = offs[v+1]
    asm.slt(c, i, e_end);
    asm.bez(c, inner_done);
    asm.name("inner");
    let inner = asm.here();
    let skip = asm.label();
    asm.ld8_idx(u, redges, i, 3); // u = edges[i]       (inner striding)
    asm.ld8_idx(flag, rvis, u, 3); // visited[u]        (dependent indirect)
    asm.bnz(flag, skip); // data-dependent branch
    asm.st8_idx(one, rvis, u, 3); // visited[u] = 1
    asm.st8_idx(u, rnext, next_n, 3); // nextwl[next_n++] = u
    asm.addi(next_n, next_n, 1);
    asm.bind(skip);
    busy_work(&mut asm, flag, u, 5);
    asm.addi(i, i, 1);
    asm.slt(c, i, e_end);
    asm.bnz(c, inner);
    asm.bind(inner_done);
    asm.addi(j, j, 1);
    asm.slt(c, j, wl_n);
    asm.bnz(c, outer);
    asm.li(tmp, RESULT_ADDR as i64);
    asm.st8(next_n, tmp, 0);
    asm.halt();

    Workload {
        name: name.to_string(),
        prog: asm.finish().expect("bfs assembles"),
        mem,
        description: format!(
            "top-down BFS step on {input_name}: worklist -> offsets -> edges -> visited, \
             data-dependent inner loop and branch (Algorithm 1)"
        ),
        regions: vec![
            ("offsets".into(), offs),
            ("edges".into(), edges),
            ("visited".into(), visited),
            ("worklist".into(), wl),
            ("next_worklist".into(), nextwl),
        ],
    }
}

/// PageRank: one pull-style iteration (integer ranks).
pub fn pr(input: GraphInput, size: SizeClass, seed: u64) -> Workload {
    let g = input.generate(size.graph_scale_shift(), seed);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let (offs, edges) = write_csr(&mut mem, &mut layout, &g);
    let rank = layout.alloc_words(g.n);
    let newrank = layout.alloc_words(g.n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7072);
    for v in 0..g.n {
        mem.write_u64(rank + 8 * v as u64, rng.random_range(1..1000));
    }

    // r1 offs, r2 edges, r3 rank, r4 newrank;
    // r5 v, r6 n, r7 i, r8 e_end, r9 u, r10 sum, r11 ru, r13 c, r15 tmp
    let mut asm = Asm::new();
    asm.region("offsets", offs, 8 * (g.n as u64 + 1));
    asm.region("edges", edges, 8 * g.m().max(1) as u64);
    asm.region("rank", rank, 8 * g.n as u64);
    asm.region("newrank", newrank, 8 * g.n as u64);
    let (roffs, redges, rrank, rnew) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    let (v, n, i, e_end, u, sum, ru, c, tmp) =
        (Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R13, Reg::R15);
    asm.li(roffs, offs as i64);
    asm.li(redges, edges as i64);
    asm.li(rrank, rank as i64);
    asm.li(rnew, newrank as i64);
    asm.li(v, 0);
    asm.li(n, g.n as i64);
    let outer = asm.here();
    let inner_done = asm.label();
    asm.ld8_idx(i, roffs, v, 3);
    asm.addi(tmp, v, 1);
    asm.ld8_idx(e_end, roffs, tmp, 3);
    asm.li(sum, 0);
    asm.slt(c, i, e_end);
    asm.bez(c, inner_done);
    let inner = asm.here();
    asm.ld8_idx(u, redges, i, 3); // inner striding
    asm.ld8_idx(ru, rrank, u, 3); // indirect rank load
    asm.add(sum, sum, ru);
    busy_work(&mut asm, u, ru, 5);
    asm.addi(i, i, 1);
    asm.slt(c, i, e_end);
    asm.bnz(c, inner);
    asm.bind(inner_done);
    asm.st8_idx(sum, rnew, v, 3);
    asm.addi(v, v, 1);
    asm.slt(c, v, n);
    asm.bnz(c, outer);
    asm.halt();

    Workload {
        name: "pr".to_string(),
        prog: asm.finish().expect("pr assembles"),
        mem,
        description: format!(
            "pull-style PageRank iteration on {}: edges -> rank indirect gather per vertex",
            input.name()
        ),
        regions: vec![
            ("offsets".into(), offs),
            ("edges".into(), edges),
            ("rank".into(), rank),
            ("newrank".into(), newrank),
        ],
    }
}

/// Connected components: one label-propagation sweep (branchless min).
pub fn cc(input: GraphInput, size: SizeClass, seed: u64) -> Workload {
    let g = input.generate(size.graph_scale_shift(), seed);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let (offs, edges) = write_csr(&mut mem, &mut layout, &g);
    let comp = layout.alloc_words(g.n);
    for v in 0..g.n {
        mem.write_u64(comp + 8 * v as u64, v as u64);
    }

    // r1 offs, r2 edges, r3 comp; r5 v, r6 n, r7 i, r8 e_end, r9 u,
    // r10 cv, r11 cu, r13 c, r15 tmp
    let mut asm = Asm::new();
    asm.region("offsets", offs, 8 * (g.n as u64 + 1));
    asm.region("edges", edges, 8 * g.m().max(1) as u64);
    asm.region("comp", comp, 8 * g.n as u64);
    let (roffs, redges, rcomp) = (Reg::R1, Reg::R2, Reg::R3);
    let (v, n, i, e_end, u, cv, cu, c, tmp) =
        (Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R13, Reg::R15);
    asm.li(roffs, offs as i64);
    asm.li(redges, edges as i64);
    asm.li(rcomp, comp as i64);
    asm.li(v, 0);
    asm.li(n, g.n as i64);
    let outer = asm.here();
    let inner_done = asm.label();
    asm.ld8_idx(i, roffs, v, 3);
    asm.addi(tmp, v, 1);
    asm.ld8_idx(e_end, roffs, tmp, 3);
    asm.ld8_idx(cv, rcomp, v, 3);
    asm.slt(c, i, e_end);
    asm.bez(c, inner_done);
    let inner = asm.here();
    asm.ld8_idx(u, redges, i, 3); // inner striding
    asm.ld8_idx(cu, rcomp, u, 3); // indirect component load
    asm.alu(sim_isa::AluOp::Min, cv, cv, cu);
    busy_work(&mut asm, u, cu, 5);
    asm.addi(i, i, 1);
    asm.slt(c, i, e_end);
    asm.bnz(c, inner);
    asm.bind(inner_done);
    asm.st8_idx(cv, rcomp, v, 3);
    asm.addi(v, v, 1);
    asm.slt(c, v, n);
    asm.bnz(c, outer);
    asm.halt();

    Workload {
        name: "cc".to_string(),
        prog: asm.finish().expect("cc assembles"),
        mem,
        description: format!(
            "connected-components label sweep on {}: edges -> comp indirect min",
            input.name()
        ),
        regions: vec![("offsets".into(), offs), ("edges".into(), edges), ("comp".into(), comp)],
    }
}

/// Single-source shortest path: one Bellman-Ford relaxation pass over the
/// largest frontier.
pub fn sssp(input: GraphInput, size: SizeClass, seed: u64) -> Workload {
    let g = input.generate(size.graph_scale_shift(), seed);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let (offs, edges) = write_csr(&mut mem, &mut layout, &g);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7373);
    let weights = layout.alloc_words(g.m().max(1));
    for k in 0..g.m() {
        mem.write_u64(weights + 8 * k as u64, rng.random_range(1..16));
    }
    let depth = g.bfs_depths(0);
    let (_, frontier) = g.largest_frontier(0);
    // Mid-algorithm snapshot: approximate distances with per-vertex slack
    // so the relaxation branch fires on a realistic fraction of edges.
    let dist = layout.alloc_words(g.n);
    for (v, dv) in depth.iter().enumerate() {
        let d = if *dv == u32::MAX { 1 << 40 } else { *dv as u64 * 16 + rng.random_range(0..32) };
        mem.write_u64(dist + 8 * v as u64, d);
    }
    let wl = layout.alloc_words(frontier.len().max(1));
    for (k, v) in frontier.iter().enumerate() {
        mem.write_u64(wl + 8 * k as u64, *v as u64);
    }

    // r1 wl, r2 offs, r3 edges, r4 weights, r5 dist;
    // r6 j, r7 wl_n, r8 v, r9 e_end, r10 i, r11 u, r12 w, r13 c,
    // r14 dv, r15 nd, r0 du
    let mut asm = Asm::new();
    asm.region("offsets", offs, 8 * (g.n as u64 + 1));
    asm.region("edges", edges, 8 * g.m().max(1) as u64);
    asm.region("weights", weights, 8 * g.m().max(1) as u64);
    asm.region("dist", dist, 8 * g.n as u64);
    asm.region("worklist", wl, 8 * frontier.len().max(1) as u64);
    let (rwl, roffs, redges, rwts, rdist) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    let (j, wl_n, v, e_end, i, u, w, c, dv, nd, du) = (
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R0,
    );
    asm.li(rwl, wl as i64);
    asm.li(roffs, offs as i64);
    asm.li(redges, edges as i64);
    asm.li(rwts, weights as i64);
    asm.li(rdist, dist as i64);
    asm.li(j, 0);
    asm.li(wl_n, frontier.len() as i64);
    let outer = asm.here();
    let inner_done = asm.label();
    asm.ld8_idx(v, rwl, j, 3); // outer striding
    asm.ld8_idx(dv, rdist, v, 3);
    asm.ld8_idx(i, roffs, v, 3);
    asm.addi(nd, v, 1);
    asm.ld8_idx(e_end, roffs, nd, 3);
    asm.slt(c, i, e_end);
    asm.bez(c, inner_done);
    let inner = asm.here();
    let skip = asm.label();
    asm.ld8_idx(u, redges, i, 3); // inner striding
    asm.ld8_idx(w, rwts, i, 3); // parallel striding
    asm.add(nd, dv, w);
    asm.ld8_idx(du, rdist, u, 3); // dependent indirect
    asm.slt(c, nd, du);
    asm.bez(c, skip); // data-dependent branch
    asm.st8_idx(nd, rdist, u, 3); // relax
    asm.bind(skip);
    busy_work(&mut asm, w, u, 5);
    asm.addi(i, i, 1);
    asm.slt(c, i, e_end);
    asm.bnz(c, inner);
    asm.bind(inner_done);
    asm.addi(j, j, 1);
    asm.slt(c, j, wl_n);
    asm.bnz(c, outer);
    asm.halt();

    Workload {
        name: "sssp".to_string(),
        prog: asm.finish().expect("sssp assembles"),
        mem,
        description: format!(
            "Bellman-Ford relaxation pass on {}: edges+weights -> dist indirect compare/update",
            input.name()
        ),
        regions: vec![
            ("offsets".into(), offs),
            ("edges".into(), edges),
            ("weights".into(), weights),
            ("dist".into(), dist),
            ("worklist".into(), wl),
        ],
    }
}

/// Betweenness centrality: one level of the forward sigma-accumulation
/// phase (Brandes).
pub fn bc(input: GraphInput, size: SizeClass, seed: u64) -> Workload {
    let g = input.generate(size.graph_scale_shift(), seed);
    let mut mem = SparseMemory::new();
    let mut layout = Layout::new();
    let (offs, edges) = write_csr(&mut mem, &mut layout, &g);

    let depth = g.bfs_depths(0);
    let (fd, frontier) = g.largest_frontier(0);
    let depths_arr = layout.alloc_words(g.n);
    let sigma = layout.alloc_words(g.n);
    for (v, dv) in depth.iter().enumerate() {
        let d = if *dv == u32::MAX { 1 << 30 } else { *dv as u64 };
        mem.write_u64(depths_arr + 8 * v as u64, d);
        mem.write_u64(sigma + 8 * v as u64, 1);
    }
    let wl = layout.alloc_words(frontier.len().max(1));
    for (k, v) in frontier.iter().enumerate() {
        mem.write_u64(wl + 8 * k as u64, *v as u64);
    }

    // r1 wl, r2 offs, r3 edges, r4 depth, r5 sigma;
    // r6 j, r7 wl_n, r8 v, r9 e_end, r10 i, r11 u, r12 du, r13 c,
    // r14 sv, r15 tmp, r0 next_depth
    let mut asm = Asm::new();
    asm.region("offsets", offs, 8 * (g.n as u64 + 1));
    asm.region("edges", edges, 8 * g.m().max(1) as u64);
    asm.region("depth", depths_arr, 8 * g.n as u64);
    asm.region("sigma", sigma, 8 * g.n as u64);
    asm.region("worklist", wl, 8 * frontier.len().max(1) as u64);
    let (rwl, roffs, redges, rdep, rsig) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    let (j, wl_n, v, e_end, i, u, du, c, sv, tmp, nextd) = (
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R0,
    );
    asm.li(rwl, wl as i64);
    asm.li(roffs, offs as i64);
    asm.li(redges, edges as i64);
    asm.li(rdep, depths_arr as i64);
    asm.li(rsig, sigma as i64);
    asm.li(j, 0);
    asm.li(wl_n, frontier.len() as i64);
    asm.li(nextd, fd as i64 + 1);
    let outer = asm.here();
    let inner_done = asm.label();
    asm.ld8_idx(v, rwl, j, 3); // outer striding
    asm.ld8_idx(sv, rsig, v, 3);
    asm.ld8_idx(i, roffs, v, 3);
    asm.addi(tmp, v, 1);
    asm.ld8_idx(e_end, roffs, tmp, 3);
    asm.slt(c, i, e_end);
    asm.bez(c, inner_done);
    let inner = asm.here();
    let skip = asm.label();
    asm.ld8_idx(u, redges, i, 3); // inner striding
    asm.ld8_idx(du, rdep, u, 3); // dependent indirect
    asm.seq(c, du, nextd);
    asm.bez(c, skip); // highly data-dependent branch
    asm.ld8_idx(tmp, rsig, u, 3); // second-level indirect
    asm.add(tmp, tmp, sv);
    asm.st8_idx(tmp, rsig, u, 3);
    asm.bind(skip);
    busy_work(&mut asm, du, u, 5);
    asm.addi(i, i, 1);
    asm.slt(c, i, e_end);
    asm.bnz(c, inner);
    asm.bind(inner_done);
    asm.addi(j, j, 1);
    asm.slt(c, j, wl_n);
    asm.bnz(c, outer);
    asm.halt();

    Workload {
        name: "bc".to_string(),
        prog: asm.finish().expect("bc assembles"),
        mem,
        description: format!(
            "betweenness-centrality sigma level on {}: edges -> depth -> sigma, broad divergence",
            input.name()
        ),
        regions: vec![
            ("offsets".into(), offs),
            ("edges".into(), edges),
            ("depth".into(), depths_arr),
            ("sigma".into(), sigma),
            ("worklist".into(), wl),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Cpu;

    fn run_functional(wl: &mut Workload, max: u64) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.run(&wl.prog, &mut wl.mem, max).expect("kernel executes");
        cpu
    }

    #[test]
    fn bfs_visits_exactly_the_next_frontier() {
        let input = GraphInput::Ur;
        let g = input.generate(SizeClass::Test.graph_scale_shift(), 7);
        let depth = g.bfs_depths(0);
        let (fd, frontier) = g.largest_frontier(0);
        // Expected newly visited: distinct depth == fd+1 vertices reachable
        // from the frontier.
        let mut expect = 0u64;
        let mut seen = vec![false; g.n];
        for &v in &frontier {
            for &u in g.neighbors(v as usize) {
                if depth[u as usize] == fd + 1 && !seen[u as usize] {
                    seen[u as usize] = true;
                    expect += 1;
                }
            }
        }
        let mut wl = bfs(input, SizeClass::Test, 7);
        let cpu = run_functional(&mut wl, 200_000_000);
        assert!(cpu.is_halted(), "bfs kernel must halt");
        assert_eq!(wl.mem.read_u64(RESULT_ADDR), expect);
    }

    #[test]
    fn pr_computes_neighbor_sums() {
        let input = GraphInput::Ur;
        let mut wl = pr(input, SizeClass::Test, 3);
        let g = input.generate(SizeClass::Test.graph_scale_shift(), 3);
        let rank = wl.region("rank");
        let newrank = wl.region("newrank");
        // Snapshot ranks before running.
        let ranks: Vec<u64> = (0..g.n).map(|v| wl.mem.read_u64(rank + 8 * v as u64)).collect();
        let cpu = run_functional(&mut wl, 400_000_000);
        assert!(cpu.is_halted());
        for v in 0..g.n.min(500) {
            let want: u64 = g
                .neighbors(v)
                .iter()
                .map(|&u| ranks[u as usize])
                .fold(0u64, |a, b| a.wrapping_add(b));
            assert_eq!(wl.mem.read_u64(newrank + 8 * v as u64), want, "vertex {v}");
        }
    }

    #[test]
    fn cc_labels_decrease_monotonically() {
        let input = GraphInput::Ur;
        let mut wl = cc(input, SizeClass::Test, 9);
        let g = input.generate(SizeClass::Test.graph_scale_shift(), 9);
        let comp = wl.region("comp");
        let cpu = run_functional(&mut wl, 400_000_000);
        assert!(cpu.is_halted());
        let mut changed = 0;
        for v in 0..g.n {
            let label = wl.mem.read_u64(comp + 8 * v as u64);
            assert!(label <= v as u64, "labels only shrink");
            if label != v as u64 {
                changed += 1;
            }
        }
        assert!(changed > 0, "at least some labels must propagate");
    }

    #[test]
    fn sssp_relaxations_never_increase_dist() {
        let input = GraphInput::Ur;
        let g = input.generate(SizeClass::Test.graph_scale_shift(), 11);
        let mut wl = sssp(input, SizeClass::Test, 11);
        let dist = wl.region("dist");
        let before: Vec<u64> = (0..g.n).map(|v| wl.mem.read_u64(dist + 8 * v as u64)).collect();
        let cpu = run_functional(&mut wl, 400_000_000);
        assert!(cpu.is_halted());
        let mut relaxed = 0;
        for (v, b) in before.iter().enumerate() {
            let after = wl.mem.read_u64(dist + 8 * v as u64);
            assert!(after <= *b);
            if after < *b {
                relaxed += 1;
            }
        }
        assert!(relaxed > 0, "some distance must relax");
    }

    #[test]
    fn bc_accumulates_sigma() {
        let input = GraphInput::Kr;
        let mut wl = bc(input, SizeClass::Test, 13);
        let cpu = run_functional(&mut wl, 400_000_000);
        assert!(cpu.is_halted());
    }

    #[test]
    fn all_gap_kernels_have_indirect_loads() {
        for build in [bfs, pr, cc, sssp, bc] {
            let wl = build(GraphInput::Ur, SizeClass::Test, 1);
            // Static check: at least two indexed loads (striding + indirect).
            let indexed_loads = wl
                .prog
                .instrs()
                .iter()
                .filter(|i| matches!(i, sim_isa::Instr::Load { addr, .. } if addr.index.is_some()))
                .count();
            assert!(indexed_loads >= 3, "{}: {indexed_loads} indexed loads", wl.name);
        }
    }
}
