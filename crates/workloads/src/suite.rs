//! The benchmark registry and shared workload plumbing.

use sim_isa::{Program, SparseMemory};

use crate::graphs::GraphInput;

/// A ready-to-simulate workload: a program plus its initialized memory
/// image.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (paper spelling, e.g. `"bfs"`, `"HJ8"`).
    pub name: String,
    /// The assembled kernel.
    pub prog: Program,
    /// The initialized data memory.
    pub mem: SparseMemory,
    /// One-line description of the access pattern exercised.
    pub description: String,
    /// Named data regions `(name, base_address)` for host-side validation.
    pub regions: Vec<(String, u64)>,
}

impl Workload {
    /// Base address of a named data region.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist (a workload-construction bug).
    pub fn region(&self, name: &str) -> u64 {
        self.regions
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("workload {} has no region {name}", self.name))
            .1
    }
}

/// A simple bump allocator for laying out workload data regions.
///
/// Regions are 4 KiB-aligned and spaced so distinct arrays never share a
/// cache line.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    next: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

impl Layout {
    /// Starts allocating at 1 MiB (clear of the zero page).
    pub fn new() -> Self {
        Layout { next: 0x10_0000 }
    }

    /// Reserves `bytes`, returning the region's base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        self.next = (self.next + bytes + 0xFFF) & !0xFFF;
        base
    }

    /// Reserves space for `n` 8-byte words.
    pub fn alloc_words(&mut self, n: usize) -> u64 {
        self.alloc(8 * n as u64)
    }
}

/// The paper's size class for a workload build.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SizeClass {
    /// Tiny inputs for unit/integration tests (fast, cache-resident).
    Test,
    /// Reduced inputs for Criterion benches.
    Small,
    /// The DESIGN.md "paper" scale: working sets exceeding the 8 MB LLC.
    #[default]
    Paper,
}

impl SizeClass {
    /// How many powers of two to shave off graph sizes.
    pub fn graph_scale_shift(self) -> u32 {
        match self {
            SizeClass::Test => 8,
            SizeClass::Small => 5,
            SizeClass::Paper => 0,
        }
    }

    /// Element-count scale for the hpc-db array workloads.
    pub fn elems(self, paper: usize) -> usize {
        match self {
            SizeClass::Test => (paper / 256).max(256),
            SizeClass::Small => (paper / 32).max(1024),
            SizeClass::Paper => paper,
        }
    }
}

/// The 13 evaluated benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Benchmark {
    Bc,
    Bfs,
    Cc,
    Pr,
    Sssp,
    Camel,
    Graph500,
    Hj2,
    Hj8,
    Kangaroo,
    NasCg,
    NasIs,
    RandomAccess,
}

impl Benchmark {
    /// All benchmarks, GAP first then hpc-db, in the paper's order.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::Bc,
        Benchmark::Bfs,
        Benchmark::Cc,
        Benchmark::Pr,
        Benchmark::Sssp,
        Benchmark::Camel,
        Benchmark::Graph500,
        Benchmark::Hj2,
        Benchmark::Hj8,
        Benchmark::Kangaroo,
        Benchmark::NasCg,
        Benchmark::NasIs,
        Benchmark::RandomAccess,
    ];

    /// The five GAP benchmarks (evaluated on all five graph inputs).
    pub const GAP: [Benchmark; 5] =
        [Benchmark::Bc, Benchmark::Bfs, Benchmark::Cc, Benchmark::Pr, Benchmark::Sssp];

    /// The eight hpc-db benchmarks.
    pub const HPC_DB: [Benchmark; 8] = [
        Benchmark::Camel,
        Benchmark::Graph500,
        Benchmark::Hj2,
        Benchmark::Hj8,
        Benchmark::Kangaroo,
        Benchmark::NasCg,
        Benchmark::NasIs,
        Benchmark::RandomAccess,
    ];

    /// Parses a benchmark name (the [`Benchmark::name`] spelling,
    /// case-insensitively). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name().eq_ignore_ascii_case(s))
    }

    /// Paper spelling of the name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bc => "bc",
            Benchmark::Bfs => "bfs",
            Benchmark::Cc => "cc",
            Benchmark::Pr => "pr",
            Benchmark::Sssp => "sssp",
            Benchmark::Camel => "Camel",
            Benchmark::Graph500 => "Graph500",
            Benchmark::Hj2 => "HJ2",
            Benchmark::Hj8 => "HJ8",
            Benchmark::Kangaroo => "Kangaroo",
            Benchmark::NasCg => "NAS-CG",
            Benchmark::NasIs => "NAS-IS",
            Benchmark::RandomAccess => "RandomAccess",
        }
    }

    /// Whether the benchmark takes a GAP graph input.
    pub fn is_gap(self) -> bool {
        Benchmark::GAP.contains(&self)
    }

    /// Builds the workload.
    ///
    /// GAP benchmarks use `input` (defaulting to KR); hpc-db benchmarks
    /// ignore it. `seed` controls all synthetic data.
    pub fn build(self, input: Option<GraphInput>, size: SizeClass, seed: u64) -> Workload {
        let g = input.unwrap_or(GraphInput::Kr);
        match self {
            Benchmark::Bc => crate::gap::bc(g, size, seed),
            Benchmark::Bfs => crate::gap::bfs(g, size, seed),
            Benchmark::Cc => crate::gap::cc(g, size, seed),
            Benchmark::Pr => crate::gap::pr(g, size, seed),
            Benchmark::Sssp => crate::gap::sssp(g, size, seed),
            Benchmark::Camel => crate::hpcdb::camel(size, seed),
            Benchmark::Graph500 => crate::hpcdb::graph500(size, seed),
            Benchmark::Hj2 => crate::hpcdb::hashjoin(2, size, seed),
            Benchmark::Hj8 => crate::hpcdb::hashjoin(8, size, seed),
            Benchmark::Kangaroo => crate::hpcdb::kangaroo(size, seed),
            Benchmark::NasCg => crate::hpcdb::nas_cg(size, seed),
            Benchmark::NasIs => crate::hpcdb::nas_is(size, seed),
            Benchmark::RandomAccess => crate::hpcdb::random_access(size, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shape() {
        assert_eq!(Benchmark::ALL.len(), 13);
        assert_eq!(Benchmark::GAP.len(), 5);
        assert_eq!(Benchmark::HPC_DB.len(), 8);
        for b in Benchmark::GAP {
            assert!(b.is_gap());
        }
        for b in Benchmark::HPC_DB {
            assert!(!b.is_gap());
        }
    }

    #[test]
    fn layout_is_page_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(100);
        let b = l.alloc(100);
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn size_class_scaling() {
        assert_eq!(SizeClass::Paper.elems(1 << 20), 1 << 20);
        assert!(SizeClass::Test.elems(1 << 20) < 1 << 13);
        assert!(SizeClass::Test.graph_scale_shift() > SizeClass::Paper.graph_scale_shift());
    }
}
