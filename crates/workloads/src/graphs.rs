//! Synthetic graph generation (Table 2 surrogates).
//!
//! The paper evaluates the GAP suite on five inputs: Kron (KR), LiveJournal
//! (LJN), Orkut (ORK), Twitter (TW), and Urand (UR). The real crawls are
//! not redistributable, so we generate synthetic surrogates that preserve
//! the properties DVR is sensitive to: the *degree distribution* (inner-loop
//! trip counts — short uniform degrees on UR, heavy power-law tails on
//! KR/TW) and a *working set larger than the 8 MB LLC* (scaled ~1000× down
//! from Table 2; see DESIGN.md §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in Compressed Sparse Row form.
///
/// `offsets` has `n + 1` entries; the neighbours of vertex `v` are
/// `edges[offsets[v]..offsets[v+1]]`.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Vertex count.
    pub n: usize,
    /// Per-vertex edge offsets (`n + 1` entries).
    pub offsets: Vec<u64>,
    /// Flattened destination lists.
    pub edges: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list (duplicates kept, self-loops kept).
    pub fn from_edges(n: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n];
        for (u, _) in edge_list {
            degree[*u as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![0u32; edge_list.len()];
        for (u, v) in edge_list {
            edges[cursor[*u as usize] as usize] = *v;
            cursor[*u as usize] += 1;
        }
        Csr { n, offsets, edges }
    }

    /// Edge count.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// A breadth-first traversal from `src`; returns per-vertex depth
    /// (`u32::MAX` = unreached). Used host-side to set up frontier-based
    /// kernels (bfs, bc, sssp).
    pub fn bfs_depths(&self, src: usize) -> Vec<u32> {
        let mut depth = vec![u32::MAX; self.n];
        depth[src] = 0;
        let mut frontier = vec![src as u32];
        let mut d = 0;
        while !frontier.is_empty() {
            let mut next = vec![];
            for &v in &frontier {
                for &u in self.neighbors(v as usize) {
                    if depth[u as usize] == u32::MAX {
                        depth[u as usize] = d + 1;
                        next.push(u);
                    }
                }
            }
            frontier = next;
            d += 1;
        }
        depth
    }

    /// The depth whose frontier is largest, with that frontier — the most
    /// representative single top-down step.
    pub fn largest_frontier(&self, src: usize) -> (u32, Vec<u32>) {
        let depth = self.bfs_depths(src);
        let max_d = depth.iter().filter(|&&d| d != u32::MAX).copied().max().unwrap_or(0);
        let mut best = (0u32, 0usize);
        for d in 0..=max_d {
            let count = depth.iter().filter(|&&x| x == d).count();
            if count > best.1 {
                best = (d, count);
            }
        }
        let frontier: Vec<u32> =
            (0..self.n as u32).filter(|&v| depth[v as usize] == best.0).collect();
        (best.0, frontier)
    }
}

/// Generates a uniform-random graph: every edge endpoint uniform over `n`.
pub fn uniform(n: usize, edges: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let list: Vec<(u32, u32)> = (0..edges)
        .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
        .collect();
    Csr::from_edges(n, &list)
}

/// Generates an RMAT (Kronecker-style power-law) graph.
///
/// `(a, b, c)` are the recursive quadrant probabilities (the fourth is
/// `1 - a - b - c`); Graph500 uses `(0.57, 0.19, 0.19)`.
pub fn rmat(scale: u32, edges_per_vertex: usize, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    let n = 1usize << scale;
    let m = n * edges_per_vertex;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < a {
                // top-left
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        list.push((u as u32, v as u32));
    }
    Csr::from_edges(n, &list)
}

/// The paper's five GAP inputs (Table 2), as synthetic surrogates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GraphInput {
    /// Kron: Graph500-parameter RMAT, heavy power-law skew.
    Kr,
    /// LiveJournal surrogate: moderate-skew RMAT.
    Ljn,
    /// Orkut surrogate: dense moderate-skew RMAT.
    Ork,
    /// Twitter surrogate: high-skew RMAT.
    Tw,
    /// Urand: uniform random — uniformly small degrees (the paper's
    /// "vertices smaller than the 128-edge target" case).
    Ur,
}

impl GraphInput {
    /// All inputs in Table 2 order.
    pub const ALL: [GraphInput; 5] =
        [GraphInput::Kr, GraphInput::Ljn, GraphInput::Ork, GraphInput::Tw, GraphInput::Ur];

    /// Parses a graph-input name (the [`GraphInput::name`] spelling,
    /// case-insensitively). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<GraphInput> {
        GraphInput::ALL.into_iter().find(|g| g.name().eq_ignore_ascii_case(s))
    }

    /// Short lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GraphInput::Kr => "KR",
            GraphInput::Ljn => "LJN",
            GraphInput::Ork => "ORK",
            GraphInput::Tw => "TW",
            GraphInput::Ur => "UR",
        }
    }

    /// Generates the surrogate at a size scale.
    ///
    /// `scale_shift` subtracts from the default log2 vertex count: 0 is the
    /// "paper" (scaled-down ~1000×) size, larger values shrink further for
    /// tests.
    pub fn generate(self, scale_shift: u32, seed: u64) -> Csr {
        let s = |base: u32| base.saturating_sub(scale_shift).max(6);
        match self {
            GraphInput::Kr => rmat(s(17), 16, 0.57, 0.19, 0.19, seed ^ 0x4b52),
            GraphInput::Ljn => rmat(s(16), 14, 0.48, 0.22, 0.22, seed ^ 0x4c4a),
            GraphInput::Ork => rmat(s(15), 60, 0.45, 0.22, 0.22, seed ^ 0x4f52),
            GraphInput::Tw => rmat(s(16), 24, 0.57, 0.19, 0.19, seed ^ 0x5457),
            GraphInput::Ur => {
                let n = 1usize << s(17);
                uniform(n, n * 16, seed ^ 0x5552)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (3, 0)]);
        assert_eq!(g.n, 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn bfs_depths_are_correct() {
        // 0 -> 1 -> 2 -> 3, plus shortcut 0 -> 2
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let d = g.bfs_depths(0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1);
        assert_eq!(d[3], 2);
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn uniform_has_uniformish_degrees() {
        let g = uniform(1024, 16 * 1024, 1);
        assert_eq!(g.m(), 16 * 1024);
        let max_deg = (0..g.n).map(|v| g.degree(v)).max().unwrap();
        // Poisson(16): max degree stays small.
        assert!(max_deg < 64, "uniform max degree {max_deg}");
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 16, 0.57, 0.19, 0.19, 2);
        let mut degs: Vec<usize> = (0..g.n).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Power law: the top vertex has far more than the mean degree.
        assert!(degs[0] > 16 * 8, "rmat top degree {} not skewed", degs[0]);
        // And many vertices have low degree.
        let low = degs.iter().filter(|&&d| d < 8).count();
        assert!(low > g.n / 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GraphInput::Kr.generate(7, 42);
        let b = GraphInput::Kr.generate(7, 42);
        assert_eq!(a.edges, b.edges);
        let c = GraphInput::Kr.generate(7, 43);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn largest_frontier_nonempty() {
        let g = GraphInput::Ur.generate(8, 5);
        let (_, frontier) = g.largest_frontier(0);
        assert!(!frontier.is_empty());
    }

    #[test]
    fn inputs_have_distinct_shapes() {
        let kr = GraphInput::Kr.generate(8, 1);
        let ur = GraphInput::Ur.generate(8, 1);
        let max_kr = (0..kr.n).map(|v| kr.degree(v)).max().unwrap();
        let max_ur = (0..ur.n).map(|v| ur.degree(v)).max().unwrap();
        assert!(max_kr > 4 * max_ur, "KR must be far more skewed than UR ({max_kr} vs {max_ur})");
    }
}
