//! Property-based tests for the ISA substrate.

use proptest::prelude::*;
use sim_isa::{parse_program, AluOp, Asm, Cpu, Instr, MemAddr, MemWidth, Reg, SparseMemory};

proptest! {
    /// Memory is a map: last write wins, disjoint writes do not interfere.
    #[test]
    fn memory_last_write_wins(
        addr in 0u64..1_000_000,
        v1 in any::<u64>(),
        v2 in any::<u64>(),
    ) {
        let mut mem = SparseMemory::new();
        mem.write_u64(addr, v1);
        mem.write_u64(addr, v2);
        prop_assert_eq!(mem.read_u64(addr), v2);
    }

    /// Reads/writes of every width round-trip modulo truncation.
    #[test]
    fn memory_width_roundtrip(
        addr in 0u64..1_000_000,
        value in any::<u64>(),
        wsel in 0usize..4,
    ) {
        let width = [1u64, 2, 4, 8][wsel];
        let mut mem = SparseMemory::new();
        mem.write(addr, width, value);
        let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
        prop_assert_eq!(mem.read(addr, width), value & mask);
    }

    /// Writes at disjoint byte ranges are independent.
    #[test]
    fn memory_disjoint_writes(
        a in 0u64..1_000_000,
        gap in 8u64..64,
        v1 in any::<u64>(),
        v2 in any::<u64>(),
    ) {
        let b = a + gap;
        let mut mem = SparseMemory::new();
        mem.write_u64(a, v1);
        mem.write_u64(b, v2);
        prop_assert_eq!(mem.read_u64(b), v2);
        if gap >= 8 {
            prop_assert_eq!(mem.read_u64(a), v1);
        }
    }

    /// ALU semantics agree with a native Rust reference model.
    #[test]
    fn alu_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.eval(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.eval(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::And.eval(a, b), a & b);
        prop_assert_eq!(AluOp::Or.eval(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.eval(a, b), a ^ b);
        prop_assert_eq!(AluOp::Slt.eval(a, b), ((a as i64) < (b as i64)) as u64);
        prop_assert_eq!(AluOp::Sltu.eval(a, b), (a < b) as u64);
        prop_assert_eq!(AluOp::Seq.eval(a, b), (a == b) as u64);
        prop_assert_eq!(AluOp::Min.eval(a, b), (a as i64).min(b as i64) as u64);
        prop_assert_eq!(AluOp::Max.eval(a, b), (a as i64).max(b as i64) as u64);
    }

    /// Shifts mask their amount like hardware (mod 64).
    #[test]
    fn shifts_mask_amount(a in any::<u64>(), s in 0u64..256) {
        prop_assert_eq!(AluOp::Shl.eval(a, s), a.wrapping_shl(s as u32 & 63));
        prop_assert_eq!(AluOp::Shr.eval(a, s), a.wrapping_shr(s as u32 & 63));
    }

    /// An assembled copy loop moves an arbitrary array through memory intact.
    #[test]
    fn assembled_memcpy_is_correct(data in prop::collection::vec(any::<u64>(), 1..64)) {
        let src = 0x10_000u64;
        let dst = 0x20_000u64;
        let n = data.len() as i64;

        let mut asm = Asm::new();
        let (rs, rd, ri, rn, rt, rc) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        asm.li(rs, src as i64);
        asm.li(rd, dst as i64);
        asm.li(ri, 0);
        asm.li(rn, n);
        let top = asm.here();
        asm.ld8_idx(rt, rs, ri, 3);
        asm.st8_idx(rt, rd, ri, 3);
        asm.addi(ri, ri, 1);
        asm.slt(rc, ri, rn);
        asm.bnz(rc, top);
        asm.halt();
        let prog = asm.finish().unwrap();

        let mut mem = SparseMemory::new();
        mem.write_u64_slice(src, &data);
        let mut cpu = Cpu::new();
        cpu.run(&prog, &mut mem, 1_000_000).unwrap();
        prop_assert!(cpu.is_halted());
        for (k, v) in data.iter().enumerate() {
            prop_assert_eq!(mem.read_u64(dst + 8 * k as u64), *v);
        }
    }

    /// Effective-address arithmetic matches the closed form.
    #[test]
    fn effective_address_closed_form(
        base in any::<u64>(),
        index in any::<u64>(),
        scale in 0u8..4,
        offset in -1024i64..1024,
    ) {
        let addr = MemAddr { base: Reg::R1, index: Some(Reg::R2), scale, offset };
        let got = addr.effective(|r| if r == Reg::R1 { base } else { index });
        let want = base
            .wrapping_add(offset as u64)
            .wrapping_add(index.wrapping_shl(scale as u32));
        prop_assert_eq!(got, want);
    }
}

/// Strategy producing an arbitrary valid instruction with resolvable
/// targets within `len`.
fn arb_instr(len: usize) -> impl Strategy<Value = Instr> {
    let reg = (0usize..16).prop_map(|i| Reg::from_index(i).unwrap());
    let op = prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
        AluOp::Sne,
        AluOp::Min,
        AluOp::Max,
    ]);
    let width = prop::sample::select(vec![MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8]);
    let addr = (reg.clone(), prop::option::of(reg.clone()), 0u8..4, -512i64..512).prop_map(
        |(base, index, scale, offset)| MemAddr {
            base,
            // Scale is dead (and not printed) without an index register.
            scale: if index.is_some() { scale } else { 0 },
            index,
            offset,
        },
    );
    prop_oneof![
        (reg.clone(), any::<i32>()).prop_map(|(rd, v)| Instr::Imm { rd, value: v as i64 }),
        (op.clone(), reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, rd, ra, rb)| Instr::Alu { op, rd, ra, rb }),
        (op, reg.clone(), reg.clone(), -1000i64..1000)
            .prop_map(|(op, rd, ra, imm)| Instr::AluImm { op, rd, ra, imm }),
        (reg.clone(), addr.clone(), width.clone()).prop_map(|(rd, addr, width)| Instr::Load {
            rd,
            addr,
            width
        }),
        (reg.clone(), addr, width).prop_map(|(rs, addr, width)| Instr::Store { rs, addr, width }),
        (reg, 0usize..len.max(1)).prop_map(|(rs, target)| Instr::Branch {
            cond: sim_isa::BranchCond::Nez,
            rs,
            target
        }),
        (0usize..len.max(1)).prop_map(|target| Instr::Jump { target }),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Disassembling any program and re-parsing it reproduces it exactly.
    #[test]
    fn disassembly_roundtrips(
        instrs in (1usize..32)
            .prop_flat_map(|len| prop::collection::vec(arb_instr(len), len)),
    ) {
        let mut asm = Asm::new();
        for i in &instrs {
            asm.emit(*i);
        }
        let prog = asm.finish().unwrap();
        let text = prog.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{text}\n{e}"));
        prop_assert_eq!(prog.instrs(), reparsed.instrs());
    }
}
