//! Property test for architectural checkpoints: saving at a *random*
//! retirement point, round-tripping through bytes, restoring, and
//! resuming must reproduce the uninterrupted run exactly — digest-for-
//! digest — on every workload in the suite.

use std::sync::OnceLock;

use proptest::prelude::*;
use sim_isa::{Cpu, CpuCheckpoint, MemoryCheckpoint, SparseMemory};
use workloads::{Benchmark, GraphInput, SizeClass, Workload};

/// How far each run executes. Small enough to keep the property cheap,
/// long enough that every benchmark is deep inside its kernel.
const TOTAL: u64 = 40_000;

fn suite() -> &'static Vec<Workload> {
    static SUITE: OnceLock<Vec<Workload>> = OnceLock::new();
    SUITE.get_or_init(|| {
        Benchmark::ALL
            .into_iter()
            .map(|b| b.build(b.is_gap().then_some(GraphInput::Kr), SizeClass::Small, 42))
            .collect()
    })
}

/// One number summarising the complete architectural state.
fn digest(cpu: &Cpu, mem: &SparseMemory) -> (u64, usize, u64, [u64; sim_isa::NUM_REGS], u64) {
    (cpu.retired(), cpu.pc(), if cpu.is_halted() { 1 } else { 0 }, cpu.regs(), mem.checksum())
}

proptest! {
    // Each case runs two full functional executions; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint at a random split point, serialize, restore, resume:
    /// the final architectural digest matches the uninterrupted run.
    #[test]
    fn checkpoint_restore_resume_matches_uninterrupted(
        which in 0usize..13,
        permille in 50u64..950,
    ) {
        let wl = &suite()[which];
        let split = TOTAL * permille / 1000;

        // Uninterrupted reference.
        let mut ref_cpu = Cpu::new();
        let mut ref_mem = wl.mem.clone();
        ref_cpu.run(&wl.prog, &mut ref_mem, TOTAL).unwrap();

        // Interrupted run: stop at `split`, checkpoint through bytes.
        let mut cpu = Cpu::new();
        let mut mem = wl.mem.clone();
        let done = cpu.run(&wl.prog, &mut mem, split).unwrap();
        let cpu_ck = CpuCheckpoint::from_bytes(&cpu.checkpoint().to_bytes())
            .expect("cpu image parses");
        let mem_ck = MemoryCheckpoint::from_bytes(&mem.checkpoint_delta(&wl.mem).to_bytes())
            .expect("mem image parses");
        let mut cpu = Cpu::from_checkpoint(&cpu_ck);
        let mut mem = SparseMemory::restore_from(&wl.mem, &mem_ck);
        prop_assert_eq!(cpu.retired(), done);
        cpu.run(&wl.prog, &mut mem, TOTAL - done).unwrap();

        prop_assert_eq!(digest(&cpu, &mem), digest(&ref_cpu, &ref_mem), "{}", wl.name);
    }
}
