//! # sim-isa — the instruction set of the DVR simulator
//!
//! A minimal, deterministic RISC-like instruction set used as the substrate
//! for the Decoupled Vector Runahead (MICRO 2023) reproduction. The paper
//! evaluates x86 binaries under the Sniper simulator; we substitute this ISA
//! so the whole stack can be built from scratch:
//!
//! * **16 integer architectural registers** — so DVR's Vector Taint Tracker
//!   is literally the paper's 16-bit register (Section 4.1.2) and the VRAT a
//!   16-entry table (Section 4.2.1).
//! * **Indexed addressing** (`base + (index << scale) + offset`) — the idiom
//!   behind striding and indirect loads in graph/database/HPC kernels.
//! * **Compare + branch-on-register** — the `cmp`/`branch` pair Discovery
//!   Mode's Loop-Bound Detector keys on (Section 4.1.3).
//!
//! The crate provides the instruction definition ([`Instr`]), an assembler
//! with labels ([`Asm`]), a byte-addressed sparse memory ([`SparseMemory`]),
//! and a functional executor ([`Cpu`]) that drives the execution-driven
//! timing model in `sim-ooo`.
//!
//! ## Example
//!
//! ```
//! use sim_isa::{Asm, Cpu, Reg, SparseMemory, StepEvent};
//!
//! // sum = a[0] + a[1] + ... + a[7]
//! let mut asm = Asm::new();
//! let (base, i, n, sum, tmp) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
//! asm.li(base, 0x1000);
//! asm.li(i, 0);
//! asm.li(n, 8);
//! asm.li(sum, 0);
//! let loop_top = asm.here();
//! asm.ld8_idx(tmp, base, i, 3); // tmp = mem[base + i*8]
//! asm.add(sum, sum, tmp);
//! asm.addi(i, i, 1);
//! let cond = Reg::R6;
//! asm.slt(cond, i, n);
//! asm.bnz(cond, loop_top);
//! asm.halt();
//! let prog = asm.finish()?;
//!
//! let mut mem = SparseMemory::new();
//! for k in 0..8u64 {
//!     mem.write_u64(0x1000 + 8 * k, k + 1);
//! }
//! let mut cpu = Cpu::new();
//! while let StepEvent::Executed(_) = cpu.step(&prog, &mut mem)? {}
//! assert_eq!(cpu.reg(sum), 36);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod exec;
pub mod fxhash;
mod instr;
mod mem;
mod parse;
mod reg;

pub use asm::{Asm, AsmError, Label};
pub use exec::{
    exec_lane, lane_taint_step, BoundsTracker, Cpu, CpuCheckpoint, ExecError, LaneEffect,
    MemAccess, NullWarmSink, SecretTaint, Step, StepEvent, WarmSink,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use instr::{
    validate_regions, validate_secrets, AluOp, BranchCond, Instr, MemAddr, MemWidth, Program,
    RegionError, SecretRangeError,
};
pub use mem::{MemoryCheckpoint, SparseMemory};
pub use parse::{parse_program, ParseError};
pub use reg::{Reg, NUM_REGS};
