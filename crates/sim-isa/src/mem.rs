//! Byte-addressed sparse memory.

use std::collections::HashMap;
use std::fmt;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// A flat 64-bit byte-addressed memory, allocated in 4 KiB pages on first
/// touch. Unwritten bytes read as zero.
///
/// This is the *functional* memory image shared by the main thread's
/// executor and the runahead engines; timing is modelled separately in
/// `sim-mem`.
///
/// # Example
///
/// ```
/// use sim_isa::SparseMemory;
/// let mut mem = SparseMemory::new();
/// mem.write_u64(0xdead_0000, 42);
/// assert_eq!(mem.read_u64(0xdead_0000), 42);
/// assert_eq!(mem.read_u64(0x1234), 0); // untouched => zero
/// ```
#[derive(Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Resident footprint in bytes (allocated pages × page size).
    pub fn footprint_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes (1, 2, 4, or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        let off = (addr & PAGE_MASK) as usize;
        if off + width as usize <= PAGE_SIZE {
            // Fast path: within one page.
            match self.page(addr) {
                Some(p) => {
                    let mut v: u64 = 0;
                    for k in (0..width as usize).rev() {
                        v = (v << 8) | p[off + k] as u64;
                    }
                    v
                }
                None => 0,
            }
        } else {
            let mut v: u64 = 0;
            for k in (0..width).rev() {
                v = (v << 8) | self.read_u8(addr.wrapping_add(k)) as u64;
            }
            v
        }
    }

    /// Writes the low `width` bytes (1, 2, 4, or 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        let off = (addr & PAGE_MASK) as usize;
        if off + width as usize <= PAGE_SIZE {
            let p = self.page_mut(addr);
            let bytes = value.to_le_bytes();
            p[off..off + width as usize].copy_from_slice(&bytes[..width as usize]);
        } else {
            let mut v = value;
            for k in 0..width {
                self.write_u8(addr.wrapping_add(k), (v & 0xff) as u8);
                v >>= 8;
            }
        }
    }

    /// Reads a 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Reads a 32-bit word (zero-extended).
    pub fn read_u32(&self, addr: u64) -> u64 {
        self.read(addr, 4)
    }

    /// Writes a 32-bit word.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write(addr, 4, value as u64);
    }

    /// Writes a slice of u64 words starting at `addr` (convenience for
    /// workload setup).
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (k, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * k as u64, *v);
        }
    }

    /// Writes a slice of u32 words starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (k, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * k as u64, *v);
        }
    }
}

impl fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SparseMemory")
            .field("pages", &self.pages.len())
            .field("footprint_bytes", &self.footprint_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read(u64::MAX - 8, 8), 0);
        assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn write_read_roundtrip_widths() {
        let mut mem = SparseMemory::new();
        mem.write(0x100, 1, 0xABCD); // truncates to 0xCD
        assert_eq!(mem.read(0x100, 1), 0xCD);
        mem.write(0x200, 2, 0x1234_5678);
        assert_eq!(mem.read(0x200, 2), 0x5678);
        mem.write(0x300, 4, 0xDEAD_BEEF_CAFE);
        assert_eq!(mem.read(0x300, 4), 0xBEEF_CAFE);
        mem.write(0x400, 8, u64::MAX - 1);
        assert_eq!(mem.read(0x400, 8), u64::MAX - 1);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 0x0807_0605_0403_0201);
        for k in 0..8 {
            assert_eq!(mem.read_u8(0x1000 + k), (k + 1) as u8);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut mem = SparseMemory::new();
        let addr = (1 << 12) - 3; // straddles the first page boundary
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn slice_helpers() {
        let mut mem = SparseMemory::new();
        mem.write_u64_slice(0x2000, &[1, 2, 3]);
        assert_eq!(mem.read_u64(0x2008), 2);
        mem.write_u32_slice(0x3000, &[7, 8]);
        assert_eq!(mem.read_u32(0x3004), 8);
    }

    #[test]
    #[should_panic(expected = "invalid access width")]
    fn invalid_width_panics() {
        let mem = SparseMemory::new();
        let _ = mem.read(0, 3);
    }
}
