//! Byte-addressed sparse memory.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fxhash::FxHashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// Sentinel for "no page cached" in [`SparseMemory::last`]. Unreachable as
/// a real entry: it would need page number `u32::MAX` *and* slot
/// `u32::MAX`, and only pages below `u32::MAX` are ever cached.
const NO_CACHE: u64 = u64::MAX;

/// A flat 64-bit byte-addressed memory, allocated in 4 KiB pages on first
/// touch. Unwritten bytes read as zero.
///
/// This is the *functional* memory image shared by the main thread's
/// executor and the runahead engines; timing is modelled separately in
/// `sim-mem`.
///
/// Pages live in a flat slot vector; a hash map (FxHash — page-number keys
/// need no SipHash) translates page number → slot, and a one-entry cache
/// remembers the last translation so the common page-local access streams
/// skip the map entirely. The cache is an [`AtomicU64`] (packed
/// `page << 32 | slot`, relaxed ordering) so reads through `&self` can
/// refresh it while the type stays `Sync` for sharing built workloads
/// across simulation threads.
///
/// # Example
///
/// ```
/// use sim_isa::SparseMemory;
/// let mut mem = SparseMemory::new();
/// mem.write_u64(0xdead_0000, 42);
/// assert_eq!(mem.read_u64(0xdead_0000), 42);
/// assert_eq!(mem.read_u64(0x1234), 0); // untouched => zero
/// ```
#[derive(Default)]
pub struct SparseMemory {
    /// Page payloads, indexed by slot.
    slots: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Page number → slot index.
    map: FxHashMap<u64, u32>,
    /// Last successful translation, packed `page << 32 | slot`.
    last: AtomicU64,
}

impl Clone for SparseMemory {
    fn clone(&self) -> Self {
        // Slot indices are position-based, so the cached translation stays
        // valid in the clone; the atomic itself cannot be derived `Clone`.
        SparseMemory {
            slots: self.slots.clone(),
            map: self.map.clone(),
            last: AtomicU64::new(self.last.load(Ordering::Relaxed)),
        }
    }
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        SparseMemory {
            slots: Vec::new(),
            map: FxHashMap::default(),
            last: AtomicU64::new(NO_CACHE),
        }
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.slots.len()
    }

    /// Resident footprint in bytes (allocated pages × page size).
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * PAGE_SIZE
    }

    /// An order-independent digest of the architectural memory contents.
    ///
    /// Two memories with identical byte contents produce identical
    /// checksums regardless of page allocation order, so tests can assert
    /// that two runs ended in the same architectural state (e.g. that
    /// prefetch-path fault injection never perturbs it). All-zero pages
    /// hash like absent pages: untouched bytes read as zero either way.
    pub fn checksum(&self) -> u64 {
        let mut sum = 0u64;
        for (&page, &slot) in &self.map {
            let bytes = &self.slots[slot as usize];
            if bytes.iter().all(|&b| b == 0) {
                continue;
            }
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ page.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for &b in bytes.iter() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            // XOR-combine per-page digests so map iteration order cannot
            // matter.
            sum ^= h;
        }
        sum
    }

    /// Translates `page` to its slot, consulting the one-entry cache first.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<usize> {
        let packed = self.last.load(Ordering::Relaxed);
        if packed >> 32 == page && packed != NO_CACHE {
            return Some((packed & 0xffff_ffff) as usize);
        }
        let slot = *self.map.get(&page)?;
        if page < u32::MAX as u64 {
            self.last.store(page << 32 | slot as u64, Ordering::Relaxed);
        }
        Some(slot as usize)
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.slot_of(addr >> PAGE_SHIFT).map(|s| &*self.slots[s])
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        let page = addr >> PAGE_SHIFT;
        let slot = match self.slot_of(page) {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Box::new([0u8; PAGE_SIZE]));
                self.map.insert(page, s);
                if page < u32::MAX as u64 {
                    *self.last.get_mut() = page << 32 | s as u64;
                }
                s as usize
            }
        };
        &mut self.slots[slot]
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes (1, 2, 4, or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        let off = (addr & PAGE_MASK) as usize;
        if off + width as usize <= PAGE_SIZE {
            // Fast path: within one page.
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..width as usize].copy_from_slice(&p[off..off + width as usize]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v: u64 = 0;
            for k in (0..width).rev() {
                v = (v << 8) | self.read_u8(addr.wrapping_add(k)) as u64;
            }
            v
        }
    }

    /// Writes the low `width` bytes (1, 2, 4, or 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid access width {width}");
        let off = (addr & PAGE_MASK) as usize;
        if off + width as usize <= PAGE_SIZE {
            let p = self.page_mut(addr);
            let bytes = value.to_le_bytes();
            p[off..off + width as usize].copy_from_slice(&bytes[..width as usize]);
        } else {
            let mut v = value;
            for k in 0..width {
                self.write_u8(addr.wrapping_add(k), (v & 0xff) as u8);
                v >>= 8;
            }
        }
    }

    /// Reads a 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Reads a 32-bit word (zero-extended).
    pub fn read_u32(&self, addr: u64) -> u64 {
        self.read(addr, 4)
    }

    /// Writes a 32-bit word.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write(addr, 4, value as u64);
    }

    /// Writes a slice of u64 words starting at `addr` (convenience for
    /// workload setup).
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (k, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * k as u64, *v);
        }
    }

    /// Writes a slice of u32 words starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (k, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * k as u64, *v);
        }
    }

    /// Captures the pages of `self` that differ from `base` as a sparse
    /// delta checkpoint.
    ///
    /// `base` is typically the pristine workload image this memory evolved
    /// from (writes only ever allocate pages, so every page of `base` is
    /// still present in `self`). Pages absent from `base` compare against
    /// zeros, so a checkpoint against `SparseMemory::new()` captures every
    /// non-zero page.
    pub fn checkpoint_delta(&self, base: &SparseMemory) -> MemoryCheckpoint {
        let zero = [0u8; PAGE_SIZE];
        let mut pages: Vec<(u64, Box<[u8; PAGE_SIZE]>)> = Vec::new();
        for (&page, &slot) in &self.map {
            let cur: &[u8; PAGE_SIZE] = &self.slots[slot as usize];
            let was: &[u8; PAGE_SIZE] = match base.map.get(&page) {
                Some(&s) => &base.slots[s as usize],
                None => &zero,
            };
            if cur[..] != was[..] {
                pages.push((page, Box::new(*cur)));
            }
        }
        // Map iteration order is nondeterministic; sort so serialized
        // checkpoints are byte-identical across runs.
        pages.sort_unstable_by_key(|&(p, _)| p);
        MemoryCheckpoint { pages }
    }

    /// Reconstructs the checkpointed memory: a clone of `base` with the
    /// delta's pages applied. Inverse of [`SparseMemory::checkpoint_delta`]
    /// (for a delta taken against the same `base`).
    pub fn restore_from(base: &SparseMemory, delta: &MemoryCheckpoint) -> SparseMemory {
        let mut mem = base.clone();
        for (page, bytes) in &delta.pages {
            *mem.page_mut(page << PAGE_SHIFT) = **bytes;
        }
        mem
    }
}

/// A sparse dirty-page delta of a [`SparseMemory`] against a base image —
/// the memory half of an architectural checkpoint. Serializable and
/// deterministic (pages are stored in ascending page-number order).
#[derive(Clone, PartialEq, Eq)]
pub struct MemoryCheckpoint {
    /// `(page_number, page_bytes)` pairs, sorted by page number.
    pages: Vec<(u64, Box<[u8; PAGE_SIZE]>)>,
}

/// Version/magic tag prefixed to serialized memory checkpoints.
const MEM_CKPT_MAGIC: u32 = 0x4456_524d; // "DVRM"

impl MemoryCheckpoint {
    /// Number of pages captured in the delta.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Serializes the delta to a deterministic little-endian byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + self.pages.len() * (8 + PAGE_SIZE));
        out.extend_from_slice(&MEM_CKPT_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.pages.len() as u64).to_le_bytes());
        for (page, bytes) in &self.pages {
            out.extend_from_slice(&page.to_le_bytes());
            out.extend_from_slice(&bytes[..]);
        }
        out
    }

    /// Deserializes a delta produced by [`MemoryCheckpoint::to_bytes`].
    /// Returns `None` on a truncated or foreign byte image.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 || bytes[..4] != MEM_CKPT_MAGIC.to_le_bytes() {
            return None;
        }
        let n = u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize;
        if bytes.len() != 12 + n * (8 + PAGE_SIZE) {
            return None;
        }
        let mut pages = Vec::with_capacity(n);
        let mut off = 12;
        for _ in 0..n {
            let page = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let mut payload = Box::new([0u8; PAGE_SIZE]);
            payload.copy_from_slice(&bytes[off + 8..off + 8 + PAGE_SIZE]);
            pages.push((page, payload));
            off += 8 + PAGE_SIZE;
        }
        Some(MemoryCheckpoint { pages })
    }
}

impl fmt::Debug for MemoryCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryCheckpoint").field("pages", &self.pages.len()).finish()
    }
}

impl fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SparseMemory")
            .field("pages", &self.slots.len())
            .field("footprint_bytes", &self.footprint_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read(u64::MAX - 8, 8), 0);
        assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn checksum_tracks_contents_not_allocation() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        assert_eq!(a.checksum(), b.checksum());
        // Same contents written in a different page-allocation order.
        a.write_u64(0x10_0000, 7);
        a.write_u64(0x2000, 9);
        b.write_u64(0x2000, 9);
        b.write_u64(0x10_0000, 7);
        assert_eq!(a.checksum(), b.checksum());
        // A page that was touched but holds only zeros is equivalent to an
        // untouched one.
        a.write_u64(0x50_0000, 0);
        assert_eq!(a.checksum(), b.checksum());
        // Content changes show up.
        b.write_u8(0x2001, 1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn write_read_roundtrip_widths() {
        let mut mem = SparseMemory::new();
        mem.write(0x100, 1, 0xABCD); // truncates to 0xCD
        assert_eq!(mem.read(0x100, 1), 0xCD);
        mem.write(0x200, 2, 0x1234_5678);
        assert_eq!(mem.read(0x200, 2), 0x5678);
        mem.write(0x300, 4, 0xDEAD_BEEF_CAFE);
        assert_eq!(mem.read(0x300, 4), 0xBEEF_CAFE);
        mem.write(0x400, 8, u64::MAX - 1);
        assert_eq!(mem.read(0x400, 8), u64::MAX - 1);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 0x0807_0605_0403_0201);
        for k in 0..8 {
            assert_eq!(mem.read_u8(0x1000 + k), (k + 1) as u8);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut mem = SparseMemory::new();
        let addr = (1 << 12) - 3; // straddles the first page boundary
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn straddle_read_of_cached_page_sees_both_pages() {
        let mut mem = SparseMemory::new();
        // Populate two adjacent pages, then make page 0 the cached entry.
        mem.write_u8(0x0ffd, 0xAA);
        mem.write_u64(0x1000, 0x0807_0605_0403_0201);
        assert_eq!(mem.read_u8(0x10), 0); // caches page 0
                                          // An 8-byte read starting 3 bytes before the boundary must combine
                                          // the cached page with its (uncached) successor byte by byte.
        assert_eq!(mem.read_u64(0x0ffd), 0x0504_0302_0100_00AA);
        // And the same straddle via write: overwrite across the boundary
        // while the *second* page is the cached one.
        assert_eq!(mem.read_u8(0x1010), 0); // caches page 1
        mem.write_u64(0x0ffd, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(0x0ffd), 0x1122_3344_5566_7788);
    }

    #[test]
    fn clone_is_independent_after_caching() {
        let mut a = SparseMemory::new();
        a.write_u64(0x2000, 7);
        assert_eq!(a.read_u64(0x2000), 7); // warm the one-entry cache
        let mut b = a.clone();
        b.write_u64(0x2000, 99); // hits the cached translation in the clone
        b.write_u64(0x5000, 1); // grows the clone's slot vector
        assert_eq!(a.read_u64(0x2000), 7, "clone writes must not alias the original");
        assert_eq!(a.read_u64(0x5000), 0);
        assert_eq!(b.read_u64(0x2000), 99);
        a.write_u64(0x2000, 13);
        assert_eq!(b.read_u64(0x2000), 99, "original writes must not alias the clone");
    }

    #[test]
    fn huge_addresses_bypass_the_cache_correctly() {
        let mut mem = SparseMemory::new();
        let hi = (u32::MAX as u64) << PAGE_SHIFT; // page number == u32::MAX
        mem.write_u64(hi, 0xfeed);
        mem.write_u64(0x3000, 0xbeef);
        assert_eq!(mem.read_u64(hi), 0xfeed);
        assert_eq!(mem.read_u64(0x3000), 0xbeef);
        assert_eq!(mem.read_u64(hi), 0xfeed);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn slice_helpers() {
        let mut mem = SparseMemory::new();
        mem.write_u64_slice(0x2000, &[1, 2, 3]);
        assert_eq!(mem.read_u64(0x2008), 2);
        mem.write_u32_slice(0x3000, &[7, 8]);
        assert_eq!(mem.read_u32(0x3004), 8);
    }

    #[test]
    #[should_panic(expected = "invalid access width")]
    fn invalid_width_panics() {
        let mem = SparseMemory::new();
        let _ = mem.read(0, 3);
    }

    #[test]
    fn checkpoint_delta_roundtrip() {
        let mut base = SparseMemory::new();
        base.write_u64(0x1000, 1);
        base.write_u64(0x20_0000, 2);

        let mut run = base.clone();
        run.write_u64(0x20_0000, 99); // modify an existing page
        run.write_u64(0x50_0000, 7); // allocate a new page
        run.write_u64(0x9000, 0); // touched but still all-zero

        let delta = run.checkpoint_delta(&base);
        // Only genuinely-changed pages are captured: the modified page and
        // the new non-zero page (the all-zero page matches the zero base).
        assert_eq!(delta.page_count(), 2);

        let bytes = delta.to_bytes();
        let back = MemoryCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
        assert_eq!(back.to_bytes(), bytes, "serialization must be deterministic");

        let restored = SparseMemory::restore_from(&base, &back);
        assert_eq!(restored.checksum(), run.checksum());
        assert_eq!(restored.read_u64(0x1000), 1);
        assert_eq!(restored.read_u64(0x20_0000), 99);
        assert_eq!(restored.read_u64(0x50_0000), 7);
    }

    #[test]
    fn checkpoint_bytes_reject_corruption() {
        let mem = SparseMemory::new();
        let delta = mem.checkpoint_delta(&mem);
        let mut bytes = delta.to_bytes();
        assert!(MemoryCheckpoint::from_bytes(&bytes[..4]).is_none());
        bytes[0] ^= 0xff;
        assert!(MemoryCheckpoint::from_bytes(&bytes).is_none());
    }
}
