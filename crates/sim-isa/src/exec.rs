//! Functional execution: the architectural CPU state and a per-lane
//! interpreter used by the runahead engines.

use std::error::Error;
use std::fmt;

use crate::fxhash::FxHashMap;
use crate::instr::{Instr, Program};
use crate::mem::SparseMemory;
use crate::reg::{Reg, NUM_REGS};

/// A memory access performed by one executed instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub width: u64,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// The value loaded or stored.
    pub value: u64,
}

/// The outcome of executing one dynamic instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Step {
    /// PC of the executed instruction.
    pub pc: usize,
    /// The executed instruction.
    pub instr: Instr,
    /// PC of the next instruction on the (architecturally correct) path.
    pub next_pc: usize,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// For conditional branches, whether the branch was taken.
    pub branch_taken: Option<bool>,
    /// Value written to the destination register, if any.
    pub dst_value: Option<u64>,
}

/// Result of [`Cpu::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepEvent {
    /// An instruction executed.
    Executed(Step),
    /// The program halted (via [`Instr::Halt`] or running off the end).
    Halted,
}

/// Error produced by the functional executor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The PC points outside the program and the program did not halt.
    PcOutOfRange {
        /// The offending PC.
        pc: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} out of program range"),
        }
    }
}

impl Error for ExecError {}

/// Architectural secret-taint shadow state for the functional executor.
///
/// Tracks, per architectural register, whether the current value was
/// (transitively) derived from memory declared secret via `.secret`
/// directives, flowing taint through ALU ops, loads, and stores (store→load
/// flow at exact-address granularity). Purely an **observer**: it changes no
/// architectural value and no timing — it exists so the leak audit can
/// confirm which static taint findings a program actually exercises.
#[derive(Clone, Debug, Default)]
pub struct SecretTaint {
    regs: u16,
    tainted_words: FxHashMap<u64, ()>,
    /// Loads whose *data* came from a secret region (taint sources).
    pub secret_reads: u64,
    /// Loads and stores whose *address* was secret-derived (architectural
    /// transmitters — under speculation these are the gather gadgets).
    pub tainted_addr_accesses: u64,
    /// Conditional branches steered by a secret-derived register.
    pub tainted_branches: u64,
    transmit_pcs: FxHashMap<usize, u64>,
}

impl SecretTaint {
    fn get(&self, r: Reg) -> bool {
        self.regs & r.bit() != 0
    }

    fn set(&mut self, r: Reg, tainted: bool) {
        if tainted {
            self.regs |= r.bit();
        } else {
            self.regs &= !r.bit();
        }
    }

    /// The current register taint mask (bit *i* = `r<i>` is secret-derived).
    pub fn reg_mask(&self) -> u16 {
        self.regs
    }

    /// Transmitting PCs with their access counts, pc-sorted.
    pub fn transmit_pcs(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.transmit_pcs.iter().map(|(&p, &n)| (p, n)).collect();
        v.sort_unstable();
        v
    }

    fn observe(&mut self, prog: &Program, step: &Step) {
        match step.instr {
            Instr::Imm { rd, .. } => self.set(rd, false),
            Instr::Alu { rd, ra, rb, .. } => {
                let t = self.get(ra) || self.get(rb);
                self.set(rd, t);
            }
            Instr::AluImm { rd, ra, .. } => {
                let t = self.get(ra);
                self.set(rd, t);
            }
            Instr::Load { rd, addr, .. } => {
                let addr_tainted = self.get(addr.base) || addr.index.is_some_and(|ix| self.get(ix));
                let a = step.mem.expect("executed loads report their access").addr;
                if addr_tainted {
                    self.tainted_addr_accesses += 1;
                    *self.transmit_pcs.entry(step.pc).or_insert(0) += 1;
                }
                let mut t = addr_tainted;
                if prog.is_secret_addr(a) {
                    self.secret_reads += 1;
                    t = true;
                }
                if self.tainted_words.contains_key(&a) {
                    t = true;
                }
                self.set(rd, t);
            }
            Instr::Store { rs, addr, .. } => {
                let addr_tainted = self.get(addr.base) || addr.index.is_some_and(|ix| self.get(ix));
                let a = step.mem.expect("executed stores report their access").addr;
                if addr_tainted {
                    self.tainted_addr_accesses += 1;
                    *self.transmit_pcs.entry(step.pc).or_insert(0) += 1;
                }
                if self.get(rs) {
                    self.tainted_words.insert(a, ());
                } else {
                    self.tainted_words.remove(&a);
                }
            }
            Instr::Branch { rs, .. } => {
                if self.get(rs) {
                    self.tainted_branches += 1;
                }
            }
            Instr::Jump { .. } | Instr::Nop | Instr::Halt => {}
        }
    }
}

/// Architectural bounds-observation shadow for the functional executor.
///
/// Records, per *static* memory instruction (pc), the minimum start address
/// and maximum end address (inclusive) of every access it has issued.
/// Purely an **observer**: it changes no architectural value and no timing
/// — it exists so the bounds audit (`dvrsim bounds-audit`) can diff the
/// static interval claims of the bounds verifier against the addresses a
/// real execution actually touched.
#[derive(Clone, Debug, Default)]
pub struct BoundsTracker {
    /// pc → (min start address, max inclusive end address).
    extents: FxHashMap<usize, (u64, u64)>,
    /// Total memory accesses observed.
    pub accesses: u64,
}

impl BoundsTracker {
    fn observe(&mut self, step: &Step) {
        let Some(m) = step.mem else { return };
        self.accesses += 1;
        let end = m.addr.saturating_add(m.width - 1);
        let e = self.extents.entry(step.pc).or_insert((m.addr, end));
        e.0 = e.0.min(m.addr);
        e.1 = e.1.max(end);
    }

    /// Observed extents as `(pc, min_start, max_end)`, pc-sorted.
    pub fn extents(&self) -> Vec<(usize, u64, u64)> {
        let mut v: Vec<(usize, u64, u64)> =
            self.extents.iter().map(|(&pc, &(lo, hi))| (pc, lo, hi)).collect();
        v.sort_unstable();
        v
    }

    /// The extent observed for the memory instruction at `pc`, if any
    /// access executed.
    pub fn extent(&self, pc: usize) -> Option<(u64, u64)> {
        self.extents.get(&pc).copied()
    }

    /// Folds another tracker's observations into this one (used to merge
    /// per-lane speculative extents into the architectural tracker).
    pub fn merge(&mut self, other: &BoundsTracker) {
        self.accesses += other.accesses;
        for (&pc, &(lo, hi)) in other.extents.iter() {
            let e = self.extents.entry(pc).or_insert((lo, hi));
            e.0 = e.0.min(lo);
            e.1 = e.1.max(hi);
        }
    }

    /// Records one raw access (used by the runahead walkers for
    /// speculative lane loads that never retire architecturally).
    pub fn note_access(&mut self, pc: usize, addr: u64, width: u64) {
        self.accesses += 1;
        let end = addr.saturating_add(width.max(1) - 1);
        let e = self.extents.entry(pc).or_insert((addr, end));
        e.0 = e.0.min(addr);
        e.1 = e.1.max(end);
    }
}

/// One step of the speculative per-lane secret-taint shadow used by the
/// runahead walkers: updates a 16-bit register taint mask for an executed
/// instruction and returns `true` when the instruction issued a load whose
/// *address* was secret-derived (a speculative transmitter — the line fill
/// it triggers encodes secret data in microarchitectural state).
///
/// `load_addr` is the effective address when the instruction loaded
/// (`None` otherwise; runahead lanes suppress stores, so stores never
/// reach the hierarchy and never transmit here).
pub fn lane_taint_step(
    prog: &Program,
    instr: &Instr,
    mask: &mut u16,
    load_addr: Option<u64>,
) -> bool {
    let src_tainted = instr.srcs().any(|r| *mask & r.bit() != 0);
    let transmitted = src_tainted && load_addr.is_some();
    let mut tainted = src_tainted;
    if let Some(a) = load_addr {
        if prog.is_secret_addr(a) {
            tainted = true;
        }
    }
    if let Some(dst) = instr.dst() {
        if tainted {
            *mask |= dst.bit();
        } else {
            *mask &= !dst.bit();
        }
    }
    transmitted
}

/// The architectural CPU state: 16 integer registers and a program counter.
///
/// `Cpu` executes instructions *functionally* and in order; the cycle-level
/// timing is layered on top by `sim-ooo` (execute-at-fetch). See the crate
/// docs for a full example.
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u64; NUM_REGS],
    pc: usize,
    halted: bool,
    retired: u64,
    /// Gated secret-taint shadow; `None` (the default) costs nothing.
    /// Not part of checkpoints — it is an observer, not architectural state.
    taint: Option<Box<SecretTaint>>,
    /// Gated bounds-observation shadow; same gating and checkpoint rules
    /// as `taint`.
    bounds: Option<Box<BoundsTracker>>,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates a CPU with all registers zero and `pc = 0`.
    pub fn new() -> Self {
        Cpu { regs: [0; NUM_REGS], pc: 0, halted: false, retired: 0, taint: None, bounds: None }
    }

    /// Starts tracking per-static-instruction address extents (see
    /// [`BoundsTracker`]).
    pub fn enable_bounds_tracker(&mut self) {
        self.bounds = Some(Box::default());
    }

    /// The bounds-observation shadow so far, when tracking is enabled.
    pub fn bounds_tracker(&self) -> Option<&BoundsTracker> {
        self.bounds.as_deref()
    }

    /// Takes the bounds-observation shadow, leaving tracking disabled.
    /// `None` if tracking was never enabled.
    pub fn take_bounds_tracker(&mut self) -> Option<BoundsTracker> {
        self.bounds.take().map(|b| *b)
    }

    /// Starts tracking architectural secret taint (see [`SecretTaint`]).
    pub fn enable_secret_taint(&mut self) {
        self.taint = Some(Box::default());
    }

    /// The secret-taint shadow so far, when tracking is enabled.
    pub fn secret_taint(&self) -> Option<&SecretTaint> {
        self.taint.as_deref()
    }

    /// Takes the secret-taint shadow, leaving tracking disabled.
    /// `None` if tracking was never enabled.
    pub fn take_secret_taint(&mut self) -> Option<SecretTaint> {
        self.taint.take().map(|b| *b)
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the CPU has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an architectural register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// A snapshot of the whole register file — used for Discovery Mode's
    /// loop-bound checkpoints and to seed runahead lane contexts.
    pub fn regs(&self) -> [u64; NUM_REGS] {
        self.regs
    }

    /// Executes one instruction, updating registers, memory, and the PC.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::PcOutOfRange`] only if the machine is driven
    /// past a malformed program; well-formed programs end with
    /// [`Instr::Halt`], reported as [`StepEvent::Halted`].
    pub fn step(&mut self, prog: &Program, mem: &mut SparseMemory) -> Result<StepEvent, ExecError> {
        if self.halted {
            return Ok(StepEvent::Halted);
        }
        let pc = self.pc;
        let instr = match prog.fetch(pc) {
            Some(i) => *i,
            None => {
                return if pc == prog.len() {
                    self.halted = true;
                    Ok(StepEvent::Halted)
                } else {
                    Err(ExecError::PcOutOfRange { pc })
                };
            }
        };

        let mut next_pc = pc + 1;
        let mut memacc = None;
        let mut branch_taken = None;
        let mut dst_value = None;

        match instr {
            Instr::Imm { rd, value } => {
                self.regs[rd.index()] = value as u64;
                dst_value = Some(value as u64);
            }
            Instr::Alu { op, rd, ra, rb } => {
                let v = op.eval(self.regs[ra.index()], self.regs[rb.index()]);
                self.regs[rd.index()] = v;
                dst_value = Some(v);
            }
            Instr::AluImm { op, rd, ra, imm } => {
                let v = op.eval(self.regs[ra.index()], imm as u64);
                self.regs[rd.index()] = v;
                dst_value = Some(v);
            }
            Instr::Load { rd, addr, width } => {
                let a = addr.effective(|r| self.regs[r.index()]);
                let v = mem.read(a, width.bytes());
                self.regs[rd.index()] = v;
                dst_value = Some(v);
                memacc =
                    Some(MemAccess { addr: a, width: width.bytes(), is_store: false, value: v });
            }
            Instr::Store { rs, addr, width } => {
                let a = addr.effective(|r| self.regs[r.index()]);
                let v = self.regs[rs.index()];
                mem.write(a, width.bytes(), v);
                memacc =
                    Some(MemAccess { addr: a, width: width.bytes(), is_store: true, value: v });
            }
            Instr::Branch { cond, rs, target } => {
                let taken = cond.taken(self.regs[rs.index()]);
                branch_taken = Some(taken);
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => {
                next_pc = target;
            }
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                self.retired += 1;
                return Ok(StepEvent::Executed(Step {
                    pc,
                    instr,
                    next_pc: pc,
                    mem: None,
                    branch_taken: None,
                    dst_value: None,
                }));
            }
        }

        self.pc = next_pc;
        self.retired += 1;
        let step = Step { pc, instr, next_pc, mem: memacc, branch_taken, dst_value };
        if let Some(t) = self.taint.as_mut() {
            t.observe(prog, &step);
        }
        if let Some(b) = self.bounds.as_mut() {
            b.observe(&step);
        }
        Ok(StepEvent::Executed(step))
    }

    /// Runs until halt or `max_steps`, returning the number of instructions
    /// executed. Convenience for tests and functional validation.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from [`Cpu::step`].
    pub fn run(
        &mut self,
        prog: &Program,
        mem: &mut SparseMemory,
        max_steps: u64,
    ) -> Result<u64, ExecError> {
        let mut n = 0;
        while n < max_steps {
            match self.step(prog, mem)? {
                StepEvent::Executed(_) => n += 1,
                StepEvent::Halted => break,
            }
        }
        Ok(n)
    }

    /// Functional fast-forward: runs like [`Cpu::run`] but streams every
    /// memory access and conditional-branch outcome through a [`WarmSink`].
    ///
    /// This is the sampling subsystem's warming mode — instructions retire
    /// architecturally without the OoO engine while the sink trains cache
    /// tags/LRU and branch-predictor tables, so a later detailed interval
    /// starts from warm microarchitectural state.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from [`Cpu::step`].
    pub fn run_warming<S: WarmSink>(
        &mut self,
        prog: &Program,
        mem: &mut SparseMemory,
        max_steps: u64,
        sink: &mut S,
    ) -> Result<u64, ExecError> {
        let mut n = 0;
        while n < max_steps {
            match self.step(prog, mem)? {
                StepEvent::Executed(s) => {
                    n += 1;
                    if let Some(m) = s.mem {
                        if m.is_store {
                            sink.store(s.pc, m.addr, m.width);
                        } else {
                            sink.load(s.pc, m.addr, m.width);
                        }
                    }
                    if let Some(taken) = s.branch_taken {
                        sink.branch(s.pc, taken);
                    }
                }
                StepEvent::Halted => break,
            }
        }
        Ok(n)
    }

    /// Saves the complete architectural CPU state.
    pub fn checkpoint(&self) -> CpuCheckpoint {
        CpuCheckpoint { regs: self.regs, pc: self.pc, halted: self.halted, retired: self.retired }
    }

    /// Reconstructs a CPU from a checkpoint. Resuming from the restored CPU
    /// (against restored memory) is byte-identical to never having stopped.
    pub fn from_checkpoint(ck: &CpuCheckpoint) -> Self {
        Cpu {
            regs: ck.regs,
            pc: ck.pc,
            halted: ck.halted,
            retired: ck.retired,
            taint: None,
            bounds: None,
        }
    }
}

/// Observer for the functional fast-forward mode ([`Cpu::run_warming`]):
/// receives every architectural memory access and conditional-branch outcome
/// so microarchitectural state (cache tags, predictor tables) can be warmed
/// without cycle-level simulation. All methods default to no-ops.
pub trait WarmSink {
    /// A demand load of `width` bytes at `addr`, issued by the instruction
    /// at `pc`.
    fn load(&mut self, pc: usize, addr: u64, width: u64) {
        let _ = (pc, addr, width);
    }
    /// A demand store of `width` bytes at `addr`, issued by the instruction
    /// at `pc`.
    fn store(&mut self, pc: usize, addr: u64, width: u64) {
        let _ = (pc, addr, width);
    }
    /// A conditional branch at `pc` resolved `taken`.
    fn branch(&mut self, pc: usize, taken: bool) {
        let _ = (pc, taken);
    }
}

/// A [`WarmSink`] that discards everything — pure fast-forward.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullWarmSink;

impl WarmSink for NullWarmSink {}

/// A serializable snapshot of the architectural CPU state (register file,
/// PC, halt flag, retirement count).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuCheckpoint {
    /// The architectural register file.
    pub regs: [u64; NUM_REGS],
    /// The program counter.
    pub pc: usize,
    /// Whether the CPU had halted.
    pub halted: bool,
    /// Instructions retired when the checkpoint was taken.
    pub retired: u64,
}

/// Version/magic tag prefixed to serialized checkpoints.
const CPU_CKPT_MAGIC: u32 = 0x4456_5243; // "DVRC"

impl CpuCheckpoint {
    /// Serializes the checkpoint to a deterministic little-endian byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + NUM_REGS * 8 + 8 + 1 + 8);
        out.extend_from_slice(&CPU_CKPT_MAGIC.to_le_bytes());
        for r in &self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.pc as u64).to_le_bytes());
        out.push(self.halted as u8);
        out.extend_from_slice(&self.retired.to_le_bytes());
        out
    }

    /// Deserializes a checkpoint produced by [`CpuCheckpoint::to_bytes`].
    /// Returns `None` on a truncated or foreign byte image.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let expect = 4 + NUM_REGS * 8 + 8 + 1 + 8;
        if bytes.len() != expect || bytes[..4] != CPU_CKPT_MAGIC.to_le_bytes() {
            return None;
        }
        let mut off = 4;
        let mut u64_at = |bytes: &[u8]| {
            let v = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            off += 8;
            v
        };
        let mut regs = [0u64; NUM_REGS];
        for r in &mut regs {
            *r = u64_at(bytes);
        }
        let pc = u64_at(bytes) as usize;
        let halted = bytes[off] != 0;
        let retired = u64::from_le_bytes(bytes[off + 1..off + 9].try_into().unwrap());
        Some(CpuCheckpoint { regs, pc, halted, retired })
    }
}

/// The effect of executing one instruction in a *speculative runahead lane*:
/// stores are suppressed (runahead is transient and must not perturb
/// architectural memory), loads read the live memory image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LaneEffect {
    /// PC the lane proceeds to.
    pub next_pc: usize,
    /// The lane reached a `Halt` (or ran off the program).
    pub halted: bool,
    /// Load performed: `(address, width_bytes)`.
    pub load: Option<(u64, u64)>,
    /// Store suppressed, address still reported: `(address, width_bytes)`.
    pub store: Option<(u64, u64)>,
    /// For conditional branches, the lane-local outcome.
    pub branch_taken: Option<bool>,
}

/// Executes the instruction at `pc` on a lane-private register file against
/// the shared memory image, without writing memory.
///
/// This is the per-lane semantics of the vector-runahead subthread: each of
/// the up-to-128 scalar-equivalent lanes interprets the same instruction on
/// its own register context (Section 4.2 of the paper). Timing (gather
/// splitting, MSHR allocation, masking) is handled by the engine in
/// `dvr-core`; this function only provides values and control flow.
pub fn exec_lane(
    prog: &Program,
    pc: usize,
    regs: &mut [u64; NUM_REGS],
    mem: &SparseMemory,
) -> LaneEffect {
    let instr = match prog.fetch(pc) {
        Some(i) => *i,
        None => {
            return LaneEffect {
                next_pc: pc,
                halted: true,
                load: None,
                store: None,
                branch_taken: None,
            };
        }
    };
    let mut eff =
        LaneEffect { next_pc: pc + 1, halted: false, load: None, store: None, branch_taken: None };
    match instr {
        Instr::Imm { rd, value } => regs[rd.index()] = value as u64,
        Instr::Alu { op, rd, ra, rb } => {
            regs[rd.index()] = op.eval(regs[ra.index()], regs[rb.index()]);
        }
        Instr::AluImm { op, rd, ra, imm } => {
            regs[rd.index()] = op.eval(regs[ra.index()], imm as u64);
        }
        Instr::Load { rd, addr, width } => {
            let a = addr.effective(|r| regs[r.index()]);
            regs[rd.index()] = mem.read(a, width.bytes());
            eff.load = Some((a, width.bytes()));
        }
        Instr::Store { addr, width, .. } => {
            let a = addr.effective(|r| regs[r.index()]);
            eff.store = Some((a, width.bytes()));
        }
        Instr::Branch { cond, rs, target } => {
            let taken = cond.taken(regs[rs.index()]);
            eff.branch_taken = Some(taken);
            if taken {
                eff.next_pc = target;
            }
        }
        Instr::Jump { target } => eff.next_pc = target,
        Instr::Nop => {}
        Instr::Halt => {
            eff.halted = true;
            eff.next_pc = pc;
        }
    }
    eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn fib_program() -> Program {
        // r1 = fib(10) iteratively
        let mut asm = Asm::new();
        let (a, b, t, i, n, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
        asm.li(a, 0);
        asm.li(b, 1);
        asm.li(i, 0);
        asm.li(n, 10);
        let top = asm.here();
        asm.add(t, a, b);
        asm.mv(a, b);
        asm.mv(b, t);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn fib_executes_correctly() {
        let prog = fib_program();
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        let n = cpu.run(&prog, &mut mem, 10_000).unwrap();
        assert!(cpu.is_halted());
        assert_eq!(cpu.reg(Reg::R1), 55); // fib(10)
        assert_eq!(n, cpu.retired());
    }

    #[test]
    fn memory_steps_report_accesses() {
        let mut asm = Asm::new();
        asm.li(Reg::R1, 0x1000);
        asm.li(Reg::R2, 99);
        asm.st8(Reg::R2, Reg::R1, 8);
        asm.ld8(Reg::R3, Reg::R1, 8);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();

        let mut accesses = vec![];
        while let StepEvent::Executed(s) = cpu.step(&prog, &mut mem).unwrap() {
            if let Some(m) = s.mem {
                accesses.push(m);
            }
            if matches!(s.instr, Instr::Halt) {
                break;
            }
        }
        assert_eq!(accesses.len(), 2);
        assert!(accesses[0].is_store);
        assert_eq!(accesses[0].addr, 0x1008);
        assert!(!accesses[1].is_store);
        assert_eq!(accesses[1].value, 99);
        assert_eq!(cpu.reg(Reg::R3), 99);
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut asm = Asm::new();
        asm.nop();
        let prog = asm.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        assert!(matches!(cpu.step(&prog, &mut mem).unwrap(), StepEvent::Executed(_)));
        assert!(matches!(cpu.step(&prog, &mut mem).unwrap(), StepEvent::Halted));
        assert!(cpu.is_halted());
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let mut asm = Asm::new();
        asm.nop();
        let prog = asm.finish().unwrap();
        let mut cpu = Cpu::new();
        cpu.pc = 17;
        let mut mem = SparseMemory::new();
        assert_eq!(cpu.step(&prog, &mut mem), Err(ExecError::PcOutOfRange { pc: 17 }));
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        let prog = fib_program();
        // Uninterrupted reference run.
        let mut ref_cpu = Cpu::new();
        let mut ref_mem = SparseMemory::new();
        ref_cpu.run(&prog, &mut ref_mem, 10_000).unwrap();

        // Checkpoint mid-run, round-trip through bytes, resume.
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        cpu.run(&prog, &mut mem, 17).unwrap();
        let ck = cpu.checkpoint();
        let bytes = ck.to_bytes();
        let back = CpuCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        let mut resumed = Cpu::from_checkpoint(&back);
        resumed.run(&prog, &mut mem, 10_000).unwrap();
        assert_eq!(resumed.regs(), ref_cpu.regs());
        assert_eq!(resumed.pc(), ref_cpu.pc());
        assert_eq!(resumed.retired(), ref_cpu.retired());
        assert_eq!(resumed.is_halted(), ref_cpu.is_halted());
    }

    #[test]
    fn checkpoint_bytes_reject_corruption() {
        let ck = Cpu::new().checkpoint();
        let mut bytes = ck.to_bytes();
        assert!(CpuCheckpoint::from_bytes(&bytes[1..]).is_none());
        bytes[0] ^= 0xff;
        assert!(CpuCheckpoint::from_bytes(&bytes).is_none());
    }

    #[test]
    fn warming_run_streams_accesses_and_branches() {
        #[derive(Default)]
        struct Tally {
            loads: u64,
            stores: u64,
            branches: u64,
            taken: u64,
        }
        impl WarmSink for Tally {
            fn load(&mut self, _pc: usize, _addr: u64, _width: u64) {
                self.loads += 1;
            }
            fn store(&mut self, _pc: usize, _addr: u64, _width: u64) {
                self.stores += 1;
            }
            fn branch(&mut self, _pc: usize, taken: bool) {
                self.branches += 1;
                self.taken += taken as u64;
            }
        }

        let mut asm = Asm::new();
        let (base, i, n, t, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        asm.li(base, 0x1000);
        asm.li(i, 0);
        asm.li(n, 4);
        let top = asm.here();
        asm.st8_idx(t, base, i, 3);
        asm.ld8_idx(t, base, i, 3);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();

        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        let mut sink = Tally::default();
        cpu.run_warming(&prog, &mut mem, 10_000, &mut sink).unwrap();
        assert!(cpu.is_halted());
        assert_eq!(sink.loads, 4);
        assert_eq!(sink.stores, 4);
        assert_eq!(sink.branches, 4);
        assert_eq!(sink.taken, 3);

        // The warming run is architecturally identical to a plain run.
        let mut plain = Cpu::new();
        let mut plain_mem = SparseMemory::new();
        plain.run(&prog, &mut plain_mem, 10_000).unwrap();
        assert_eq!(plain.regs(), cpu.regs());
        assert_eq!(plain_mem.checksum(), mem.checksum());
    }

    #[test]
    fn lane_exec_suppresses_stores() {
        let mut asm = Asm::new();
        asm.st8(Reg::R2, Reg::R1, 0);
        asm.ld8(Reg::R3, Reg::R1, 0);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mem = SparseMemory::new();
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::R1.index()] = 0x1000;
        regs[Reg::R2.index()] = 55;

        let e0 = exec_lane(&prog, 0, &mut regs, &mem);
        assert_eq!(e0.store, Some((0x1000, 8)));
        assert_eq!(e0.load, None);
        // The store did not land: the load reads 0.
        let e1 = exec_lane(&prog, e0.next_pc, &mut regs, &mem);
        assert_eq!(e1.load, Some((0x1000, 8)));
        assert_eq!(regs[Reg::R3.index()], 0);
        let e2 = exec_lane(&prog, e1.next_pc, &mut regs, &mem);
        assert!(e2.halted);
    }

    /// `for i { v = S[i]; x = B[v<<3]; acc ^= x }` with S declared secret.
    fn secret_gather_program() -> Program {
        let mut asm = Asm::new();
        let (s, b, i, n, v, x, acc, c) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8);
        asm.secret(0x1000, 8 * 8);
        asm.li(s, 0x1000);
        asm.li(b, 0x8000);
        asm.li(i, 0);
        asm.li(n, 8);
        let top = asm.here();
        asm.ld8_idx(v, s, i, 3); // secret source
        asm.ld8_idx(x, b, v, 3); // transmitter: address derived from secret
        asm.xor(acc, acc, x);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn secret_taint_tracks_sources_and_transmitters() {
        let prog = secret_gather_program();
        let mut mem = SparseMemory::new();
        for k in 0..8u64 {
            mem.write_u64(0x1000 + 8 * k, k % 4);
        }
        let mut cpu = Cpu::new();
        cpu.enable_secret_taint();
        cpu.run(&prog, &mut mem, 10_000).unwrap();
        let t = cpu.secret_taint().unwrap();
        assert_eq!(t.secret_reads, 8, "every S[i] read is a source");
        assert_eq!(t.tainted_addr_accesses, 8, "every B[v] is a transmitter");
        assert_eq!(t.transmit_pcs(), vec![(5, 8)]);
        assert_eq!(t.tainted_branches, 0, "the loop branch depends only on i");

        // The tracker is an observer: architectural state matches a plain run.
        let mut plain = Cpu::new();
        let mut plain_mem = SparseMemory::new();
        for k in 0..8u64 {
            plain_mem.write_u64(0x1000 + 8 * k, k % 4);
        }
        plain.run(&prog, &mut plain_mem, 10_000).unwrap();
        assert_eq!(plain.regs(), cpu.regs());
        assert_eq!(plain.retired(), cpu.retired());
    }

    #[test]
    fn secret_taint_flows_through_memory_and_clears() {
        // Store a secret-derived value to scratch, reload it, branch on it;
        // then overwrite the scratch word with a clean value and re-check.
        let mut asm = Asm::new();
        asm.secret(0x1000, 8);
        asm.li(Reg::R1, 0x1000);
        asm.li(Reg::R2, 0x2000);
        asm.ld8(Reg::R3, Reg::R1, 0); // secret
        asm.st8(Reg::R3, Reg::R2, 0); // taints word 0x2000
        asm.ld8(Reg::R4, Reg::R2, 0); // reload: tainted
        let skip = asm.label();
        asm.bez(Reg::R4, skip); // secret-dependent branch
        asm.bind(skip);
        asm.li(Reg::R5, 7);
        asm.st8(Reg::R5, Reg::R2, 0); // clean store clears the word
        asm.ld8(Reg::R6, Reg::R2, 0); // reload: clean
        asm.bez(Reg::R6, skip); // clean branch
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 1);
        let mut cpu = Cpu::new();
        cpu.enable_secret_taint();
        cpu.run(&prog, &mut mem, 100).unwrap();
        let t = cpu.take_secret_taint().unwrap();
        assert_eq!(t.secret_reads, 1);
        assert_eq!(t.tainted_branches, 1, "only the first branch sees taint");
        assert_eq!(t.tainted_addr_accesses, 0, "all addresses are constants");
        assert!(cpu.secret_taint().is_none(), "take disables tracking");
    }

    #[test]
    fn lane_taint_step_tracks_a_gather_chain() {
        let prog = secret_gather_program();
        let mut mask: u16 = Reg::R5.bit(); // v loaded from a secret line
                                           // x = B[v<<3]: tainted address, transmits, taints x.
        let dep = *prog.fetch(5).unwrap();
        assert!(lane_taint_step(&prog, &dep, &mut mask, Some(0x8000)));
        assert_ne!(mask & Reg::R6.bit(), 0);
        // acc ^= x propagates through the ALU without transmitting.
        let alu = *prog.fetch(6).unwrap();
        assert!(!lane_taint_step(&prog, &alu, &mut mask, None));
        assert_ne!(mask & Reg::R7.bit(), 0);
        // slt c, i, n has clean sources: it clears a stale taint bit on c.
        mask |= Reg::R8.bit();
        let slt = *prog.fetch(8).unwrap();
        assert!(!lane_taint_step(&prog, &slt, &mut mask, None));
        assert_eq!(mask & Reg::R8.bit(), 0);
        // An untainted load from a secret address becomes a taint source.
        let mut clean: u16 = 0;
        let src = *prog.fetch(4).unwrap();
        assert!(!lane_taint_step(&prog, &src, &mut clean, Some(0x1008)));
        assert_ne!(clean & Reg::R5.bit(), 0);
    }

    #[test]
    fn lane_exec_branches_per_lane() {
        let mut asm = Asm::new();
        let skip = asm.label();
        asm.bnz(Reg::R1, skip);
        asm.li(Reg::R2, 7);
        asm.bind(skip);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mem = SparseMemory::new();

        let mut taken_lane = [0u64; NUM_REGS];
        taken_lane[Reg::R1.index()] = 1;
        let e = exec_lane(&prog, 0, &mut taken_lane, &mem);
        assert_eq!(e.branch_taken, Some(true));
        assert_eq!(e.next_pc, 2);

        let mut fall_lane = [0u64; NUM_REGS];
        let e = exec_lane(&prog, 0, &mut fall_lane, &mem);
        assert_eq!(e.branch_taken, Some(false));
        assert_eq!(e.next_pc, 1);
    }
}
