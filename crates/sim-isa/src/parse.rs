//! A text-assembly parser: the inverse of the `Display` impls.
//!
//! Accepts the exact syntax the disassembler prints, plus named labels and
//! comments, so kernels can live in `.s` files:
//!
//! ```text
//! ; sum = a[0..8]
//!     li r1, 4096
//!     li r2, 0
//!     li r3, 8
//! top:
//!     ld8 r5, [r1 + r2<<3 + 0]
//!     add r4, r4, r5
//!     addi r2, r2, 1
//!     slt r6, r2, r3
//!     bnz r6, top
//!     halt
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::instr::{
    validate_regions, validate_secrets, AluOp, BranchCond, Instr, MemAddr, MemWidth, Program,
};
use crate::reg::Reg;

/// Error produced when parsing a textual program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    let idx = t
        .strip_prefix('r')
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| err(line, format!("expected register, got '{t}'")))?;
    Reg::from_index(idx).ok_or_else(|| err(line, format!("register out of range: '{t}'")))
}

/// Parses an unsigned address/length token (decimal or `0x` hex) for the
/// `.secret` directive.
fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    let t = tok.trim();
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse::<u64>()
    }
    .map_err(|_| err(line, format!("expected unsigned value, got '{t}'")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim().trim_end_matches(',');
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| err(line, format!("expected immediate, got '{t}'")))?;
    Ok(if neg { -v } else { v })
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        _ => return None,
    })
}

fn parse_width(suffix: &str, line: usize) -> Result<MemWidth, ParseError> {
    match suffix {
        "1" => Ok(MemWidth::B1),
        "2" => Ok(MemWidth::B2),
        "4" => Ok(MemWidth::B4),
        "8" => Ok(MemWidth::B8),
        other => Err(err(line, format!("invalid access width '{other}'"))),
    }
}

/// Parses `[rB + rI<<s + off]` or `[rB + off]`.
fn parse_addr(text: &str, line: usize) -> Result<MemAddr, ParseError> {
    let inner = text
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [address], got '{text}'")))?;
    // Split on '+' but keep negative offsets intact (offsets are the last
    // component and may be written as "+ -16").
    let parts: Vec<&str> = inner.split('+').map(str::trim).collect();
    match parts.as_slice() {
        [base] => Ok(MemAddr::base(parse_reg(base, line)?, 0)),
        [base, second] => {
            let base = parse_reg(base, line)?;
            if let Some((ix, sh)) = second.split_once("<<") {
                let index = parse_reg(ix, line)?;
                let scale: u8 =
                    sh.trim().parse().map_err(|_| err(line, format!("bad scale '{sh}'")))?;
                Ok(MemAddr::indexed(base, index, scale))
            } else {
                Ok(MemAddr::base(base, parse_imm(second, line)?))
            }
        }
        [base, index_part, off] => {
            let base = parse_reg(base, line)?;
            let (ix, sh) = index_part
                .split_once("<<")
                .ok_or_else(|| err(line, format!("expected rI<<s, got '{index_part}'")))?;
            let index = parse_reg(ix, line)?;
            let scale: u8 =
                sh.trim().parse().map_err(|_| err(line, format!("bad scale '{sh}'")))?;
            let offset = parse_imm(off, line)?;
            Ok(MemAddr { base, index: Some(index), scale, offset })
        }
        _ => Err(err(line, format!("malformed address '{text}'"))),
    }
}

/// A branch target: numeric `@N` or a named label resolved later.
enum Target {
    Pc(usize),
    Label(String),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, ParseError> {
    let t = tok.trim();
    if let Some(n) = t.strip_prefix('@') {
        n.parse::<usize>()
            .map(Target::Pc)
            .map_err(|_| err(line, format!("bad numeric target '{t}'")))
    } else if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !t.is_empty() {
        Ok(Target::Label(t.to_string()))
    } else {
        Err(err(line, format!("bad branch target '{t}'")))
    }
}

/// Parses a textual program.
///
/// Accepts everything [`Program`]'s `Display` prints (including optional
/// `  NN:` line prefixes), plus named labels (`name:`), `;`/`#` comments,
/// and blank lines.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending 1-based line number for
/// unknown mnemonics, malformed operands, or unresolved labels.
///
/// # Example
///
/// ```
/// let prog = sim_isa::parse_program("
///     li r1, 10
/// top:
///     addi r1, r1, -1
///     bnz r1, top
///     halt
/// ")?;
/// assert_eq!(prog.len(), 4);
/// let mut cpu = sim_isa::Cpu::new();
/// let mut mem = sim_isa::SparseMemory::new();
/// cpu.run(&prog, &mut mem, 1000)?;
/// assert_eq!(cpu.reg(sim_isa::Reg::R1), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut instrs: Vec<Instr> = Vec::new();
    let mut lines: Vec<usize> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut label_list: Vec<(usize, String)> = Vec::new();
    // (instr index, target, source line) fixups.
    let mut fixups: Vec<(usize, Target, usize)> = Vec::new();
    let mut secrets: Vec<(u64, u64)> = Vec::new();
    let mut regions: Vec<(String, u64, u64)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut code = raw;
        if let Some(p) = code.find(';') {
            code = &code[..p];
        }
        if let Some(p) = code.find('#') {
            code = &code[..p];
        }
        let mut code = code.trim();
        if code.is_empty() {
            continue;
        }
        // Directives start with '.': `.secret <addr> <len>` and
        // `.region <name> <addr> <len>`.
        if let Some(stripped) = code.strip_prefix('.') {
            let (name, rest) = match stripped.split_once(char::is_whitespace) {
                Some((n, r)) => (n, r.trim()),
                None => (stripped, ""),
            };
            let toks: Vec<&str> = rest.split_whitespace().collect();
            match name {
                "secret" => {
                    let [addr, len] = toks.as_slice() else {
                        return Err(err(
                            line,
                            format!(".secret expects <addr> <len>, got {} operand(s)", toks.len()),
                        ));
                    };
                    secrets.push((parse_u64(addr, line)?, parse_u64(len, line)?));
                    // Validate eagerly so the error names the offending line.
                    if let Err(e) = validate_secrets(secrets.clone()) {
                        return Err(err(line, e.to_string()));
                    }
                }
                "region" => {
                    let [rname, addr, len] = toks.as_slice() else {
                        return Err(err(
                            line,
                            format!(
                                ".region expects <name> <addr> <len>, got {} operand(s)",
                                toks.len()
                            ),
                        ));
                    };
                    regions.push((
                        rname.to_string(),
                        parse_u64(addr, line)?,
                        parse_u64(len, line)?,
                    ));
                    if let Err(e) = validate_regions(regions.clone()) {
                        return Err(err(line, e.to_string()));
                    }
                }
                _ => return Err(err(line, format!("unknown directive '.{name}'"))),
            }
            continue;
        }
        // Strip a disassembly "  12:" prefix (digits + colon + space).
        if let Some((prefix, rest)) = code.split_once(':') {
            let p = prefix.trim();
            if !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()) && !rest.trim().is_empty() {
                code = rest.trim();
            } else if rest.trim().is_empty() {
                // A label line.
                if p.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    if labels.insert(p.to_string(), instrs.len()).is_some() {
                        return Err(err(line, format!("duplicate label '{p}'")));
                    }
                    label_list.push((instrs.len(), p.to_string()));
                    continue;
                }
                return Err(err(line, format!("bad label '{p}'")));
            }
        }

        let (mnemonic, rest) = match code.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (code, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            vec![]
        } else {
            // Split operands on commas outside brackets.
            let mut out = Vec::new();
            let mut depth = 0usize;
            let mut start = 0usize;
            for (i, c) in rest.char_indices() {
                match c {
                    '[' => depth += 1,
                    ']' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        out.push(rest[start..i].trim());
                        start = i + 1;
                    }
                    _ => {}
                }
            }
            out.push(rest[start..].trim());
            out
        };

        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("'{mnemonic}' expects {n} operands, got {}", ops.len())))
            }
        };

        let instr = match mnemonic {
            "nop" => {
                need(0)?;
                Instr::Nop
            }
            "halt" => {
                need(0)?;
                Instr::Halt
            }
            "li" => {
                need(2)?;
                Instr::Imm { rd: parse_reg(ops[0], line)?, value: parse_imm(ops[1], line)? }
            }
            "jmp" => {
                need(1)?;
                fixups.push((instrs.len(), parse_target(ops[0], line)?, line));
                Instr::Jump { target: 0 }
            }
            "bnz" | "bez" => {
                need(2)?;
                let cond = if mnemonic == "bnz" { BranchCond::Nez } else { BranchCond::Eqz };
                fixups.push((instrs.len(), parse_target(ops[1], line)?, line));
                Instr::Branch { cond, rs: parse_reg(ops[0], line)?, target: 0 }
            }
            m if m.starts_with("ld") => {
                need(2)?;
                Instr::Load {
                    rd: parse_reg(ops[0], line)?,
                    addr: parse_addr(ops[1], line)?,
                    width: parse_width(&m[2..], line)?,
                }
            }
            m if m.starts_with("st") => {
                need(2)?;
                Instr::Store {
                    rs: parse_reg(ops[0], line)?,
                    addr: parse_addr(ops[1], line)?,
                    width: parse_width(&m[2..], line)?,
                }
            }
            m => {
                // ALU: "add" (3 regs) or "addi" (2 regs + imm).
                if let Some(op) = alu_op(m) {
                    need(3)?;
                    Instr::Alu {
                        op,
                        rd: parse_reg(ops[0], line)?,
                        ra: parse_reg(ops[1], line)?,
                        rb: parse_reg(ops[2], line)?,
                    }
                } else if let Some(op) = m.strip_suffix('i').and_then(alu_op) {
                    need(3)?;
                    Instr::AluImm {
                        op,
                        rd: parse_reg(ops[0], line)?,
                        ra: parse_reg(ops[1], line)?,
                        imm: parse_imm(ops[2], line)?,
                    }
                } else {
                    return Err(err(line, format!("unknown mnemonic '{m}'")));
                }
            }
        };
        instrs.push(instr);
        lines.push(line);
    }

    for (at, target, line) in fixups {
        let pc = match target {
            Target::Pc(pc) => pc,
            Target::Label(name) => {
                *labels.get(&name).ok_or_else(|| err(line, format!("undefined label '{name}'")))?
            }
        };
        if pc > instrs.len() {
            return Err(err(line, format!("branch target {pc} out of range")));
        }
        match &mut instrs[at] {
            Instr::Branch { target, .. } | Instr::Jump { target } => *target = pc,
            _ => unreachable!("fixups attach to control instructions"),
        }
    }

    let mut prog = Program::with_lines(instrs, label_list, lines);
    prog.set_secrets(validate_secrets(secrets).expect("validated at each directive"));
    prog.set_regions(validate_regions(regions).expect("validated at each directive"));
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Cpu;
    use crate::mem::SparseMemory;

    #[test]
    fn parses_the_doc_example() {
        let prog = parse_program(
            "; sum = a[0..8]
                 li r1, 4096
                 li r2, 0
                 li r3, 8
             top:
                 ld8 r5, [r1 + r2<<3 + 0]
                 add r4, r4, r5
                 addi r2, r2, 1
                 slt r6, r2, r3
                 bnz r6, top
                 halt",
        )
        .unwrap();
        assert_eq!(prog.len(), 9);
        let mut mem = SparseMemory::new();
        for k in 0..8u64 {
            mem.write_u64(4096 + 8 * k, k);
        }
        let mut cpu = Cpu::new();
        cpu.run(&prog, &mut mem, 10_000).unwrap();
        assert_eq!(cpu.reg(Reg::R4), 28);
    }

    #[test]
    fn roundtrips_disassembly() {
        // Build with the programmatic assembler, print, re-parse, compare.
        let mut asm = crate::Asm::new();
        let l = asm.label();
        asm.li(Reg::R1, -5);
        asm.alui(AluOp::Xor, Reg::R2, Reg::R1, 0x7F);
        asm.load(Reg::R3, MemAddr::indexed(Reg::R1, Reg::R2, 2), MemWidth::B4);
        asm.store(Reg::R3, MemAddr::base(Reg::R1, -16), MemWidth::B8);
        asm.bez(Reg::R3, l);
        asm.bind(l);
        asm.halt();
        let prog = asm.finish().unwrap();
        let text = prog.to_string();
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(prog.instrs(), reparsed.instrs());
    }

    #[test]
    fn numeric_targets_work() {
        let p = parse_program("jmp @2\nnop\nhalt").unwrap();
        assert_eq!(p.fetch(0).unwrap().target(), Some(2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("nop\nfrobnicate r1\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse_program("bnz r1, nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));

        let e = parse_program("li r99, 0").unwrap_err();
        assert!(e.message.contains("register"));

        let e = parse_program("add r1, r2").unwrap_err();
        assert!(e.message.contains("3 operands"));
    }

    #[test]
    fn source_lines_recorded() {
        let p = parse_program("; comment\nli r1, 1\n\ntop:\naddi r1, r1, -1\nbnz r1, top\nhalt")
            .unwrap();
        assert_eq!(p.source_line(0), Some(2)); // li
        assert_eq!(p.source_line(1), Some(5)); // addi (label line doesn't count)
        assert_eq!(p.source_line(3), Some(7)); // halt
        assert_eq!(p.source_line(4), None);
        assert_eq!(p.label_at(1), Some("top"));

        // Programmatically assembled programs carry no line info.
        let mut asm = crate::Asm::new();
        asm.halt();
        assert_eq!(asm.finish().unwrap().source_line(0), None);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = parse_program("x:\nnop\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = parse_program("li r1, 0xFF\nli r2, -0x10\nhalt").unwrap();
        assert_eq!(p.fetch(0), Some(&Instr::Imm { rd: Reg::R1, value: 255 }));
        assert_eq!(p.fetch(1), Some(&Instr::Imm { rd: Reg::R2, value: -16 }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("\n  # comment only\n nop ; trailing\n\nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn secret_directive_parses_and_roundtrips() {
        // Operands are whitespace-separated, not comma-separated.
        assert!(parse_program(".secret 4096, 64\nhalt").is_err());

        let p = parse_program(".secret 0x2000 0x40\n.secret 4096 64\nhalt").unwrap();
        assert_eq!(p.secrets(), &[(0x1000, 0x40), (0x2000, 0x40)]);
        assert!(p.is_secret_addr(0x1000));
        assert!(p.is_secret_addr(0x203f));
        assert!(!p.is_secret_addr(0x2040));

        // Display prints the directives; reparsing preserves them.
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(reparsed.secrets(), p.secrets());
    }

    #[test]
    fn secret_directive_negative_paths() {
        // Zero length.
        let e = parse_program(".secret 0x1000 0\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("zero length"), "{}", e.message);

        // Out-of-range (base + len overflows the address space).
        let e = parse_program("nop\n.secret 0xfffffffffffffff8 0x10\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("overflows"), "{}", e.message);

        // Overlapping ranges: error lands on the second directive's line.
        let e = parse_program(".secret 0x1000 0x100\n.secret 0x10f8 8\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("overlaps"), "{}", e.message);

        // Malformed operand counts and unknown directives.
        assert!(parse_program(".secret 0x1000\nhalt").is_err());
        assert!(parse_program(".secret\nhalt").is_err());
        assert!(parse_program(".shadow 0x1000 8\nhalt").is_err());
    }

    #[test]
    fn region_directive_parses_and_roundtrips() {
        let p = parse_program(".region heap 0x2000 0x40\n.region stack 4096 64\nhalt").unwrap();
        assert_eq!(
            p.regions(),
            &[("stack".to_string(), 0x1000, 64), ("heap".to_string(), 0x2000, 0x40)]
        );
        assert_eq!(p.region_containing(0x1000), Some(("stack", 0x1000, 64)));
        assert_eq!(p.region_containing(0x2040), None);
        assert!(p.access_in_region(0x2038, 8));
        assert!(!p.access_in_region(0x2039, 8));

        // Display prints the directives; reparsing preserves them.
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(reparsed.regions(), p.regions());
    }

    #[test]
    fn region_directive_negative_paths() {
        // Operand-count errors.
        assert!(parse_program(".region heap 0x1000\nhalt").is_err());
        assert!(parse_program(".region heap\nhalt").is_err());
        assert!(parse_program(".region\nhalt").is_err());

        // Zero length, overlap, duplicate name — each names its own line.
        let e = parse_program(".region heap 0x1000 0\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("zero length"), "{}", e.message);

        let e = parse_program(".region a 0x1000 0x100\n.region b 0x10f8 8\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("overlaps"), "{}", e.message);

        let e = parse_program(".region a 0x1000 8\n.region a 0x2000 8\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("twice"), "{}", e.message);
    }
}
