//! A tiny assembler with forward-referencing labels.

use std::error::Error;
use std::fmt;

use crate::instr::{
    validate_regions, validate_secrets, AluOp, BranchCond, Instr, MemAddr, MemWidth, Program,
    RegionError, SecretRangeError,
};
use crate::reg::Reg;

/// A code label handle produced by [`Asm::label`] / consumed by branch
/// emitters, resolved at [`Asm::finish`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced when assembling an ill-formed program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was referenced by a branch but never bound with
    /// [`Asm::bind`].
    UnboundLabel {
        /// The offending label.
        label: Label,
        /// PC of the instruction referencing it.
        at_pc: usize,
    },
    /// A label was bound twice.
    Rebound {
        /// The offending label.
        label: Label,
    },
    /// A secret range declared with [`Asm::secret`] is invalid.
    BadSecret(SecretRangeError),
    /// A footprint region declared with [`Asm::region`] is invalid.
    BadRegion(RegionError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, at_pc } => {
                write!(f, "label {:?} referenced at pc {} was never bound", label, at_pc)
            }
            AsmError::Rebound { label } => write!(f, "label {:?} bound more than once", label),
            AsmError::BadSecret(e) => write!(f, "{e}"),
            AsmError::BadRegion(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AsmError {}

/// Builder for [`Program`]s.
///
/// Emits one instruction per method call; control flow uses [`Label`]s that
/// may be bound before or after their uses. Convenience emitters cover the
/// idioms the workloads need (indexed loads, compare-and-branch loops).
///
/// # Example
///
/// ```
/// use sim_isa::{Asm, Reg};
///
/// let mut asm = Asm::new();
/// let done = asm.label();
/// asm.li(Reg::R1, 10);
/// asm.bez(Reg::R1, done); // not taken
/// asm.addi(Reg::R1, Reg::R1, 1);
/// asm.bind(done);
/// asm.halt();
/// let prog = asm.finish()?;
/// assert_eq!(prog.len(), 4);
/// # Ok::<(), sim_isa::AsmError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    /// Bound PC per label id (usize::MAX = unbound).
    bindings: Vec<usize>,
    /// (instr index, label) pairs needing patching.
    fixups: Vec<(usize, Label)>,
    label_names: Vec<(usize, String)>,
    /// Declared secret ranges, validated at [`Asm::finish`].
    secret_ranges: Vec<(u64, u64)>,
    /// Declared footprint regions, validated at [`Asm::finish`].
    region_decls: Vec<(String, u64, u64)>,
}

const UNBOUND: usize = usize::MAX;

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current program counter (index of the next emitted instruction).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bindings.push(UNBOUND);
        Label(self.bindings.len() - 1)
    }

    /// Creates a label already bound to the current PC — handy for loop tops.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bindings[l.0] = self.pc();
        l
    }

    /// Binds `label` to the current PC.
    ///
    /// # Panics
    ///
    /// Does not panic; rebinding is reported by [`Asm::finish`].
    pub fn bind(&mut self, label: Label) {
        if self.bindings[label.0] != UNBOUND {
            // Mark as rebound with a sentinel: record a second binding by
            // pushing a fixup that can never resolve. Simpler: remember via
            // names list and detect in finish. We instead record the error
            // eagerly by setting a poisoned value.
            self.bindings[label.0] = UNBOUND - 1; // poisoned
        } else {
            self.bindings[label.0] = self.pc();
        }
    }

    /// Attaches a human-readable name to the current PC (for disassembly).
    pub fn name(&mut self, name: impl Into<String>) {
        self.label_names.push((self.pc(), name.into()));
    }

    /// Declares `[addr, addr + len)` as secret memory — the programmatic
    /// equivalent of the textual `.secret <addr> <len>` directive.
    ///
    /// Ranges are validated together at [`Asm::finish`]: each must be
    /// non-empty, fit in the address space, and not overlap another.
    pub fn secret(&mut self, addr: u64, len: u64) {
        self.secret_ranges.push((addr, len));
    }

    /// Declares `[addr, addr + len)` as the named legal-footprint region —
    /// the programmatic equivalent of the textual
    /// `.region <name> <addr> <len>` directive.
    ///
    /// Regions are validated together at [`Asm::finish`]: names must be
    /// unique identifiers, each region must be non-empty and fit in the
    /// address space, and no two regions may overlap.
    pub fn region(&mut self, name: impl Into<String>, addr: u64, len: u64) {
        self.region_decls.push((name.into(), addr, len));
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    // --- immediates and moves -------------------------------------------

    /// `rd = value`
    pub fn li(&mut self, rd: Reg, value: i64) {
        self.emit(Instr::Imm { rd, value });
    }

    /// `rd = ra` (encoded as `rd = ra + 0`)
    pub fn mv(&mut self, rd: Reg, ra: Reg) {
        self.emit(Instr::AluImm { op: AluOp::Add, rd, ra, imm: 0 });
    }

    // --- ALU -------------------------------------------------------------

    /// `rd = ra op rb`
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Instr::Alu { op, rd, ra, rb });
    }

    /// `rd = ra op imm`
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: i64) {
        self.emit(Instr::AluImm { op, rd, ra, imm });
    }

    /// `rd = ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Add, rd, ra, rb);
    }

    /// `rd = ra - rb`
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Sub, rd, ra, rb);
    }

    /// `rd = ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Add, rd, ra, imm);
    }

    /// `rd = ra * rb`
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Mul, rd, ra, rb);
    }

    /// `rd = ra & imm`
    pub fn andi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::And, rd, ra, imm);
    }

    /// `rd = ra ^ rb`
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Xor, rd, ra, rb);
    }

    /// `rd = ra << imm`
    pub fn shli(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Shl, rd, ra, imm);
    }

    /// `rd = ra >> imm` (logical)
    pub fn shri(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluOp::Shr, rd, ra, imm);
    }

    /// `rd = (ra < rb)` signed
    pub fn slt(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Slt, rd, ra, rb);
    }

    /// `rd = (ra < rb)` unsigned
    pub fn sltu(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Sltu, rd, ra, rb);
    }

    /// `rd = (ra == rb)`
    pub fn seq(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Seq, rd, ra, rb);
    }

    /// `rd = (ra != rb)`
    pub fn sne(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluOp::Sne, rd, ra, rb);
    }

    // --- memory ------------------------------------------------------------

    /// 8-byte load: `rd = mem[base + offset]`
    pub fn ld8(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Load { rd, addr: MemAddr::base(base, offset), width: MemWidth::B8 });
    }

    /// 8-byte indexed load: `rd = mem[base + (index << scale)]`
    pub fn ld8_idx(&mut self, rd: Reg, base: Reg, index: Reg, scale: u8) {
        self.emit(Instr::Load {
            rd,
            addr: MemAddr::indexed(base, index, scale),
            width: MemWidth::B8,
        });
    }

    /// 4-byte indexed load.
    pub fn ld4_idx(&mut self, rd: Reg, base: Reg, index: Reg, scale: u8) {
        self.emit(Instr::Load {
            rd,
            addr: MemAddr::indexed(base, index, scale),
            width: MemWidth::B4,
        });
    }

    /// Load with an explicit address expression and width.
    pub fn load(&mut self, rd: Reg, addr: MemAddr, width: MemWidth) {
        self.emit(Instr::Load { rd, addr, width });
    }

    /// 8-byte store: `mem[base + offset] = rs`
    pub fn st8(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.emit(Instr::Store { rs, addr: MemAddr::base(base, offset), width: MemWidth::B8 });
    }

    /// 8-byte indexed store: `mem[base + (index << scale)] = rs`
    pub fn st8_idx(&mut self, rs: Reg, base: Reg, index: Reg, scale: u8) {
        self.emit(Instr::Store {
            rs,
            addr: MemAddr::indexed(base, index, scale),
            width: MemWidth::B8,
        });
    }

    /// Store with an explicit address expression and width.
    pub fn store(&mut self, rs: Reg, addr: MemAddr, width: MemWidth) {
        self.emit(Instr::Store { rs, addr, width });
    }

    // --- control flow -------------------------------------------------------

    /// Branch to `label` if `rs == 0`.
    pub fn bez(&mut self, rs: Reg, label: Label) {
        self.fixups.push((self.pc(), label));
        self.emit(Instr::Branch { cond: BranchCond::Eqz, rs, target: 0 });
    }

    /// Branch to `label` if `rs != 0`.
    pub fn bnz(&mut self, rs: Reg, label: Label) {
        self.fixups.push((self.pc(), label));
        self.emit(Instr::Branch { cond: BranchCond::Nez, rs, target: 0 });
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.fixups.push((self.pc(), label));
        self.emit(Instr::Jump { target: 0 });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Halt.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if a referenced label was never
    /// bound, [`AsmError::Rebound`] if a label was bound twice,
    /// [`AsmError::BadSecret`] if a declared secret range is empty,
    /// overflowing, or overlapping, or [`AsmError::BadRegion`] for the same
    /// defects (or a bad/duplicate name) in a declared footprint region.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for (idx, bound) in self.bindings.iter().enumerate() {
            if *bound == UNBOUND - 1 {
                return Err(AsmError::Rebound { label: Label(idx) });
            }
        }
        for (at, label) in &self.fixups {
            let pc = self.bindings[label.0];
            if pc == UNBOUND {
                return Err(AsmError::UnboundLabel { label: *label, at_pc: *at });
            }
            match &mut self.instrs[*at] {
                Instr::Branch { target, .. } | Instr::Jump { target } => *target = pc,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let secrets = validate_secrets(self.secret_ranges).map_err(AsmError::BadSecret)?;
        let regions = validate_regions(self.region_decls).map_err(AsmError::BadRegion)?;
        let mut prog = Program::new(self.instrs, self.label_names);
        prog.set_secrets(secrets);
        prog.set_regions(regions);
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut asm = Asm::new();
        let fwd = asm.label();
        asm.li(Reg::R1, 1);
        let back = asm.here();
        asm.addi(Reg::R1, Reg::R1, 1);
        asm.bez(Reg::R1, back);
        asm.jmp(fwd);
        asm.bind(fwd);
        asm.halt();
        let prog = asm.finish().unwrap();
        assert_eq!(prog.fetch(2).unwrap().target(), Some(1));
        assert_eq!(prog.fetch(3).unwrap().target(), Some(4));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.jmp(l);
        match asm.finish() {
            Err(AsmError::UnboundLabel { at_pc, .. }) => assert_eq!(at_pc, 0),
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.bind(l);
        asm.nop();
        asm.bind(l);
        assert!(matches!(asm.finish(), Err(AsmError::Rebound { .. })));
    }

    #[test]
    fn secret_ranges_validated_at_finish() {
        let mut asm = Asm::new();
        asm.secret(0x1000, 64);
        asm.secret(0x1020, 8); // overlaps the first range
        asm.halt();
        assert!(matches!(
            asm.finish(),
            Err(AsmError::BadSecret(SecretRangeError::Overlap { first: 0x1000, second: 0x1020 }))
        ));

        let mut asm = Asm::new();
        asm.secret(0x2000, 64);
        asm.secret(0x1000, 64);
        asm.halt();
        let prog = asm.finish().unwrap();
        assert_eq!(prog.secrets(), &[(0x1000, 64), (0x2000, 64)]);
    }

    #[test]
    fn region_decls_validated_at_finish() {
        let mut asm = Asm::new();
        asm.region("a", 0x1000, 64);
        asm.region("b", 0x1020, 8); // overlaps
        asm.halt();
        assert!(matches!(asm.finish(), Err(AsmError::BadRegion(RegionError::Overlap { .. }))));

        let mut asm = Asm::new();
        asm.region("hi", 0x2000, 64);
        asm.region("lo", 0x1000, 64);
        asm.halt();
        let prog = asm.finish().unwrap();
        assert_eq!(
            prog.regions(),
            &[("lo".to_string(), 0x1000, 64), ("hi".to_string(), 0x2000, 64)]
        );
        assert!(prog.to_string().contains(".region lo 0x1000 0x40"));
    }

    #[test]
    fn named_labels_survive() {
        let mut asm = Asm::new();
        asm.name("entry");
        asm.halt();
        let prog = asm.finish().unwrap();
        assert_eq!(prog.labels(), &[(0, "entry".to_string())]);
        assert!(prog.to_string().contains("entry:"));
    }
}
