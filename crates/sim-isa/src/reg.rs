//! Architectural integer registers.

use std::fmt;

/// Number of architectural integer registers.
///
/// Fixed at 16 so that DVR's Vector Taint Tracker is a single 16-bit
/// register and the VRAT a 16-entry table, exactly as sized in the paper's
/// hardware-overhead budget (Section 4.4).
pub const NUM_REGS: usize = 16;

/// An architectural integer register identifier (`R0`–`R15`).
///
/// All registers are general purpose; none is hard-wired to zero.
///
/// # Example
///
/// ```
/// use sim_isa::Reg;
/// let r = Reg::R3;
/// assert_eq!(r.index(), 3);
/// assert_eq!(Reg::from_index(3), Some(r));
/// assert_eq!(r.to_string(), "r3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; NUM_REGS] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register's index in `0..NUM_REGS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index, or `None` if out of range.
    pub fn from_index(index: usize) -> Option<Reg> {
        Reg::ALL.get(index).copied()
    }

    /// A 16-bit mask with only this register's bit set — the representation
    /// used by the Vector Taint Tracker.
    pub fn bit(self) -> u16 {
        1u16 << self.index()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn bits_are_disjoint_and_cover_u16() {
        let mut acc: u16 = 0;
        for r in Reg::ALL {
            assert_eq!(acc & r.bit(), 0, "bit overlap at {r}");
            acc |= r.bit();
        }
        assert_eq!(acc, u16::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R15.to_string(), "r15");
    }
}
