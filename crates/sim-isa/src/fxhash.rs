//! A minimal FxHash-style hasher for hot-path integer-keyed maps.
//!
//! The simulator's inner loops key hash maps by page numbers and cache-line
//! addresses — small integers with entropy in the low bits. `SipHash` (the
//! `std` default) burns most of its time establishing keyed-hash security
//! the simulator does not need. This multiplicative hasher (the rustc
//! `FxHasher` recipe: xor, multiply by a 64-bit constant, rotate) hashes a
//! `u64` key in a couple of cycles and keeps the low-bit entropy the
//! `HashMap` bucket index uses.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (FxHash recipe). Not DoS-resistant
/// — only use for keys the simulation itself generates.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / phi, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const ROTATE: u32 = 26;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path, only taken for non-integer keys: fold whole words,
        // then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so hashes are
/// deterministic across runs and threads — unlike `RandomState`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]; drop-in for integer-keyed hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_distinguishing() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
        // Page numbers differing only in high bits must still differ.
        assert_ne!(b.hash_one(1u64 << 40), b.hash_one(1u64 << 41));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * 4096, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 4096)), Some(&(k as u32)));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        let b = FxBuildHasher::default();
        // Same prefix, different tails must hash differently.
        assert_ne!(b.hash_one([1u8; 9]), b.hash_one([1u8; 10]));
    }
}
