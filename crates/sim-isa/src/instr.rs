//! Instruction definitions and static programs.

use std::fmt;

use crate::reg::Reg;

/// Arithmetic/logic operations.
///
/// The comparison operators (`Slt`, `Sltu`, `Seq`, `Sne`) write 0/1 into the
/// destination register; the paper's Loop-Bound Detector treats them as the
/// "compare instruction" feeding a backward branch (Section 4.1.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Set if less-than (signed).
    Slt,
    /// Set if less-than (unsigned).
    Sltu,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// Whether this operation is a comparison producing a 0/1 flag — the
    /// kind of instruction the Loop-Bound Detector latches into the LCR.
    pub fn is_compare(self) -> bool {
        matches!(self, AluOp::Slt | AluOp::Sltu | AluOp::Seq | AluOp::Sne)
    }

    /// Evaluate the operation on two operand values.
    ///
    /// Division and remainder by zero follow the RISC-V convention
    /// (`u64::MAX` and the dividend, respectively) rather than trapping.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Seq => (a == b) as u64,
            AluOp::Sne => (a != b) as u64,
            AluOp::Min => (a as i64).min(b as i64) as u64,
            AluOp::Max => (a as i64).max(b as i64) as u64,
        }
    }

    /// Nominal execution latency in cycles, mirroring the functional-unit
    /// latencies of the paper's Table 1 (int add 1, int mult 3, int div 18).
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 18,
            _ => 1,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
            AluOp::Min => "min",
            AluOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Width of a memory access in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// An effective-address expression: `base + (index << scale) + offset`.
///
/// The `index`/`scale` form is how indirect accesses (`edges[offsets[v]]`,
/// `bucket[hash(key)]`) are expressed, and the address stream DVR's stride
/// detector and taint tracker reason about.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemAddr {
    /// Base-address register.
    pub base: Reg,
    /// Optional index register, shifted left by `scale`.
    pub index: Option<Reg>,
    /// Left-shift applied to the index register (log2 of the element size).
    pub scale: u8,
    /// Constant byte offset.
    pub offset: i64,
}

impl MemAddr {
    /// `base + offset` addressing.
    pub fn base(base: Reg, offset: i64) -> Self {
        MemAddr { base, index: None, scale: 0, offset }
    }

    /// `base + (index << scale)` addressing.
    pub fn indexed(base: Reg, index: Reg, scale: u8) -> Self {
        MemAddr { base, index: Some(index), scale, offset: 0 }
    }

    /// Compute the effective address given a register-read function.
    pub fn effective(&self, read: impl Fn(Reg) -> u64) -> u64 {
        let mut a = read(self.base).wrapping_add(self.offset as u64);
        if let Some(ix) = self.index {
            a = a.wrapping_add(read(ix).wrapping_shl(self.scale as u32));
        }
        a
    }

    /// Registers read to form the address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        std::iter::once(self.base).chain(self.index)
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(ix) => write!(f, "[{} + {}<<{} + {}]", self.base, ix, self.scale, self.offset),
            None => write!(f, "[{} + {}]", self.base, self.offset),
        }
    }
}

/// Condition of a conditional branch, testing a single register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Taken if the register is zero.
    Eqz,
    /// Taken if the register is non-zero.
    Nez,
}

impl BranchCond {
    /// Evaluate the condition on a register value.
    pub fn taken(self, v: u64) -> bool {
        match self {
            BranchCond::Eqz => v == 0,
            BranchCond::Nez => v != 0,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BranchCond::Eqz => "bez",
            BranchCond::Nez => "bnz",
        })
    }
}

/// A single static instruction.
///
/// Program counters are instruction indices into a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// Load a 64-bit immediate into `rd`.
    Imm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        value: i64,
    },
    /// Register-register ALU operation: `rd = ra op rb`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source register.
        rb: Reg,
    },
    /// Register-immediate ALU operation: `rd = ra op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Load `width` bytes (zero-extended) from memory into `rd`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Effective-address expression.
        addr: MemAddr,
        /// Access width.
        width: MemWidth,
    },
    /// Store the low `width` bytes of `rs` to memory.
    Store {
        /// Source register.
        rs: Reg,
        /// Effective-address expression.
        addr: MemAddr,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch on a register.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Register tested.
        rs: Reg,
        /// Target program counter (instruction index).
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target program counter (instruction index).
        target: usize,
    },
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

impl Instr {
    /// Destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instr::Imm { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Load { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Source registers read by this instruction (up to 3: two operands or
    /// address registers, plus the store data register).
    pub fn srcs(&self) -> SrcIter {
        let mut regs = [None; 3];
        match *self {
            Instr::Alu { ra, rb, .. } => {
                regs[0] = Some(ra);
                regs[1] = Some(rb);
            }
            Instr::AluImm { ra, .. } => regs[0] = Some(ra),
            Instr::Load { addr, .. } => {
                regs[0] = Some(addr.base);
                regs[1] = addr.index;
            }
            Instr::Store { rs, addr, .. } => {
                regs[0] = Some(addr.base);
                regs[1] = addr.index;
                regs[2] = Some(rs);
            }
            Instr::Branch { rs, .. } => regs[0] = Some(rs),
            _ => {}
        }
        SrcIter { regs, i: 0 }
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Whether this is a control-flow instruction (branch or jump).
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jump { .. })
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether this is a comparison ALU operation (see [`AluOp::is_compare`]).
    pub fn is_compare(&self) -> bool {
        match self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => op.is_compare(),
            _ => false,
        }
    }

    /// Static branch/jump target, if this is a control instruction.
    pub fn target(&self) -> Option<usize> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(target),
            _ => None,
        }
    }
}

/// Iterator over an instruction's source registers.
///
/// Produced by [`Instr::srcs`].
#[derive(Clone, Debug)]
pub struct SrcIter {
    regs: [Option<Reg>; 3],
    i: usize,
}

impl Iterator for SrcIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.i < 3 {
            let r = self.regs[self.i];
            self.i += 1;
            if r.is_some() {
                return r;
            }
        }
        None
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Imm { rd, value } => write!(f, "li {rd}, {value}"),
            Instr::Alu { op, rd, ra, rb } => write!(f, "{op} {rd}, {ra}, {rb}"),
            Instr::AluImm { op, rd, ra, imm } => write!(f, "{op}i {rd}, {ra}, {imm}"),
            Instr::Load { rd, addr, width } => write!(f, "ld{width} {rd}, {addr}"),
            Instr::Store { rs, addr, width } => write!(f, "st{width} {rs}, {addr}"),
            Instr::Branch { cond, rs, target } => write!(f, "{cond} {rs}, @{target}"),
            Instr::Jump { target } => write!(f, "jmp @{target}"),
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

/// Why a declared secret range is invalid.
///
/// Produced by [`validate_secrets`]; surfaced as a parse error by the
/// `.secret` directive and as an assembly error by
/// [`Asm::secret`](crate::Asm::secret).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SecretRangeError {
    /// A range with `len == 0` covers nothing and is always a mistake.
    ZeroLength {
        /// Base address of the empty range.
        addr: u64,
    },
    /// `addr + len` overflows the 64-bit address space.
    OutOfRange {
        /// Base address of the range.
        addr: u64,
        /// Declared length.
        len: u64,
    },
    /// Two declared ranges overlap; each secret byte must have exactly one
    /// declaration so diagnostics can name it unambiguously.
    Overlap {
        /// Base address of the earlier (lower) range.
        first: u64,
        /// Base address of the range that intrudes into it.
        second: u64,
    },
}

impl fmt::Display for SecretRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SecretRangeError::ZeroLength { addr } => {
                write!(f, "secret range at {addr:#x} has zero length")
            }
            SecretRangeError::OutOfRange { addr, len } => {
                write!(f, "secret range {addr:#x}+{len:#x} overflows the address space")
            }
            SecretRangeError::Overlap { first, second } => {
                write!(f, "secret range at {second:#x} overlaps the range at {first:#x}")
            }
        }
    }
}

impl std::error::Error for SecretRangeError {}

/// Why a declared memory region is invalid.
///
/// Produced by [`validate_regions`]; surfaced as a parse error by the
/// `.region` directive and as an assembly error by
/// [`Asm::region`](crate::Asm::region).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegionError {
    /// The region name is empty or contains characters outside
    /// `[A-Za-z0-9_.-]`, so diagnostics could not print it unambiguously.
    BadName {
        /// The offending name (possibly empty).
        name: String,
    },
    /// Two regions share a name; lookups by name must be unambiguous.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A region with `len == 0` covers nothing and is always a mistake.
    ZeroLength {
        /// Name of the empty region.
        name: String,
        /// Base address of the empty region.
        addr: u64,
    },
    /// `addr + len` overflows the 64-bit address space.
    OutOfRange {
        /// Name of the region.
        name: String,
        /// Base address of the region.
        addr: u64,
        /// Declared length.
        len: u64,
    },
    /// Two declared regions overlap; every byte of the footprint must
    /// belong to exactly one named region so bounds diagnostics can name
    /// the region an access escapes.
    Overlap {
        /// Name of the earlier (lower) region.
        first: String,
        /// Name of the region that intrudes into it.
        second: String,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::BadName { name } => {
                write!(f, "region name {name:?} is not a valid identifier")
            }
            RegionError::DuplicateName { name } => {
                write!(f, "region name {name:?} is declared twice")
            }
            RegionError::ZeroLength { name, addr } => {
                write!(f, "region {name} at {addr:#x} has zero length")
            }
            RegionError::OutOfRange { name, addr, len } => {
                write!(f, "region {name} {addr:#x}+{len:#x} overflows the address space")
            }
            RegionError::Overlap { first, second } => {
                write!(f, "region {second} overlaps region {first}")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// Validates and normalizes declared memory regions `(name, base, len)`:
/// names must be unique identifiers (`[A-Za-z0-9_.-]+`), every region must
/// be non-empty and fit in the address space, and no two regions may
/// overlap.
///
/// On success returns the regions sorted by base address.
pub fn validate_regions(
    mut regions: Vec<(String, u64, u64)>,
) -> Result<Vec<(String, u64, u64)>, RegionError> {
    for (name, addr, len) in &regions {
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c))
        {
            return Err(RegionError::BadName { name: name.clone() });
        }
        if *len == 0 {
            return Err(RegionError::ZeroLength { name: name.clone(), addr: *addr });
        }
        if addr.checked_add(*len).is_none() {
            return Err(RegionError::OutOfRange { name: name.clone(), addr: *addr, len: *len });
        }
    }
    for (i, (name, ..)) in regions.iter().enumerate() {
        if regions[..i].iter().any(|(n, ..)| n == name) {
            return Err(RegionError::DuplicateName { name: name.clone() });
        }
    }
    regions.sort_by_key(|a| (a.1, a.2));
    for w in regions.windows(2) {
        let ((a_name, a, alen), (b_name, b, _)) = (&w[0], &w[1]);
        if *b < a + alen {
            return Err(RegionError::Overlap { first: a_name.clone(), second: b_name.clone() });
        }
    }
    Ok(regions)
}

/// Validates and normalizes declared secret ranges: every range must be
/// non-empty and fit in the address space, and no two ranges may overlap.
///
/// On success returns the ranges sorted by base address.
pub fn validate_secrets(mut ranges: Vec<(u64, u64)>) -> Result<Vec<(u64, u64)>, SecretRangeError> {
    for &(addr, len) in &ranges {
        if len == 0 {
            return Err(SecretRangeError::ZeroLength { addr });
        }
        if addr.checked_add(len).is_none() {
            return Err(SecretRangeError::OutOfRange { addr, len });
        }
    }
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        let ((a, alen), (b, _)) = (w[0], w[1]);
        if b < a + alen {
            return Err(SecretRangeError::Overlap { first: a, second: b });
        }
    }
    Ok(ranges)
}

/// A static program: a sequence of instructions with optional label names
/// retained for debugging.
///
/// Construct one with [`Asm`](crate::Asm).
#[derive(Clone, Debug, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: Vec<(usize, String)>,
    /// 1-based source line per instruction (empty when the program was
    /// built programmatically rather than parsed from text).
    lines: Vec<usize>,
    /// Declared secret memory ranges as `(base, len)`, sorted by base and
    /// non-overlapping (validated by [`validate_secrets`]).
    secrets: Vec<(u64, u64)>,
    /// Declared legal-footprint regions as `(name, base, len)`, sorted by
    /// base and non-overlapping (validated by [`validate_regions`]).
    regions: Vec<(String, u64, u64)>,
}

impl Program {
    pub(crate) fn new(instrs: Vec<Instr>, labels: Vec<(usize, String)>) -> Self {
        Program { instrs, labels, lines: Vec::new(), secrets: Vec::new(), regions: Vec::new() }
    }

    pub(crate) fn with_lines(
        instrs: Vec<Instr>,
        labels: Vec<(usize, String)>,
        lines: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(instrs.len(), lines.len());
        Program { instrs, labels, lines, secrets: Vec::new(), regions: Vec::new() }
    }

    /// Installs validated secret ranges (sorted, non-overlapping — the
    /// output of [`validate_secrets`]).
    pub(crate) fn set_secrets(&mut self, secrets: Vec<(u64, u64)>) {
        self.secrets = secrets;
    }

    /// Declared secret memory ranges as `(base, len)` pairs, sorted by base.
    ///
    /// Declared via the `.secret <addr> <len>` directive
    /// ([`parse_program`](crate::parse_program)) or
    /// [`Asm::secret`](crate::Asm::secret).
    pub fn secrets(&self) -> &[(u64, u64)] {
        &self.secrets
    }

    /// Whether `addr` falls inside any declared secret range.
    pub fn is_secret_addr(&self, addr: u64) -> bool {
        // Ranges are sorted and disjoint: the only candidate is the last
        // range starting at or below `addr`.
        match self.secrets.partition_point(|&(base, _)| base <= addr) {
            0 => false,
            i => {
                let (base, len) = self.secrets[i - 1];
                addr - base < len
            }
        }
    }

    /// Installs validated footprint regions (sorted, non-overlapping — the
    /// output of [`validate_regions`]).
    pub(crate) fn set_regions(&mut self, regions: Vec<(String, u64, u64)>) {
        self.regions = regions;
    }

    /// Declared legal-footprint regions as `(name, base, len)` triples,
    /// sorted by base address.
    ///
    /// Declared via the `.region <name> <addr> <len>` directive
    /// ([`parse_program`](crate::parse_program)) or
    /// [`Asm::region`](crate::Asm::region). An empty slice means the
    /// workload declares no footprint and bounds checking is vacuous.
    pub fn regions(&self) -> &[(String, u64, u64)] {
        &self.regions
    }

    /// The declared region containing `addr`, if any, as
    /// `(name, base, len)`.
    pub fn region_containing(&self, addr: u64) -> Option<(&str, u64, u64)> {
        // Regions are sorted and disjoint: the only candidate is the last
        // region starting at or below `addr`.
        match self.regions.partition_point(|&(_, base, _)| base <= addr) {
            0 => None,
            i => {
                let (name, base, len) = &self.regions[i - 1];
                (addr - base < *len).then_some((name.as_str(), *base, *len))
            }
        }
    }

    /// Whether the whole access `[addr, addr + width)` lies inside a single
    /// declared region. Vacuously false when `width == 0`.
    pub fn access_in_region(&self, addr: u64, width: u64) -> bool {
        width != 0
            && match self.region_containing(addr) {
                Some((_, base, len)) => {
                    // The region end cannot overflow (validated), so the
                    // access fits iff its last byte is below base + len.
                    width <= len && addr - base <= len - width
                }
                None => false,
            }
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// All instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Label names bound while assembling, as `(pc, name)` pairs.
    pub fn labels(&self) -> &[(usize, String)] {
        &self.labels
    }

    /// 1-based source line of the instruction at `pc`, when the program was
    /// parsed from text ([`parse_program`](crate::parse_program)). Programs
    /// built with [`Asm`](crate::Asm) have no source lines.
    pub fn source_line(&self, pc: usize) -> Option<usize> {
        self.lines.get(pc).copied()
    }

    /// Name of the label bound exactly at `pc`, if any.
    pub fn label_at(&self, pc: usize) -> Option<&str> {
        self.labels.iter().find(|(lpc, _)| *lpc == pc).map(|(_, n)| n.as_str())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (base, len) in &self.secrets {
            writeln!(f, ".secret {base:#x} {len:#x}")?;
        }
        for (name, base, len) in &self.regions {
            writeln!(f, ".region {name} {base:#x} {len:#x}")?;
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            for (lpc, name) in &self.labels {
                if *lpc == pc {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  {pc:4}: {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX); // wraps
        assert_eq!(AluOp::Mul.eval(1 << 40, 1 << 40), 0); // wraps
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Div.eval(7, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Div.eval((-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(AluOp::Min.eval((-1i64) as u64, 5), (-1i64) as u64);
        assert_eq!(AluOp::Max.eval((-1i64) as u64, 5), 5);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Shr.eval((-8i64) as u64, 1), ((-8i64) as u64) >> 1);
    }

    #[test]
    fn compare_classification() {
        assert!(AluOp::Slt.is_compare());
        assert!(AluOp::Seq.is_compare());
        assert!(!AluOp::Add.is_compare());
        let i = Instr::Alu { op: AluOp::Slt, rd: Reg::R1, ra: Reg::R2, rb: Reg::R3 };
        assert!(i.is_compare());
    }

    #[test]
    fn effective_address() {
        let a = MemAddr::indexed(Reg::R1, Reg::R2, 3);
        let addr = a.effective(|r| match r {
            Reg::R1 => 0x1000,
            Reg::R2 => 5,
            _ => 0,
        });
        assert_eq!(addr, 0x1000 + 5 * 8);

        let b = MemAddr::base(Reg::R1, -16);
        let addr = b.effective(|_| 0x1000);
        assert_eq!(addr, 0x1000 - 16);
    }

    #[test]
    fn srcs_and_dst() {
        let ld = Instr::Load {
            rd: Reg::R4,
            addr: MemAddr::indexed(Reg::R1, Reg::R2, 3),
            width: MemWidth::B8,
        };
        assert_eq!(ld.dst(), Some(Reg::R4));
        let srcs: Vec<_> = ld.srcs().collect();
        assert_eq!(srcs, vec![Reg::R1, Reg::R2]);

        let st = Instr::Store { rs: Reg::R5, addr: MemAddr::base(Reg::R1, 0), width: MemWidth::B4 };
        assert_eq!(st.dst(), None);
        let srcs: Vec<_> = st.srcs().collect();
        assert_eq!(srcs, vec![Reg::R1, Reg::R5]);
    }

    #[test]
    fn display_formats() {
        let i = Instr::Load {
            rd: Reg::R4,
            addr: MemAddr::indexed(Reg::R1, Reg::R2, 3),
            width: MemWidth::B8,
        };
        assert_eq!(i.to_string(), "ld8 r4, [r1 + r2<<3 + 0]");
        assert_eq!(Instr::Halt.to_string(), "halt");
    }

    #[test]
    fn latency_matches_table1() {
        assert_eq!(AluOp::Add.latency(), 1);
        assert_eq!(AluOp::Mul.latency(), 3);
        assert_eq!(AluOp::Div.latency(), 18);
    }

    #[test]
    fn secret_validation_rejects_bad_ranges() {
        assert_eq!(
            validate_secrets(vec![(0x1000, 0)]),
            Err(SecretRangeError::ZeroLength { addr: 0x1000 })
        );
        assert_eq!(
            validate_secrets(vec![(u64::MAX - 4, 8)]),
            Err(SecretRangeError::OutOfRange { addr: u64::MAX - 4, len: 8 })
        );
        assert_eq!(
            validate_secrets(vec![(0x2000, 16), (0x1000, 0x1008)]),
            Err(SecretRangeError::Overlap { first: 0x1000, second: 0x2000 })
        );
        // Adjacent ranges do not overlap, and the result is sorted.
        assert_eq!(
            validate_secrets(vec![(0x2000, 8), (0x1000, 0x1000)]),
            Ok(vec![(0x1000, 0x1000), (0x2000, 8)])
        );
    }

    #[test]
    fn region_validation_rejects_bad_declarations() {
        let r = |name: &str, addr, len| (name.to_string(), addr, len);
        assert_eq!(
            validate_regions(vec![r("a b", 0x1000, 8)]),
            Err(RegionError::BadName { name: "a b".to_string() })
        );
        assert_eq!(
            validate_regions(vec![r("", 0x1000, 8)]),
            Err(RegionError::BadName { name: String::new() })
        );
        assert_eq!(
            validate_regions(vec![r("a", 0x1000, 8), r("a", 0x2000, 8)]),
            Err(RegionError::DuplicateName { name: "a".to_string() })
        );
        assert_eq!(
            validate_regions(vec![r("a", 0x1000, 0)]),
            Err(RegionError::ZeroLength { name: "a".to_string(), addr: 0x1000 })
        );
        assert_eq!(
            validate_regions(vec![r("a", u64::MAX - 4, 8)]),
            Err(RegionError::OutOfRange { name: "a".to_string(), addr: u64::MAX - 4, len: 8 })
        );
        assert_eq!(
            validate_regions(vec![r("hi", 0x2000, 16), r("lo", 0x1000, 0x1008)]),
            Err(RegionError::Overlap { first: "lo".to_string(), second: "hi".to_string() })
        );
        // Adjacent regions are fine; the result is sorted by base.
        assert_eq!(
            validate_regions(vec![r("hi", 0x2000, 8), r("lo", 0x1000, 0x1000)]),
            Ok(vec![r("lo", 0x1000, 0x1000), r("hi", 0x2000, 8)])
        );
    }

    #[test]
    fn region_lookup_and_containment() {
        let r = |name: &str, addr, len| (name.to_string(), addr, len);
        let mut p = Program::new(vec![Instr::Halt], Vec::new());
        p.set_regions(validate_regions(vec![r("b", 0x3000, 8), r("a", 0x1000, 16)]).unwrap());
        assert_eq!(p.region_containing(0x1000), Some(("a", 0x1000, 16)));
        assert_eq!(p.region_containing(0x100f), Some(("a", 0x1000, 16)));
        assert_eq!(p.region_containing(0x1010), None);
        assert_eq!(p.region_containing(0xfff), None);
        assert_eq!(p.region_containing(0x3007), Some(("b", 0x3000, 8)));
        assert_eq!(Program::default().region_containing(0), None);

        assert!(p.access_in_region(0x1008, 8));
        assert!(!p.access_in_region(0x1009, 8)); // last byte past the end
        assert!(p.access_in_region(0x100f, 1));
        assert!(!p.access_in_region(0x1000, 17)); // wider than the region
        assert!(!p.access_in_region(0x1000, 0)); // empty accesses prove nothing
    }

    #[test]
    fn secret_addr_lookup() {
        let mut p = Program::new(vec![Instr::Halt], Vec::new());
        p.set_secrets(validate_secrets(vec![(0x1000, 16), (0x3000, 8)]).unwrap());
        assert!(p.is_secret_addr(0x1000));
        assert!(p.is_secret_addr(0x100f));
        assert!(!p.is_secret_addr(0x1010));
        assert!(!p.is_secret_addr(0xfff));
        assert!(p.is_secret_addr(0x3007));
        assert!(!p.is_secret_addr(0x3008));
        assert!(!Program::default().is_secret_addr(0));
    }
}
