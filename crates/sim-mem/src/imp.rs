//! IMP — the Indirect Memory Prefetcher baseline (Yu et al., MICRO 2015).
//!
//! IMP pairs a *striding index stream* `A[i]` with *indirect consumers*
//! whose address is an affine function of the index value:
//! `addr = base + (A[i] << shift)`. Once a pairing is confident, it walks
//! the index stream ahead of the core and prefetches the indirect targets.
//!
//! Per the DVR paper's characterization, IMP catches simple one-level
//! indirection (`cc`, `Camel`, `NAS-IS`, `RandomAccess`) but not chains with
//! complex address calculation (hashing, multi-level) — a property this
//! model reproduces structurally: only affine value→address relations are
//! learnable.

use sim_isa::SparseMemory;

/// IMP configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ImpConfig {
    /// Index-stream table entries.
    pub streams: usize,
    /// How many index elements ahead to prefetch the indirect target.
    pub lookahead: u64,
    /// Indirect candidates verified before prefetching begins.
    pub confidence_threshold: u8,
}

impl Default for ImpConfig {
    fn default() -> Self {
        ImpConfig { streams: 16, lookahead: 8, confidence_threshold: 2 }
    }
}

#[derive(Clone, Copy, Debug)]
struct IndexStream {
    pc: usize,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    width: u64,
    last_value: u64,
}

#[derive(Clone, Copy, Debug)]
struct IndirectPattern {
    stream_pc: usize,
    consumer_pc: usize,
    shift: u8,
    base: u64,
    confidence: u8,
}

/// The IMP prefetcher state machine.
///
/// The core drives it with every demand load (`pc`, address, loaded value,
/// width, and whether the access missed the L1). It returns the prefetch
/// addresses to issue.
///
/// # Example
///
/// ```
/// use sim_isa::SparseMemory;
/// use sim_mem::{ImpConfig, ImpPrefetcher};
///
/// let mut mem = SparseMemory::new();
/// // Index array A at 0x1000 with values 3,1,4,1,5,...; table B at 0x100000.
/// for (i, v) in [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3].iter().enumerate() {
///     mem.write_u64(0x1000 + 8 * i as u64, *v);
/// }
/// let mut imp = ImpPrefetcher::new(ImpConfig { lookahead: 2, ..ImpConfig::default() });
/// let mut prefetches = vec![];
/// for i in 0..8u64 {
///     let a_addr = 0x1000 + 8 * i;
///     let v = mem.read_u64(a_addr);
///     prefetches.extend(imp.observe_load(10, a_addr, v, 8, false, &mem)); // A[i]
///     let b_addr = 0x100000 + (v << 3);
///     prefetches.extend(imp.observe_load(20, b_addr, 0, 8, true, &mem)); // B[A[i]]
/// }
/// // After a few iterations IMP predicts B[A[i+2]] addresses.
/// assert!(prefetches.contains(&(0x100000 + (5u64 << 3))));
/// ```
#[derive(Clone, Debug)]
pub struct ImpPrefetcher {
    cfg: ImpConfig,
    streams: Vec<Option<IndexStream>>,
    patterns: Vec<IndirectPattern>,
    /// Most recently updated confident stream (candidate producer for new
    /// indirect patterns).
    last_stream_slot: Option<usize>,
}

const SHIFTS: [u8; 4] = [0, 1, 2, 3];
const MAX_PATTERNS: usize = 16;

impl ImpPrefetcher {
    /// Creates an IMP with the given configuration.
    pub fn new(cfg: ImpConfig) -> Self {
        ImpPrefetcher {
            cfg,
            streams: vec![None; cfg.streams],
            patterns: Vec::new(),
            last_stream_slot: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> ImpConfig {
        self.cfg
    }

    /// Number of confident indirect patterns learned so far.
    pub fn learned_patterns(&self) -> usize {
        self.patterns.iter().filter(|p| p.confidence >= self.cfg.confidence_threshold).count()
    }

    /// Observes one demand load and returns prefetch addresses to issue.
    ///
    /// `mem` is the functional memory image, used to read *future* index
    /// values (hardware IMP snoops them from prefetched fill data).
    pub fn observe_load(
        &mut self,
        pc: usize,
        addr: u64,
        value: u64,
        width: u64,
        was_miss: bool,
        mem: &SparseMemory,
    ) -> Vec<u64> {
        let mut out = Vec::new();

        // 1. On a miss by a PC other than the current index stream's, try to
        //    pair it with that stream's most recent value. This runs before
        //    training so `last_value` is the producer value of *this*
        //    iteration, not one polluted by the consumer itself.
        if was_miss {
            if let Some(ss) = self.last_stream_slot {
                if let Some(stream) = self.streams[ss] {
                    if stream.pc != pc {
                        self.learn_pattern(stream.pc, pc, stream.last_value, addr);
                    }
                }
            }
        }

        // 2. Train the index-stream table.
        let slot = pc % self.streams.len();
        let mut stream_updated = false;
        match &mut self.streams[slot] {
            Some(s) if s.pc == pc => {
                let stride = addr.wrapping_sub(s.last_addr) as i64;
                if stride == s.stride && stride != 0 {
                    s.confidence = (s.confidence + 1).min(3);
                } else {
                    if s.confidence > 0 {
                        s.confidence -= 1;
                    }
                    if s.confidence == 0 {
                        s.stride = stride;
                        s.confidence = 1;
                    }
                }
                s.last_addr = addr;
                s.last_value = value;
                s.width = width;
                if s.confidence >= 2 && s.stride != 0 {
                    self.last_stream_slot = Some(slot);
                    stream_updated = true;
                }
            }
            _ => {
                self.streams[slot] = Some(IndexStream {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                    width,
                    last_value: value,
                });
            }
        }

        // 3. If the updated stream feeds confident patterns, prefetch ahead.
        if stream_updated {
            if let Some(stream) = self.streams[slot] {
                let threshold = self.cfg.confidence_threshold;
                for p in &self.patterns {
                    if p.stream_pc == stream.pc && p.confidence >= threshold {
                        // Read the future index value functionally and
                        // compute the indirect target.
                        let future_addr = stream
                            .last_addr
                            .wrapping_add((stream.stride * self.cfg.lookahead as i64) as u64);
                        let future_value = mem.read(future_addr, stream.width);
                        out.push(p.base.wrapping_add(future_value << p.shift));
                    }
                }
            }
        }

        out
    }

    fn learn_pattern(&mut self, stream_pc: usize, consumer_pc: usize, value: u64, addr: u64) {
        for shift in SHIFTS {
            let base = addr.wrapping_sub(value << shift);
            if let Some(p) = self.patterns.iter_mut().find(|p| {
                p.stream_pc == stream_pc && p.consumer_pc == consumer_pc && p.shift == shift
            }) {
                if p.base == base {
                    p.confidence = (p.confidence + 1).min(3);
                } else if p.confidence > 0 {
                    p.confidence -= 1;
                } else {
                    p.base = base;
                    p.confidence = 1;
                }
            } else if self.patterns.len() < MAX_PATTERNS {
                self.patterns.push(IndirectPattern {
                    stream_pc,
                    consumer_pc,
                    shift,
                    base,
                    confidence: 1,
                });
            }
        }
        // Drop candidates that can no longer distinguish themselves.
        self.patterns.retain(|p| p.confidence > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive IMP with a classic B[A[i]] pattern and check it starts
    /// prefetching the right lines.
    #[test]
    fn learns_simple_indirection() {
        let mut mem = SparseMemory::new();
        // Pseudo-random (non-striding) index values.
        let mut x: u64 = 12345;
        let values: Vec<u64> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) % 1024
            })
            .collect();
        mem.write_u64_slice(0x1000, &values);
        let b_base = 0x50_0000u64;

        let mut imp = ImpPrefetcher::new(ImpConfig { lookahead: 4, ..ImpConfig::default() });
        let mut predicted = vec![];
        for i in 0..32u64 {
            let a_addr = 0x1000 + 8 * i;
            let v = mem.read_u64(a_addr);
            predicted.extend(imp.observe_load(100, a_addr, v, 8, false, &mem));
            let b_addr = b_base + (v << 3);
            predicted.extend(imp.observe_load(200, b_addr, 0, 8, true, &mem));
        }
        assert!(imp.learned_patterns() >= 1);
        // Every prediction must be a correct future B address.
        let valid: std::collections::HashSet<u64> =
            values.iter().map(|v| b_base + (v << 3)).collect();
        assert!(!predicted.is_empty());
        for p in &predicted {
            assert!(valid.contains(p), "IMP predicted a wrong address {p:#x}");
        }
    }

    /// A hashed indirection (nonlinear in the index value) must not train.
    #[test]
    fn cannot_learn_hashed_indirection() {
        let mut mem = SparseMemory::new();
        let values: Vec<u64> = (0..64).map(|i| i * 13 % 509).collect();
        mem.write_u64_slice(0x1000, &values);
        let b_base = 0x50_0000u64;
        let hash = |v: u64| (v.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 4096;

        let mut imp = ImpPrefetcher::new(ImpConfig::default());
        let mut predicted = vec![];
        for i in 0..48u64 {
            let a_addr = 0x1000 + 8 * i;
            let v = mem.read_u64(a_addr);
            predicted.extend(imp.observe_load(100, a_addr, v, 8, false, &mem));
            let b_addr = b_base + (hash(v) << 3);
            predicted.extend(imp.observe_load(200, b_addr, 0, 8, true, &mem));
        }
        assert_eq!(
            imp.learned_patterns(),
            0,
            "IMP must not become confident on hashed indirection"
        );
        assert!(predicted.is_empty());
    }

    #[test]
    fn no_pairing_with_own_stream() {
        let mut mem = SparseMemory::new();
        let mut imp = ImpPrefetcher::new(ImpConfig::default());
        // A pure stride stream missing every time must not pair with itself.
        for i in 0..32u64 {
            imp.observe_load(5, 0x1000 + 64 * i, i, 8, true, &mem);
        }
        assert_eq!(imp.learned_patterns(), 0);
        let _ = &mut mem;
    }
}
