//! Miss-status holding registers (MSHRs) for the L1-D cache.

/// A file of MSHRs tracking outstanding L1-D misses.
///
/// Capacity-limits memory-level parallelism: a miss cannot leave the core
/// without an MSHR. Demand (and runahead-subthread) misses *wait* for a free
/// entry; hardware prefetchers *drop* their request instead. To keep
/// speculative traffic from starving the main thread, prefetch-class
/// entries are additionally capped below the full capacity (a standard
/// prefetch-throttling policy; demand may always use every entry).
///
/// The file integrates occupancy over time, which is the MLP metric of the
/// paper's Figure 9 (average MSHRs used per cycle).
///
/// # Example
///
/// ```
/// use sim_mem::MshrFile;
/// let mut m = MshrFile::new(2);
/// let start = m.alloc_blocking(0, false);  // free entry
/// m.commit(start, 100, false);             // miss outstanding until cycle 100
/// let start = m.alloc_blocking(0, false);
/// m.commit(start, 150, false);             // second entry
/// assert!(m.try_alloc(50, true).is_none());    // full: a prefetch drops
/// assert_eq!(m.alloc_blocking(50, false), 100); // a demand miss waits
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    prefetch_cap: usize,
    /// Live entries: `(completion_cycle, is_prefetch)`. Entries with
    /// `end <= now` are free for reuse.
    ends: Vec<(u64, bool)>,
    busy_integral: u64,
    allocations: u64,
    peak: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries and a prefetch cap of 2/3 of
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        MshrFile::with_prefetch_cap(capacity, (capacity * 2 / 3).max(1))
    }

    /// Creates a file with an explicit prefetch-class cap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the cap exceeds capacity.
    pub fn with_prefetch_cap(capacity: usize, prefetch_cap: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        assert!(prefetch_cap <= capacity, "prefetch cap cannot exceed capacity");
        MshrFile {
            capacity,
            prefetch_cap: prefetch_cap.max(1),
            ends: Vec::with_capacity(capacity),
            busy_integral: 0,
            allocations: 0,
            peak: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum prefetch-class entries outstanding at once.
    pub fn prefetch_cap(&self) -> usize {
        self.prefetch_cap
    }

    /// Number of entries outstanding at `cycle`.
    pub fn in_use(&self, cycle: u64) -> usize {
        self.ends.iter().filter(|(e, _)| *e > cycle).count()
    }

    /// Number of prefetch-class entries outstanding at `cycle`.
    pub fn prefetch_in_use(&self, cycle: u64) -> usize {
        self.ends.iter().filter(|(e, p)| *e > cycle && *p).count()
    }

    /// Whether an entry is free at `cycle` for the given class.
    pub fn has_free(&self, cycle: u64, is_prefetch: bool) -> bool {
        let total_free = self.in_use(cycle) < self.capacity;
        if is_prefetch {
            total_free && self.prefetch_in_use(cycle) < self.prefetch_cap
        } else {
            total_free
        }
    }

    /// Allocates an entry at `cycle`, or returns `None` if the class has no
    /// free entry (non-blocking: used by hardware prefetchers, which drop).
    ///
    /// The entry's lifetime must then be fixed with [`MshrFile::commit`].
    pub fn try_alloc(&mut self, cycle: u64, is_prefetch: bool) -> Option<u64> {
        self.has_free(cycle, is_prefetch).then_some(cycle)
    }

    /// Allocates an entry, waiting for outstanding entries to complete if
    /// the class is saturated. Returns the cycle at which the allocation
    /// takes effect (the miss's effective start time).
    pub fn alloc_blocking(&mut self, cycle: u64, is_prefetch: bool) -> u64 {
        let mut start = cycle;
        // At most a few rounds: each round advances past one constraint.
        for _ in 0..4 {
            if self.has_free(start, is_prefetch) {
                return start;
            }
            let class_block = is_prefetch && self.prefetch_in_use(start) >= self.prefetch_cap;
            let next = self
                .ends
                .iter()
                .filter(|(e, p)| *e > start && (!class_block || *p))
                .map(|(e, _)| *e)
                .min();
            match next {
                Some(e) => start = e,
                None => return start,
            }
        }
        start
    }

    /// Records an allocated entry's `(start, end)` lifetime, updating the
    /// occupancy integral.
    pub fn commit(&mut self, start: u64, end: u64, is_prefetch: bool) {
        debug_assert!(end >= start);
        self.allocations += 1;
        self.busy_integral += end - start;
        // Reuse a completed slot if possible.
        if let Some(slot) = self.ends.iter_mut().find(|(e, _)| *e <= start) {
            *slot = (end, is_prefetch);
        } else if self.ends.len() < self.capacity {
            self.ends.push((end, is_prefetch));
        } else {
            // Blocking allocation replaced the earliest-completing entry.
            if let Some(slot) = self.ends.iter_mut().min_by_key(|(e, _)| *e) {
                *slot = (end, is_prefetch);
            }
        }
        let used = self.in_use(start);
        self.peak = self.peak.max(used);
    }

    /// Total MSHR-cycles of occupancy accumulated (for Figure 9's
    /// MSHRs-per-cycle average, divide by elapsed cycles).
    pub fn busy_integral(&self) -> u64 {
        self.busy_integral
    }

    /// Total entries allocated over the run.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Releases every outstanding entry, as if all in-flight misses had
    /// completed. The cumulative counters (occupancy integral, allocation
    /// and peak statistics) are preserved.
    ///
    /// Used at sampling interval boundaries: entry completion times are
    /// absolute cycles of the previous interval's clock and would otherwise
    /// block the next interval's cycle-0 restart for its entire length.
    pub fn quiesce(&mut self) {
        self.ends.clear();
    }

    /// Read-only allocate/release balance check for the `--sanitize` mode:
    /// tracked entries and live occupancy can never exceed capacity (every
    /// allocation is paired with a completion time; the blocking allocator
    /// reuses or replaces slots rather than growing the file). The
    /// prefetch-class cap is deliberately *not* asserted here: the bounded
    /// wait in [`MshrFile::alloc_blocking`] may give up after a few rounds,
    /// transiently exceeding it by design.
    pub fn check_invariants(&self, cycle: u64) -> Vec<String> {
        let mut out = Vec::new();
        if self.ends.len() > self.capacity {
            out.push(format!(
                "mshr: {} tracked entries exceed capacity {}",
                self.ends.len(),
                self.capacity
            ));
        }
        let used = self.in_use(cycle);
        if used > self.capacity {
            out.push(format!("mshr: {used} live entries exceed capacity {}", self.capacity));
        }
        if self.peak > self.capacity {
            out.push(format!("mshr: peak {} exceeds capacity {}", self.peak, self.capacity));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_alloc_waits_for_earliest() {
        let mut m = MshrFile::new(2);
        m.commit(0, 100, false);
        m.commit(0, 50, false);
        // Full at cycle 10; earliest completion is 50.
        assert_eq!(m.alloc_blocking(10, false), 50);
        // Free again at 60.
        assert_eq!(m.alloc_blocking(60, false), 60);
    }

    #[test]
    fn try_alloc_drops_when_full() {
        let mut m = MshrFile::new(1);
        m.commit(0, 100, false);
        assert!(m.try_alloc(10, true).is_none());
        assert_eq!(m.try_alloc(100, true), Some(100));
    }

    #[test]
    fn occupancy_integral_accumulates() {
        let mut m = MshrFile::new(4);
        m.commit(0, 10, false);
        m.commit(5, 25, true);
        assert_eq!(m.busy_integral(), 10 + 20);
        assert_eq!(m.allocations(), 2);
    }

    #[test]
    fn in_use_counts_live_entries() {
        let mut m = MshrFile::new(4);
        m.commit(0, 10, false);
        m.commit(0, 20, true);
        assert_eq!(m.in_use(5), 2);
        assert_eq!(m.prefetch_in_use(5), 1);
        assert_eq!(m.in_use(15), 1);
        assert_eq!(m.in_use(25), 0);
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn prefetch_cap_leaves_demand_headroom() {
        let mut m = MshrFile::with_prefetch_cap(4, 2);
        m.commit(0, 100, true);
        m.commit(0, 100, true);
        // Prefetch class saturated: the next prefetch waits...
        assert!(m.try_alloc(10, true).is_none());
        assert_eq!(m.alloc_blocking(10, true), 100);
        // ...but demand still allocates immediately.
        assert_eq!(m.alloc_blocking(10, false), 10);
        assert!(m.try_alloc(10, false).is_some());
    }

    #[test]
    fn demand_can_use_all_entries() {
        let mut m = MshrFile::with_prefetch_cap(2, 1);
        m.commit(0, 100, false);
        m.commit(0, 200, false);
        assert_eq!(m.alloc_blocking(0, false), 100);
    }

    #[test]
    fn prefetch_waits_for_prefetch_slot_not_just_any() {
        let mut m = MshrFile::with_prefetch_cap(4, 1);
        m.commit(0, 500, true); // the one prefetch slot, busy until 500
        m.commit(0, 50, false); // demand, done at 50
                                // A prefetch must wait for the *prefetch* entry to free, not the
                                // demand one.
        assert_eq!(m.alloc_blocking(10, true), 500);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn oversized_cap_panics() {
        let _ = MshrFile::with_prefetch_cap(2, 3);
    }
}
