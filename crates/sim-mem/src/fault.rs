//! Deterministic, seeded fault injection for the memory hierarchy.
//!
//! The harness uses these faults to prove the stack fails *as data*: a
//! dropped MSHR response wedges the pipeline so the core's forward-progress
//! watchdog must fire; delayed DRAM slots and poisoned prefetches perturb
//! timing without ever touching architectural state; and a fatal injected
//! fault aborts a run at a deterministic point so batch harnesses can
//! rehearse their failure paths.
//!
//! All randomness comes from a per-[`MemoryHierarchy`] xorshift stream
//! seeded from [`FaultConfig::seed`], so outcomes depend only on the access
//! stream — never on host threads or wall-clock time.
//!
//! [`MemoryHierarchy`]: crate::MemoryHierarchy

/// What kind of fault fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// A demand-class MSHR response was dropped: the fill never completes
    /// and the requester waits forever (the watchdog's job to notice).
    DroppedResponse,
    /// A DRAM line read was delayed by [`FaultConfig::delay_cycles`].
    DelayedDram,
    /// A prefetch-class fill was poisoned and discarded (timing-only:
    /// the line simply never arrives; architectural state is untouched).
    PoisonedPrefetch,
    /// The configured fatal fault: aborts the run when the core polls it.
    Fatal,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::DroppedResponse => "dropped MSHR response",
            FaultKind::DelayedDram => "delayed DRAM slot",
            FaultKind::PoisonedPrefetch => "poisoned prefetch",
            FaultKind::Fatal => "fatal injected fault",
        };
        f.write_str(s)
    }
}

/// A fault that fired, for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// What fired.
    pub kind: FaultKind,
    /// Cycle of the access that triggered it.
    pub cycle: u64,
    /// Cache-line address involved.
    pub line: u64,
}

/// Seeded fault-injection configuration (all rates are `1-in-N`; `0`
/// disables that fault class).
///
/// Lives inside [`HierarchyConfig`](crate::HierarchyConfig) so a fault
/// plan travels with the rest of the simulation configuration and stays
/// `Copy`/`Eq`-comparable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultConfig {
    /// Seed for the injection RNG.
    pub seed: u64,
    /// Drop 1-in-N demand-class miss responses (`0` = never). A dropped
    /// response never completes; the core's watchdog reports a deadlock.
    pub drop_demand_1_in: u64,
    /// Delay 1-in-N DRAM line reads (`0` = never).
    pub delay_dram_1_in: u64,
    /// Extra cycles added by a delayed DRAM read.
    pub delay_cycles: u64,
    /// Poison (discard) 1-in-N prefetch-class fills (`0` = never).
    pub poison_prefetch_1_in: u64,
    /// Raise a fatal fault on exactly the Nth demand access (`0` = never).
    pub fatal_at_demand_access: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            drop_demand_1_in: 0,
            delay_dram_1_in: 0,
            delay_cycles: 400,
            poison_prefetch_1_in: 0,
            fatal_at_demand_access: 0,
        }
    }
}

impl FaultConfig {
    /// A no-fault configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig { seed, ..FaultConfig::default() }
    }

    /// Drops 1-in-N demand-class miss responses.
    pub fn with_drop(mut self, one_in: u64) -> Self {
        self.drop_demand_1_in = one_in;
        self
    }

    /// Delays 1-in-N DRAM reads by `cycles`.
    pub fn with_delay(mut self, one_in: u64, cycles: u64) -> Self {
        self.delay_dram_1_in = one_in;
        self.delay_cycles = cycles;
        self
    }

    /// Poisons 1-in-N prefetch-class fills.
    pub fn with_poison(mut self, one_in: u64) -> Self {
        self.poison_prefetch_1_in = one_in;
        self
    }

    /// Raises a fatal fault on the Nth demand access.
    pub fn with_fatal_at(mut self, nth_demand_access: u64) -> Self {
        self.fatal_at_demand_access = nth_demand_access;
        self
    }

    /// Whether any fault class is armed.
    pub fn is_active(&self) -> bool {
        self.drop_demand_1_in != 0
            || self.delay_dram_1_in != 0
            || self.poison_prefetch_1_in != 0
            || self.fatal_at_demand_access != 0
    }
}

/// Completion cycle assigned to a dropped response: far enough in the
/// future that it never completes within any realistic run, small enough
/// that downstream arithmetic (latency additions, slot alignment) cannot
/// overflow.
pub(crate) const NEVER_COMPLETES: u64 = u64::MAX / 4;

/// Runtime injection state, owned by one `MemoryHierarchy` instance — the
/// RNG stream follows the hierarchy's access stream, so results are
/// independent of how many host threads run other simulations.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    cfg: FaultConfig,
    rng: u64,
    demand_accesses: u64,
    pending_fatal: Option<FaultEvent>,
}

impl FaultState {
    pub(crate) fn new(cfg: FaultConfig) -> Self {
        // splitmix64 of the seed, forced odd so the xorshift state is
        // never the all-zero fixed point.
        let mut z = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        FaultState { cfg, rng: (z ^ (z >> 31)) | 1, demand_accesses: 0, pending_fatal: None }
    }

    fn roll(&mut self, one_in: u64) -> bool {
        if one_in == 0 {
            return false;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng.is_multiple_of(one_in)
    }

    /// Called once per demand access; arms the fatal event on the
    /// configured access ordinal.
    pub(crate) fn note_demand_access(&mut self, cycle: u64, line: u64) {
        self.demand_accesses += 1;
        if self.cfg.fatal_at_demand_access != 0
            && self.demand_accesses == self.cfg.fatal_at_demand_access
            && self.pending_fatal.is_none()
        {
            self.pending_fatal = Some(FaultEvent { kind: FaultKind::Fatal, cycle, line });
        }
    }

    pub(crate) fn drop_demand_response(&mut self) -> bool {
        let n = self.cfg.drop_demand_1_in;
        self.roll(n)
    }

    pub(crate) fn dram_delay(&mut self) -> Option<u64> {
        let n = self.cfg.delay_dram_1_in;
        self.roll(n).then_some(self.cfg.delay_cycles)
    }

    pub(crate) fn poison_prefetch(&mut self) -> bool {
        let n = self.cfg.poison_prefetch_1_in;
        self.roll(n)
    }

    pub(crate) fn take_fatal(&mut self) -> Option<FaultEvent> {
        self.pending_fatal.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_rates_never_fire() {
        let mut s = FaultState::new(FaultConfig::seeded(42));
        for _ in 0..1000 {
            assert!(!s.drop_demand_response());
            assert!(s.dram_delay().is_none());
            assert!(!s.poison_prefetch());
        }
        s.note_demand_access(0, 0);
        assert!(s.take_fatal().is_none());
    }

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let cfg = FaultConfig::seeded(7).with_drop(3);
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg);
        let seq_a: Vec<bool> = (0..200).map(|_| a.drop_demand_response()).collect();
        let seq_b: Vec<bool> = (0..200).map(|_| b.drop_demand_response()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x), "1-in-3 must fire within 200 rolls");
        assert!(seq_a.iter().any(|&x| !x));
        let mut c = FaultState::new(FaultConfig::seeded(8).with_drop(3));
        let seq_c: Vec<bool> = (0..200).map(|_| c.drop_demand_response()).collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn fatal_fires_exactly_once_on_the_nth_access() {
        let mut s = FaultState::new(FaultConfig::seeded(1).with_fatal_at(3));
        s.note_demand_access(10, 1);
        s.note_demand_access(20, 2);
        assert!(s.take_fatal().is_none());
        s.note_demand_access(30, 3);
        let ev = s.take_fatal().expect("fatal armed on the 3rd access");
        assert_eq!(ev.kind, FaultKind::Fatal);
        assert_eq!(ev.cycle, 30);
        assert_eq!(ev.line, 3);
        s.note_demand_access(40, 4);
        assert!(s.take_fatal().is_none(), "fatal fires once");
    }

    #[test]
    fn config_builders_compose_and_report_activity() {
        assert!(!FaultConfig::seeded(5).is_active());
        let cfg = FaultConfig::seeded(5).with_delay(10, 99).with_poison(4);
        assert!(cfg.is_active());
        assert_eq!(cfg.delay_cycles, 99);
        assert_eq!(cfg.poison_prefetch_1_in, 4);
    }
}
