//! The three-level cache hierarchy with MSHRs and DRAM.

use std::cell::Ref;
use std::cell::RefCell;
use std::rc::Rc;

use sim_isa::FxHashMap;

use crate::cache::{Cache, CacheConfig};
use crate::dram::DramConfig;
use crate::fault::{FaultConfig, FaultEvent, FaultState, NEVER_COMPLETES};
use crate::line_of;
use crate::mshr::MshrFile;
use crate::shared::{SharedLlc, SharedLlcHandle};
use crate::stats::{MemStats, TimelinessBucket};

/// Which engine generated a prefetch — drives provenance accounting for
/// Figures 10 and 11.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrefetchSource {
    /// The always-on L1-D stride prefetcher.
    Stride,
    /// The Indirect Memory Prefetcher baseline.
    Imp,
    /// Precise Runahead Execution.
    Pre,
    /// Vector Runahead.
    Vr,
    /// Decoupled Vector Runahead (this paper).
    Dvr,
    /// The hypothetical Oracle.
    Oracle,
}

impl PrefetchSource {
    /// Number of sources.
    pub const COUNT: usize = 6;

    /// All sources in index order.
    pub const ALL: [PrefetchSource; Self::COUNT] = [
        PrefetchSource::Stride,
        PrefetchSource::Imp,
        PrefetchSource::Pre,
        PrefetchSource::Vr,
        PrefetchSource::Dvr,
        PrefetchSource::Oracle,
    ];

    /// Stable index for stats arrays.
    pub fn index(self) -> usize {
        match self {
            PrefetchSource::Stride => 0,
            PrefetchSource::Imp => 1,
            PrefetchSource::Pre => 2,
            PrefetchSource::Vr => 3,
            PrefetchSource::Dvr => 4,
            PrefetchSource::Oracle => 5,
        }
    }

    /// Whether this source is a runahead engine (counted as "runahead mode"
    /// DRAM traffic in Figure 10), as opposed to a hardware prefetcher.
    pub fn is_runahead(self) -> bool {
        matches!(self, PrefetchSource::Pre | PrefetchSource::Vr | PrefetchSource::Dvr)
    }
}

/// One secret-tainted line fill observed by the taint oracle: a prefetch
/// (or runahead lane load) whose address was derived from declared-secret
/// data brought `line` into the hierarchy.
///
/// Recorded only while the gated taint log is enabled
/// ([`MemoryHierarchy::enable_taint_log`]); the log is observer-only state
/// and never feeds back into timing or [`MemStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaintFill {
    /// Static pc of the load whose address carried the taint.
    pub pc: usize,
    /// The cache line (line address, not byte address) it filled.
    pub line: u64,
    /// Which engine issued the fill.
    pub source: PrefetchSource,
}

/// Who is asking for a line and why.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessClass {
    /// The main thread's architectural loads and stores.
    Demand,
    /// A speculative fetch on behalf of a prefetch engine. Runahead-engine
    /// loads use this too: their fills carry the engine's provenance.
    Prefetch(PrefetchSource),
}

/// The level that satisfied an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// Ready in the L1-D.
    L1,
    /// Ready in the L2.
    L2,
    /// Ready in the L3.
    L3,
    /// Fetched from DRAM.
    Mem,
    /// Present but still in flight (merged into an outstanding MSHR).
    InFlight,
}

impl HitLevel {
    fn stats_index(self) -> usize {
        match self {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::L3 => 2,
            HitLevel::Mem => 3,
            // In-flight merges are counted separately.
            HitLevel::InFlight => 3,
        }
    }
}

/// Outcome of a load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Cycle at which the data is available to the requester.
    pub complete_at: u64,
    /// Which level satisfied the request.
    pub level: HitLevel,
}

/// Outcome of a (droppable) prefetch request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefetchResult {
    /// The line was already in the L1 (or in flight) — nothing to do.
    Present,
    /// No free MSHR: the prefetch was dropped.
    Dropped,
    /// The prefetch was issued and will complete at the given cycle.
    Issued {
        /// Fill completion cycle.
        complete_at: u64,
    },
}

/// Configuration of the whole hierarchy (defaults = paper Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    /// L1-D geometry/latency.
    pub l1: CacheConfig,
    /// Private L2 geometry/latency.
    pub l2: CacheConfig,
    /// Shared L3 geometry/latency.
    pub l3: CacheConfig,
    /// Number of L1-D MSHRs.
    pub mshrs: usize,
    /// Maximum MSHRs usable by prefetch-class requests at once (demand may
    /// always use all of them). Keeps speculative traffic from starving the
    /// main thread.
    pub mshr_prefetch_cap: usize,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Seeded fault injection, or `None` for a fault-free hierarchy.
    pub fault: Option<FaultConfig>,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 32 * 1024, assoc: 8, latency: 4 },
            l2: CacheConfig { size_bytes: 256 * 1024, assoc: 8, latency: 8 },
            l3: CacheConfig { size_bytes: 8 * 1024 * 1024, assoc: 16, latency: 30 },
            mshrs: 24,
            mshr_prefetch_cap: 20,
            dram: DramConfig::default(),
            fault: None,
        }
    }
}

/// The memory hierarchy: L1-D → L2 → L3 → DRAM with MSHR-limited misses.
///
/// Tag-only (data values live in the functional memory); mostly-inclusive
/// fills (a DRAM fill installs the line at every level); LRU everywhere.
/// Dirty lines write back one level down on eviction and consume DRAM
/// bandwidth when leaving the L3. See the crate docs for an example.
///
/// The L1, L2, and MSHRs are private to this hierarchy; the L3 and DRAM
/// live in a [`SharedLlc`] behind a handle. [`MemoryHierarchy::new`] gives
/// the hierarchy a private handle (the classic single-core setup);
/// [`MemoryHierarchy::attach_shared`] fronts an existing one, so N cores
/// contend for the same L3 ways and DRAM bandwidth calendar.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    mshr: MshrFile,
    /// The shared L3 + DRAM these private levels front.
    shared: SharedLlcHandle,
    /// This core's index in the shared LLC's per-core accounting.
    core_id: u32,
    /// Lines brought in by a prefetch and not yet demanded.
    pending_prefetch: FxHashMap<u64, PrefetchSource>,
    /// Fault-injection state (None when injection is disabled).
    fault: Option<FaultState>,
    /// Gated secret-taint fill log (None = oracle off, the default). Boxed
    /// so the disabled case costs one pointer, mirroring `DvrTrace`.
    taint_log: Option<Vec<TaintFill>>,
    /// Gated speculative-access extent map (None = oracle off, the
    /// default): static pc → (min start address, max inclusive end address)
    /// over every runahead-issued access. Aggregated rather than logged
    /// per-access so long runs stay O(program size).
    spec_extents: Option<FxHashMap<usize, (u64, u64)>>,
    stats: MemStats,
}

impl Clone for MemoryHierarchy {
    /// Deep copy: the clone fronts a private copy of the shared LLC,
    /// detached from any multi-core group. This preserves the value
    /// semantics single-core callers have always had; cloning one member
    /// of a live mix would otherwise alias shared state ambiguously.
    fn clone(&self) -> Self {
        MemoryHierarchy {
            cfg: self.cfg,
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            mshr: self.mshr.clone(),
            shared: Rc::new(RefCell::new(self.shared.borrow().clone())),
            core_id: self.core_id,
            pending_prefetch: self.pending_prefetch.clone(),
            fault: self.fault.clone(),
            taint_log: self.taint_log.clone(),
            spec_extents: self.spec_extents.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy fronting its own private L3 + DRAM.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::attach_shared(cfg, &SharedLlc::new_handle(cfg.l3, cfg.dram))
    }

    /// Creates a hierarchy whose private L1/L2/MSHRs front an existing
    /// shared L3 + DRAM, registering this core with it. The handle's own
    /// geometry wins over `cfg.l3`/`cfg.dram` (the handle was built from
    /// some configuration already); everything else in `cfg` is private
    /// per-core state.
    pub fn attach_shared(cfg: HierarchyConfig, shared: &SharedLlcHandle) -> Self {
        let core_id = shared.borrow_mut().register_core();
        MemoryHierarchy {
            cfg,
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            mshr: MshrFile::with_prefetch_cap(cfg.mshrs, cfg.mshr_prefetch_cap.min(cfg.mshrs)),
            shared: Rc::clone(shared),
            core_id,
            pending_prefetch: FxHashMap::default(),
            fault: cfg.fault.map(FaultState::new),
            taint_log: None,
            spec_extents: None,
            stats: MemStats::default(),
        }
    }

    /// The handle to the shared L3 + DRAM this hierarchy fronts (pass to
    /// [`MemoryHierarchy::attach_shared`] to add contending cores, or
    /// borrow for shared-state diagnostics).
    pub fn shared_llc(&self) -> SharedLlcHandle {
        Rc::clone(&self.shared)
    }

    /// This core's index in the shared LLC's per-core accounting.
    pub fn core_id(&self) -> u32 {
        self.core_id
    }

    /// Arms the secret-taint fill log. While enabled, runahead engines
    /// report secret-addressed fills via
    /// [`MemoryHierarchy::note_secret_fill`]; nothing else changes — the
    /// log is pure observation and a logged run stays cycle-identical to an
    /// unlogged one.
    pub fn enable_taint_log(&mut self) {
        self.taint_log = Some(Vec::new());
    }

    /// Whether the taint log is armed. Engines check this before computing
    /// per-lane taint so the disabled path does no extra work.
    pub fn taint_log_enabled(&self) -> bool {
        self.taint_log.is_some()
    }

    /// Takes the collected taint log, disarming the logger.
    pub fn take_taint_log(&mut self) -> Option<Vec<TaintFill>> {
        self.taint_log.take()
    }

    /// Records that the fill of `addr`'s line by `source` used a
    /// secret-derived address (lane load at static `pc`). No-op while the
    /// log is disarmed.
    pub fn note_secret_fill(&mut self, pc: usize, addr: u64, source: PrefetchSource) {
        if let Some(log) = &mut self.taint_log {
            log.push(TaintFill { pc, line: line_of(addr), source });
        }
    }

    /// Arms the speculative-access extent map. While enabled, runahead
    /// engines report every lane-issued access via
    /// [`MemoryHierarchy::note_spec_access`]; pure observation — an armed
    /// run stays cycle-identical to a plain one.
    pub fn enable_spec_extents(&mut self) {
        self.spec_extents = Some(FxHashMap::default());
    }

    /// Whether the extent map is armed. Engines check this before doing any
    /// per-access bookkeeping so the disabled path does no extra work.
    pub fn spec_extents_enabled(&self) -> bool {
        self.spec_extents.is_some()
    }

    /// Takes the collected extents, disarming the map. Returned sorted by
    /// pc so downstream serialization is host-independent.
    pub fn take_spec_extents(&mut self) -> Option<Vec<(usize, u64, u64)>> {
        self.spec_extents.take().map(|m| {
            let mut v: Vec<(usize, u64, u64)> =
                m.into_iter().map(|(pc, (lo, hi))| (pc, lo, hi)).collect();
            v.sort_unstable();
            v
        })
    }

    /// Records a speculative access of `width` bytes at `addr` issued by the
    /// runahead copy of static `pc`. No-op while the map is disarmed.
    pub fn note_spec_access(&mut self, pc: usize, addr: u64, width: u64) {
        if let Some(m) = &mut self.spec_extents {
            let end = addr.saturating_add(width.max(1) - 1);
            let e = m.entry(pc).or_insert((addr, end));
            e.0 = e.0.min(addr);
            e.1 = e.1.max(end);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// MSHR occupancy integral so far (for MLP = integral / cycles).
    pub fn mshr_busy_integral(&self) -> u64 {
        self.mshr.busy_integral()
    }

    /// Number of MSHRs in use at `cycle`.
    pub fn mshrs_in_use(&self, cycle: u64) -> usize {
        self.mshr.in_use(cycle)
    }

    /// Whether a prefetch-class MSHR is free at `cycle` (prefetchers check
    /// before issuing).
    pub fn mshr_free(&self, cycle: u64) -> bool {
        self.mshr.has_free(cycle, true)
    }

    /// Number of busy intervals in the (shared) DRAM slot calendar (for
    /// deadlock diagnostics).
    pub fn dram_calendar_depth(&self) -> usize {
        self.shared.borrow().dram_calendar_depth()
    }

    /// Takes the pending fatal injected fault, if one has been armed by the
    /// fault-injection engine. The core polls this once per cycle and
    /// aborts the run with `SimError::InjectedFault` when it fires.
    pub fn take_fault(&mut self) -> Option<FaultEvent> {
        let ev = self.fault.as_mut().and_then(FaultState::take_fatal);
        if ev.is_some() {
            self.stats.injected_fatal += 1;
        }
        ev
    }

    /// Performs a load at `cycle`. Demand and runahead loads *wait* for an
    /// MSHR when the file is full.
    pub fn load(&mut self, cycle: u64, addr: u64, class: AccessClass) -> Access {
        let acc = self.access(cycle, addr, class, false);
        if matches!(class, AccessClass::Demand) {
            // Saturating: a wedged line (injected drop) reports a
            // NEVER_COMPLETES latency, and repeated merges on it would
            // overflow the accumulator.
            self.stats.demand_latency_sum =
                self.stats.demand_latency_sum.saturating_add(acc.complete_at.saturating_sub(cycle));
        }
        acc
    }

    /// Performs a store at `cycle` (write-allocate; marks the line dirty).
    pub fn store(&mut self, cycle: u64, addr: u64, class: AccessClass) -> Access {
        self.access(cycle, addr, class, true)
    }

    /// Issues a droppable prefetch of `addr`'s line into the L1-D.
    ///
    /// Unlike [`MemoryHierarchy::load`], this never waits: if the line is
    /// already present (or in flight) it returns [`PrefetchResult::Present`];
    /// if no MSHR is free it returns [`PrefetchResult::Dropped`].
    pub fn prefetch(&mut self, cycle: u64, addr: u64, src: PrefetchSource) -> PrefetchResult {
        let line = line_of(addr);
        if self.l1.contains(line) {
            return PrefetchResult::Present;
        }
        // Fault injection: a poisoned prefetch is discarded before it
        // touches the hierarchy — the line simply never arrives. This is
        // timing-only by construction: no fill, no MSHR, no state change.
        if let Some(f) = &mut self.fault {
            if f.poison_prefetch() {
                self.stats.injected_poisons += 1;
                self.stats.prefetch_dropped[src.index()] += 1;
                return PrefetchResult::Dropped;
            }
        }
        if self.mshr.try_alloc(cycle, true).is_none() {
            self.stats.prefetch_dropped[src.index()] += 1;
            return PrefetchResult::Dropped;
        }
        let access = self.access(cycle, addr, AccessClass::Prefetch(src), false);
        PrefetchResult::Issued { complete_at: access.complete_at }
    }

    fn access(&mut self, cycle: u64, addr: u64, class: AccessClass, is_store: bool) -> Access {
        let line = line_of(addr);
        let demand = matches!(class, AccessClass::Demand);
        if demand {
            if is_store {
                self.stats.demand_stores += 1;
            } else {
                self.stats.demand_loads += 1;
            }
            if let Some(f) = &mut self.fault {
                f.note_demand_access(cycle, line);
            }
        }

        // L1 probe.
        if let Some(p) = self.l1.probe(line) {
            if is_store {
                self.l1.mark_dirty(line);
            }
            return if p.ready_at <= cycle {
                if demand {
                    self.note_first_use(line, TimelinessBucket::L1);
                    self.stats.record_demand_level(HitLevel::L1.stats_index());
                }
                Access { complete_at: cycle + self.l1.latency(), level: HitLevel::L1 }
            } else {
                // In flight: merge into the outstanding miss.
                if demand {
                    self.note_first_use(line, TimelinessBucket::OffChip);
                    self.stats.demand_inflight += 1;
                }
                Access { complete_at: p.ready_at, level: HitLevel::InFlight }
            };
        }

        // L1 miss: allocate an MSHR (waiting if the class is saturated).
        let is_prefetch = matches!(class, AccessClass::Prefetch(_));
        let start = self.mshr.alloc_blocking(cycle, is_prefetch);
        let l1_lat = self.l1.latency();

        // L2 probe.
        let (mut complete_at, level) = if let Some(p) = self.l2.probe(line) {
            let ready = (start + l1_lat + self.l2.latency()).max(p.ready_at);
            let level = if p.ready_at > cycle { HitLevel::InFlight } else { HitLevel::L2 };
            (ready, level)
        } else {
            // Past the private levels: probe the shared L3 / DRAM. The
            // borrow is scoped tightly so the L2 backfill below (which may
            // write a dirty victim back *into* the shared L3) re-borrows
            // cleanly.
            let mut sh = self.shared.borrow_mut();
            let l3_lat = sh.l3_latency();
            if let Some(p) = sh.probe_l3(self.core_id, line, demand) {
                let ready = (start + l1_lat + self.l2.latency() + l3_lat).max(p.ready_at);
                drop(sh);
                // Fill L2 on the way up.
                self.fill(Tier::L2, line, ready);
                let level = if p.ready_at > cycle { HitLevel::InFlight } else { HitLevel::L3 };
                (ready, level)
            } else {
                // DRAM.
                let issue = start + l1_lat + self.l2.latency() + l3_lat;
                let mut ready = sh.request_line(self.core_id, issue, line);
                drop(sh);
                if let Some(f) = &mut self.fault {
                    if let Some(extra) = f.dram_delay() {
                        self.stats.injected_delays += 1;
                        ready += extra;
                    }
                }
                let prov = match class {
                    AccessClass::Demand => {
                        self.stats.dram_demand += 1;
                        None
                    }
                    AccessClass::Prefetch(src) => {
                        self.stats.dram_prefetch[src.index()] += 1;
                        Some(src)
                    }
                };
                if self.shared.borrow_mut().fill_l3(self.core_id, line, ready, prov) {
                    self.stats.dram_writebacks += 1;
                }
                self.fill(Tier::L2, line, ready);
                (ready, HitLevel::Mem)
            }
        };

        // Fault injection: a dropped demand response never completes. The
        // fill stays in flight forever, so the requester (and anything
        // merging into the miss) wedges — the core's watchdog reports it.
        if demand {
            if let Some(f) = &mut self.fault {
                if f.drop_demand_response() {
                    self.stats.injected_drops += 1;
                    complete_at = NEVER_COMPLETES;
                }
            }
        }

        // Install into L1 in all miss cases.
        self.fill(Tier::L1, line, complete_at);
        if is_store {
            self.l1.mark_dirty(line);
        }
        self.mshr.commit(start, complete_at, is_prefetch);

        match class {
            AccessClass::Demand => {
                let bucket = match level {
                    HitLevel::L2 => Some(TimelinessBucket::L2),
                    HitLevel::L3 => Some(TimelinessBucket::L3),
                    HitLevel::Mem | HitLevel::InFlight => Some(TimelinessBucket::OffChip),
                    HitLevel::L1 => None,
                };
                if let Some(b) = bucket {
                    self.note_first_use(line, b);
                }
                if level == HitLevel::InFlight {
                    self.stats.demand_inflight += 1;
                } else {
                    self.stats.record_demand_level(level.stats_index());
                }
            }
            AccessClass::Prefetch(src) => {
                // Record provenance for the newly fetched line. A re-fetch
                // of a line that is still pending (fetched before, evicted,
                // never demanded) keeps its original tracking entry so
                // issued = used + unused holds per source.
                if let std::collections::hash_map::Entry::Vacant(e) =
                    self.pending_prefetch.entry(line)
                {
                    e.insert(src);
                    self.stats.prefetch_issued[src.index()] += 1;
                }
            }
        }

        Access { complete_at, level }
    }

    /// Marks the first demand use of a prefetched line into its bucket.
    fn note_first_use(&mut self, line: u64, bucket: TimelinessBucket) {
        if let Some(src) = self.pending_prefetch.remove(&line) {
            self.stats.record_found(src, bucket);
        }
    }

    /// Fill into a *private* level; shared-L3 fills go through
    /// [`SharedLlc::fill_l3`] so provenance and per-core DRAM accounting
    /// stay with the shared state.
    fn fill(&mut self, tier: Tier, line: u64, ready_at: u64) {
        let evicted = match tier {
            Tier::L1 => self.l1.insert(line, false, ready_at),
            Tier::L2 => self.l2.insert(line, false, ready_at),
        };
        if let Some((victim, dirty)) = evicted {
            match tier {
                Tier::L1 => {
                    if dirty {
                        // Write back into L2 (install if absent).
                        if !self.l2.mark_dirty(victim) {
                            self.l2.insert(victim, true, ready_at);
                        }
                    }
                }
                Tier::L2 => {
                    if dirty {
                        self.shared.borrow_mut().writeback_into_l3(victim, ready_at);
                    }
                }
            }
        }
    }

    /// Finalizes end-of-run accounting: any prefetched-but-never-used lines
    /// become `OffChip`/wasted. Call once when simulation ends.
    pub fn finalize(&mut self) {
        for (_, src) in self.pending_prefetch.drain() {
            self.stats.prefetch_unused[src.index()] += 1;
        }
    }

    /// Functional-warming touch: installs `addr`'s line throughout the
    /// hierarchy as if a demand access had long completed, training tags
    /// and LRU without engaging MSHRs, DRAM bandwidth, or demand statistics.
    ///
    /// This is the cache half of SMARTS-style functional warming: the
    /// fast-forward executor streams every architectural access through
    /// here so detailed intervals start from warm cache state. Dirty
    /// evictions cascade down silently (warming models residency, not
    /// writeback bandwidth).
    pub fn warm_touch(&mut self, addr: u64, is_store: bool) {
        let line = line_of(addr);
        if self.l1.probe(line).is_none() {
            if self.l2.probe(line).is_none() {
                let mut sh = self.shared.borrow_mut();
                if !sh.warm_probe_l3(line) {
                    sh.warm_fill_l3(line);
                }
                drop(sh);
                self.warm_fill(Tier::L2, line);
            }
            self.warm_fill(Tier::L1, line);
        }
        if is_store {
            self.l1.mark_dirty(line);
        }
    }

    /// [`MemoryHierarchy::fill`] for warming: `ready_at` is always 0 and
    /// dirty L3 victims vanish without consuming DRAM bandwidth or
    /// writeback statistics.
    fn warm_fill(&mut self, tier: Tier, line: u64) {
        let evicted = match tier {
            Tier::L1 => self.l1.insert(line, false, 0),
            Tier::L2 => self.l2.insert(line, false, 0),
        };
        if let Some((victim, dirty)) = evicted {
            if dirty {
                match tier {
                    Tier::L1 => {
                        if !self.l2.mark_dirty(victim) {
                            self.l2.insert(victim, true, 0);
                        }
                    }
                    Tier::L2 => self.shared.borrow_mut().writeback_into_l3(victim, 0),
                }
            }
        }
    }

    /// Serializes the warm cache state — the three tag arrays, nothing
    /// else — as a magic-prefixed little-endian image for a sampling
    /// checkpoint ([`MemoryHierarchy::from_warm_state`] restores it).
    ///
    /// Only meaningful on a hierarchy whose state comes purely from
    /// functional warming ([`MemoryHierarchy::warm_touch`]): warming
    /// engages no MSHRs, DRAM calendar slots, pending-prefetch tracking,
    /// or statistics, so the tag arrays *are* the whole warm state.
    pub fn warm_state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&WARM_STATE_MAGIC.to_le_bytes());
        self.l1.save_state(&mut out);
        self.l2.save_state(&mut out);
        self.shared.borrow().save_l3(&mut out);
        out
    }

    /// Builds a fresh hierarchy under `cfg` with the warm cache state of a
    /// [`MemoryHierarchy::warm_state_bytes`] image installed: tags, LRU
    /// order, and dirty bits are restored; MSHRs, DRAM, prefetch tracking,
    /// and statistics start empty, exactly as after the functional pass
    /// that produced the image.
    ///
    /// Returns `None` if the image is malformed, was produced under a
    /// different cache geometry, or carries trailing bytes.
    pub fn from_warm_state(cfg: HierarchyConfig, b: &[u8]) -> Option<Self> {
        let mut h = MemoryHierarchy::new(cfg);
        let mut off = 0usize;
        let magic = u32::from_le_bytes(b.get(..4)?.try_into().ok()?);
        if magic != WARM_STATE_MAGIC {
            return None;
        }
        off += 4;
        h.l1.load_state(b, &mut off)?;
        h.l2.load_state(b, &mut off)?;
        h.shared.borrow_mut().load_l3(b, &mut off)?;
        if off != b.len() {
            return None;
        }
        Some(h)
    }

    /// Drains all in-flight timing state at a sampling interval boundary:
    /// cache fills settle ([`Cache::quiesce`]), outstanding MSHRs release
    /// ([`MshrFile::quiesce`]), and the DRAM calendar empties
    /// ([`Dram::quiesce`]).
    ///
    /// Each detailed interval runs on a fresh core whose cycle counter
    /// restarts at 0, while the hierarchy's timestamps are absolute cycles
    /// of the previous interval's clock; without this drain, stale
    /// far-future completion times would wedge the next interval. Warm
    /// state (tags, LRU, dirty bits, prefetch provenance) and all
    /// cumulative statistics survive.
    pub fn quiesce(&mut self) {
        self.l1.quiesce();
        self.l2.quiesce();
        self.mshr.quiesce();
        // Sampling drives one core per simulated machine, so draining the
        // shared L3/DRAM here drains state only this core produced.
        self.shared.borrow_mut().quiesce();
    }

    /// Read-only invariant sweep for the `--sanitize` mode: MSHR
    /// allocate/release balance every call, plus the per-set cache scans
    /// ([`Cache::check_invariants`]) when `deep` is set — those walk every
    /// way, so the core amortizes them over thousands of cycles. Taking
    /// `&self` guarantees the check cannot perturb timing.
    pub fn check_invariants(&self, cycle: u64, deep: bool) -> Vec<String> {
        let mut out = self.mshr.check_invariants(cycle);
        if deep {
            for (name, cache) in [("L1", &self.l1), ("L2", &self.l2)] {
                out.extend(cache.check_invariants().into_iter().map(|m| format!("{name} {m}")));
            }
            // The shared sweep covers the L3 tag array plus the shared-LLC
            // provenance-residency rule.
            let sh = self.shared.borrow();
            out.extend(sh.check_invariants().into_iter().map(|m| format!("L3 {m}")));
        }
        out
    }

    /// Direct read access to the L1-D (tests, diagnostics).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// Direct read access to the L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Direct read access to the (shared) L3.
    pub fn l3(&self) -> Ref<'_, Cache> {
        Ref::map(self.shared.borrow(), SharedLlc::l3)
    }
}

/// Private cache levels; the L3 lives in [`SharedLlc`].
#[derive(Clone, Copy, Debug)]
enum Tier {
    L1,
    L2,
}

/// `"DVRH"`: magic prefix of a warm-hierarchy image
/// ([`MemoryHierarchy::warm_state_bytes`]).
pub const WARM_STATE_MAGIC: u32 = 0x4456_5248;

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_l1() {
        let mut m = hier();
        let a = m.load(0, 0x1234, AccessClass::Demand);
        assert_eq!(a.level, HitLevel::Mem);
        // l1(4) + l2(8) + l3(30) = 42, aligned up to the 45-cycle DRAM
        // slot, + 200 DRAM latency.
        assert_eq!(a.complete_at, 245);
        let b = m.load(300, 0x1234, AccessClass::Demand);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(b.complete_at, 304);
    }

    #[test]
    fn inflight_access_merges() {
        let mut m = hier();
        let a = m.load(0, 0x1234, AccessClass::Demand);
        let b = m.load(10, 0x1234, AccessClass::Demand);
        assert_eq!(b.level, HitLevel::InFlight);
        assert_eq!(b.complete_at, a.complete_at);
        assert_eq!(m.stats().demand_inflight, 1);
    }

    #[test]
    fn same_line_different_addr_hits() {
        let mut m = hier();
        let a = m.load(0, 0x1000, AccessClass::Demand);
        let b = m.load(a.complete_at, 0x1038, AccessClass::Demand); // same 64B line
        assert_eq!(b.level, HitLevel::L1);
    }

    #[test]
    fn prefetch_then_demand_hits_l1_and_buckets() {
        let mut m = hier();
        match m.prefetch(0, 0x2000, PrefetchSource::Dvr) {
            PrefetchResult::Issued { complete_at } => {
                let a = m.load(complete_at + 1, 0x2000, AccessClass::Demand);
                assert_eq!(a.level, HitLevel::L1);
            }
            other => panic!("expected Issued, got {other:?}"),
        }
        m.finalize();
        let t = m.stats().timeliness(PrefetchSource::Dvr).unwrap();
        assert_eq!(t[0], 1.0);
        assert_eq!(m.stats().accuracy(PrefetchSource::Dvr), Some(1.0));
    }

    #[test]
    fn early_demand_on_prefetched_line_counts_offchip() {
        let mut m = hier();
        let PrefetchResult::Issued { complete_at } = m.prefetch(0, 0x2000, PrefetchSource::Vr)
        else {
            panic!("expected Issued");
        };
        // Demand arrives while the prefetch is still in flight.
        let a = m.load(5, 0x2000, AccessClass::Demand);
        assert_eq!(a.level, HitLevel::InFlight);
        assert_eq!(a.complete_at, complete_at);
        m.finalize();
        let t = m.stats().timeliness(PrefetchSource::Vr).unwrap();
        assert_eq!(t[3], 1.0); // off-chip bucket
    }

    #[test]
    fn unused_prefetch_is_wasted() {
        let mut m = hier();
        m.prefetch(0, 0x2000, PrefetchSource::Vr);
        m.finalize();
        assert_eq!(m.stats().wasted(PrefetchSource::Vr), 1);
        assert_eq!(m.stats().accuracy(PrefetchSource::Vr), Some(0.0));
    }

    #[test]
    fn prefetch_to_present_line_is_a_noop() {
        let mut m = hier();
        let a = m.load(0, 0x2000, AccessClass::Demand);
        let r = m.prefetch(a.complete_at, 0x2000, PrefetchSource::Stride);
        assert_eq!(r, PrefetchResult::Present);
        assert_eq!(m.stats().prefetch_issued[PrefetchSource::Stride.index()], 0);
    }

    #[test]
    fn prefetch_drops_when_mshrs_full() {
        let cfg = HierarchyConfig { mshrs: 2, ..HierarchyConfig::default() };
        let mut m = MemoryHierarchy::new(cfg);
        m.load(0, 0x10_000, AccessClass::Demand);
        m.load(0, 0x20_000, AccessClass::Demand);
        let r = m.prefetch(0, 0x30_000, PrefetchSource::Stride);
        assert_eq!(r, PrefetchResult::Dropped);
        assert_eq!(m.stats().prefetch_dropped[PrefetchSource::Stride.index()], 1);
    }

    #[test]
    fn demand_waits_for_mshr_when_full() {
        let cfg = HierarchyConfig { mshrs: 1, ..HierarchyConfig::default() };
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.load(0, 0x10_000, AccessClass::Demand);
        let b = m.load(0, 0x20_000, AccessClass::Demand);
        assert!(b.complete_at >= a.complete_at, "second miss serialized behind the MSHR");
    }

    #[test]
    fn dram_bandwidth_contends_across_misses() {
        let mut m = hier();
        let a = m.load(0, 0x10_000, AccessClass::Demand);
        let b = m.load(0, 0x20_000, AccessClass::Demand);
        assert_eq!(b.complete_at, a.complete_at + 5);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = hier();
        // Fill more than the L1 (32KB = 512 lines) with distinct lines.
        let mut t = 0;
        for i in 0..1024u64 {
            let a = m.load(t, i * 64 * 1024, AccessClass::Demand); // distinct sets? use big stride
            t = a.complete_at;
        }
        // Re-touch the first line: should be L2 or L3 (or Mem), not L1.
        let a = m.load(t, 0, AccessClass::Demand);
        assert_ne!(a.level, HitLevel::L1);
    }

    #[test]
    fn runahead_dram_traffic_is_attributed() {
        let mut m = hier();
        m.load(0, 0x90_000, AccessClass::Prefetch(PrefetchSource::Dvr));
        assert_eq!(m.stats().dram_runahead(), 1);
        assert_eq!(m.stats().dram_demand, 0);
    }

    #[test]
    fn injected_drop_never_completes() {
        let fault = Some(crate::FaultConfig::seeded(1).with_drop(1));
        let mut m = MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        let a = m.load(0, 0x1234, AccessClass::Demand);
        assert_eq!(a.complete_at, super::NEVER_COMPLETES);
        assert_eq!(m.stats().injected_drops, 1);
        // A merge into the dropped miss inherits the never-completing fill.
        let b = m.load(10, 0x1234, AccessClass::Demand);
        assert_eq!(b.level, HitLevel::InFlight);
        assert_eq!(b.complete_at, super::NEVER_COMPLETES);
    }

    #[test]
    fn injected_delay_adds_exactly_the_configured_cycles() {
        let fault = Some(crate::FaultConfig::seeded(1).with_delay(1, 777));
        let mut m = MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        let a = m.load(0, 0x1234, AccessClass::Demand);
        let clean = hier().load(0, 0x1234, AccessClass::Demand);
        assert_eq!(a.complete_at, clean.complete_at + 777);
        assert_eq!(m.stats().injected_delays, 1);
    }

    #[test]
    fn poisoned_prefetch_is_discarded_without_side_effects() {
        let fault = Some(crate::FaultConfig::seeded(1).with_poison(1));
        let mut m = MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        let r = m.prefetch(0, 0x2000, PrefetchSource::Dvr);
        assert_eq!(r, PrefetchResult::Dropped);
        assert_eq!(m.stats().injected_poisons, 1);
        assert_eq!(m.stats().prefetch_issued[PrefetchSource::Dvr.index()], 0);
        assert_eq!(m.mshrs_in_use(0), 0, "poison must not hold an MSHR");
        // The demand path is untouched: the line misses to DRAM as if the
        // prefetch had never been issued.
        let a = m.load(0, 0x2000, AccessClass::Demand);
        let clean = hier().load(0, 0x2000, AccessClass::Demand);
        assert_eq!(a.complete_at, clean.complete_at);
        assert_eq!(a.level, HitLevel::Mem);
    }

    #[test]
    fn fatal_fault_arms_on_the_nth_demand_access_and_fires_once() {
        let fault = Some(crate::FaultConfig::seeded(1).with_fatal_at(2));
        let mut m = MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        m.load(5, 0x1000, AccessClass::Demand);
        assert!(m.take_fault().is_none());
        m.load(9, 0x2000, AccessClass::Demand);
        let ev = m.take_fault().expect("2nd demand access arms the fault");
        assert_eq!(ev.cycle, 9);
        assert_eq!(ev.line, crate::line_of(0x2000));
        assert_eq!(m.stats().injected_fatal, 1);
        assert!(m.take_fault().is_none());
    }

    #[test]
    fn invariant_sweep_is_clean_after_traffic() {
        let mut m = hier();
        let mut t = 0;
        for i in 0..2048u64 {
            let a = m.load(t, i * 4096, AccessClass::Demand);
            m.prefetch(t, i * 4096 + 64, PrefetchSource::Stride);
            t = a.complete_at;
        }
        assert!(m.check_invariants(t, true).is_empty());
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut m = hier();
        let a = m.store(0, 0x5000, AccessClass::Demand);
        assert_eq!(a.level, HitLevel::Mem);
        assert_eq!(m.stats().demand_stores, 1);
        let b = m.store(a.complete_at, 0x5000, AccessClass::Demand);
        assert_eq!(b.level, HitLevel::L1);
    }

    #[test]
    fn warm_touch_installs_without_stats_or_mshrs() {
        let mut m = hier();
        m.warm_touch(0x7000, false);
        m.warm_touch(0x8000, true);
        assert!(m.l1().contains(crate::line_of(0x7000)));
        assert!(m.l3().contains(crate::line_of(0x8000)));
        assert_eq!(m.stats().demand_loads, 0);
        assert_eq!(m.stats().demand_stores, 0);
        assert_eq!(m.stats().dram_demand, 0);
        assert_eq!(m.mshrs_in_use(0), 0);
        assert_eq!(m.mshr_busy_integral(), 0);
        assert_eq!(m.dram_calendar_depth(), 0);
        // A warmed line hits in the L1 at cycle 0 — no residual latency.
        let a = m.load(0, 0x7000, AccessClass::Demand);
        assert_eq!(a.level, HitLevel::L1);
    }

    #[test]
    fn warm_eviction_cascades_without_dram_writebacks() {
        let mut m = hier();
        // Dirty a line, then stream enough distinct lines through warming
        // to evict it from every level.
        m.warm_touch(0, true);
        for i in 1..200_000u64 {
            m.warm_touch(i * 64, false);
        }
        assert_eq!(m.stats().dram_writebacks, 0);
        assert!(m.check_invariants(0, true).is_empty());
    }

    #[test]
    fn warm_state_roundtrips_and_behaves_identically() {
        let mut m = hier();
        // A mix of loads and stores with enough distinct lines for evictions.
        for i in 0..40_000u64 {
            m.warm_touch(i * 192, i % 7 == 0);
        }
        let bytes = m.warm_state_bytes();
        let mut r = MemoryHierarchy::from_warm_state(HierarchyConfig::default(), &bytes)
            .expect("warm image restores");
        // Identical residency and a byte-identical re-serialization.
        assert_eq!(r.l1().resident_lines(), m.l1().resident_lines());
        assert_eq!(r.l3().resident_lines(), m.l3().resident_lines());
        assert_eq!(r.warm_state_bytes(), bytes);
        // Restored hierarchy starts with clean dynamic state...
        assert_eq!(r.stats().demand_loads, 0);
        assert_eq!(r.mshr_busy_integral(), 0);
        assert_eq!(r.dram_calendar_depth(), 0);
        // ...and identical demand behavior from the warm tags.
        let a = m.load(0, 999 * 192, AccessClass::Demand);
        let b = r.load(0, 999 * 192, AccessClass::Demand);
        assert_eq!((a.level, a.complete_at), (b.level, b.complete_at));
        assert!(r.check_invariants(0, true).is_empty());
    }

    #[test]
    fn warm_state_rejects_corrupt_and_mismatched_images() {
        let mut m = hier();
        m.warm_touch(0x4000, true);
        let bytes = m.warm_state_bytes();
        assert!(MemoryHierarchy::from_warm_state(HierarchyConfig::default(), &bytes[1..]).is_none());
        let mut truncated = bytes.clone();
        truncated.pop();
        assert!(MemoryHierarchy::from_warm_state(HierarchyConfig::default(), &truncated).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(MemoryHierarchy::from_warm_state(HierarchyConfig::default(), &trailing).is_none());
        // A smaller geometry makes the saved way indices out of range.
        let tiny = HierarchyConfig {
            l1: CacheConfig { size_bytes: 4 * crate::LINE_BYTES, assoc: 1, latency: 1 },
            l2: CacheConfig { size_bytes: 8 * crate::LINE_BYTES, assoc: 1, latency: 2 },
            l3: CacheConfig { size_bytes: 16 * crate::LINE_BYTES, assoc: 1, latency: 3 },
            ..HierarchyConfig::default()
        };
        let mut big = hier();
        for i in 0..100_000u64 {
            big.warm_touch(i * 64, false);
        }
        assert!(MemoryHierarchy::from_warm_state(tiny, &big.warm_state_bytes()).is_none());
    }

    #[test]
    fn quiesce_settles_inflight_state_but_keeps_residency() {
        let mut m = hier();
        let a = m.load(0, 0x9000, AccessClass::Demand);
        assert!(a.complete_at > 0);
        assert!(m.mshrs_in_use(1) > 0);
        assert!(m.dram_calendar_depth() > 0);
        m.quiesce();
        assert_eq!(m.mshrs_in_use(1), 0);
        assert_eq!(m.dram_calendar_depth(), 0);
        // The line is still resident and now instantly ready: a new clock
        // starting at cycle 0 sees an L1 hit, not an in-flight merge.
        let b = m.load(0, 0x9000, AccessClass::Demand);
        assert_eq!(b.level, HitLevel::L1);
        assert!(m.check_invariants(0, true).is_empty());
    }
}
