//! A set-associative, LRU, write-back cache tag array.

use crate::LINE_BYTES;

/// Geometry and access latency of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Lookup latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole power-of-two sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / LINE_BYTES;
        let sets = lines as usize / self.assoc;
        assert!(sets > 0 && sets.is_power_of_two(), "cache sets must be a power of two");
        sets
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
    /// Cycle at which the fill completes; before this, the line is
    /// "in flight" (its MSHR is outstanding).
    ready_at: u64,
}

/// The result of probing a cache for a line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Probe {
    /// Cycle the data is available (fills still in flight report the fill
    /// completion time).
    pub ready_at: u64,
}

/// A single cache level: a set-associative LRU tag array with per-line
/// dirty and in-flight (fill completion) state.
///
/// This is a *tag-only* model: data values live in the functional
/// [`sim_isa::SparseMemory`]; the cache decides latencies.
///
/// # Example
///
/// ```
/// use sim_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 32 * 1024, assoc: 8, latency: 4 });
/// assert!(!c.contains(42));
/// c.insert(42, false, 0);
/// assert!(c.contains(42));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    ways: Vec<Way>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache { cfg, sets, ways: vec![Way::default(); sets * cfg.assoc], tick: 0 }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line as usize) & (self.sets - 1);
        let start = set * self.cfg.assoc;
        start..start + self.cfg.assoc
    }

    /// Whether the line is present (regardless of in-flight state).
    pub fn contains(&self, line: u64) -> bool {
        self.ways[self.set_range(line)].iter().any(|w| w.valid && w.tag == line)
    }

    /// Probes for `line`; on hit, refreshes LRU and returns its readiness.
    pub(crate) fn probe(&mut self, line: u64) -> Option<Probe> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.lru = tick;
                return Some(Probe { ready_at: w.ready_at });
            }
        }
        None
    }

    /// Marks a present line dirty (no-op if absent). Returns whether the
    /// line was found.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Inserts `line` (refreshing it if already present), evicting the LRU
    /// way if the set is full.
    ///
    /// Returns the evicted line as `(line, dirty)` if a valid line was
    /// displaced.
    pub fn insert(&mut self, line: u64, dirty: bool, ready_at: u64) -> Option<(u64, bool)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Refresh if already present.
        for w in &mut self.ways[range.clone()] {
            if w.valid && w.tag == line {
                w.lru = tick;
                w.dirty |= dirty;
                w.ready_at = w.ready_at.min(ready_at);
                return None;
            }
        }
        // Choose an invalid way, else the LRU way.
        let ways = &mut self.ways[range];
        let victim = match ways.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let mut best = 0;
                for (i, w) in ways.iter().enumerate() {
                    if w.lru < ways[best].lru {
                        best = i;
                    }
                }
                best
            }
        };
        let evicted =
            if ways[victim].valid { Some((ways[victim].tag, ways[victim].dirty)) } else { None };
        ways[victim] = Way { tag: line, valid: true, dirty, lru: tick, ready_at };
        evicted
    }

    /// Invalidates `line` if present; returns `(was_present, was_dirty)`.
    pub fn invalidate(&mut self, line: u64) -> (bool, bool) {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line {
                w.valid = false;
                return (true, w.dirty);
            }
        }
        (false, false)
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Settles all in-flight fills: clamps every valid line's readiness to
    /// cycle 0, as if all outstanding fills had completed.
    ///
    /// Used at sampling interval boundaries, where the next detailed core
    /// restarts its cycle counter at 0 while resident lines still carry
    /// absolute `ready_at` stamps from the previous interval's clock.
    pub fn quiesce(&mut self) {
        for w in &mut self.ways {
            if w.valid {
                w.ready_at = 0;
            }
        }
    }

    /// Serializes the tag array into `out`: the probe tick followed by
    /// every valid way as `(way index, tag, LRU stamp, dirty flag)`, all
    /// little-endian. In-flight state (`ready_at`) is deliberately *not*
    /// captured — warm images are taken from functional warming, where all
    /// fills complete instantly, and restore targets a core whose cycle
    /// counter restarts at 0 (see [`Cache::quiesce`]).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.tick.to_le_bytes());
        let valid = self.ways.iter().filter(|w| w.valid).count() as u64;
        out.extend_from_slice(&valid.to_le_bytes());
        for (i, w) in self.ways.iter().enumerate() {
            if w.valid {
                out.extend_from_slice(&(i as u32).to_le_bytes());
                out.extend_from_slice(&w.tag.to_le_bytes());
                out.extend_from_slice(&w.lru.to_le_bytes());
                out.push(w.dirty as u8);
            }
        }
    }

    /// Restores a [`Cache::save_state`] image into this cache, consuming
    /// bytes from `b` starting at `*off` and advancing it past the image.
    ///
    /// Returns `None` (leaving the cache in an unspecified state) if the
    /// image is truncated, a way index is out of range for this geometry,
    /// or a flag byte is malformed.
    pub fn load_state(&mut self, b: &[u8], off: &mut usize) -> Option<()> {
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = b.get(*off..*off + n)?;
            *off += n;
            Some(s)
        };
        self.tick = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let valid = u64::from_le_bytes(take(8)?.try_into().ok()?);
        for w in &mut self.ways {
            *w = Way::default();
        }
        for _ in 0..valid {
            let idx = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
            let tag = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let lru = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let dirty = match take(1)?[0] {
                0 => false,
                1 => true,
                _ => return None,
            };
            if idx >= self.ways.len() {
                return None;
            }
            self.ways[idx] = Way { tag, valid: true, dirty, lru, ready_at: 0 };
        }
        Some(())
    }

    /// Read-only structural self-check for the `--sanitize` mode: every
    /// valid line must map to the set holding it, a set must not hold the
    /// same line twice, and LRU stamps can never run ahead of the probe
    /// tick. Returns one message per violated invariant.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        for set in 0..self.sets {
            let ways = &self.ways[set * self.cfg.assoc..(set + 1) * self.cfg.assoc];
            for (i, w) in ways.iter().enumerate() {
                if !w.valid {
                    continue;
                }
                if (w.tag as usize) & (self.sets - 1) != set {
                    out.push(format!("cache: line {} resident in wrong set {set}", w.tag));
                }
                if w.lru > self.tick {
                    out.push(format!(
                        "cache: line {} LRU stamp {} ahead of tick {}",
                        w.tag, w.lru, self.tick
                    ));
                }
                if ways[..i].iter().any(|o| o.valid && o.tag == w.tag) {
                    out.push(format!("cache: line {} duplicated in set {set}", w.tag));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig { size_bytes: 8 * LINE_BYTES, assoc: 2, latency: 4 })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
    }

    #[test]
    fn insert_then_hit() {
        let mut c = tiny();
        assert!(c.probe(5).is_none());
        c.insert(5, false, 10);
        let p = c.probe(5).unwrap();
        assert_eq!(p.ready_at, 10);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0, false, 0);
        c.insert(4, false, 0);
        // Touch 0 so 4 becomes LRU.
        c.probe(0);
        let evicted = c.insert(8, false, 0);
        assert_eq!(evicted, Some((4, false)));
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = tiny();
        c.insert(0, false, 0);
        assert!(c.mark_dirty(0));
        c.insert(4, false, 0);
        let evicted = c.insert(8, false, 0);
        assert_eq!(evicted, Some((0, true)));
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut c = tiny();
        c.insert(3, false, 0);
        assert!(c.insert(3, true, 0).is_none());
        assert_eq!(c.resident_lines(), 1);
        // Now dirty because of the second insert.
        let (present, dirty) = c.invalidate(3);
        assert!(present && dirty);
    }

    #[test]
    fn invalidate_missing_line() {
        let mut c = tiny();
        assert_eq!(c.invalidate(99), (false, false));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 3 * LINE_BYTES, assoc: 1, latency: 1 });
    }
}
