//! Memory-system statistics backing Figures 9, 10, and 11.

use crate::hierarchy::PrefetchSource;

/// Where the main thread eventually found a prefetched line — the buckets of
/// the paper's timeliness plot (Figure 11).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimelinessBucket {
    /// Found ready in the L1-D.
    L1,
    /// Evicted to (and found in) the L2.
    L2,
    /// Evicted to (and found in) the L3.
    L3,
    /// Still in flight from memory, refetched from DRAM, or never used
    /// (an inaccurate prefetch).
    OffChip,
}

impl TimelinessBucket {
    /// All buckets, in Figure 11 order.
    pub const ALL: [TimelinessBucket; 4] = [
        TimelinessBucket::L1,
        TimelinessBucket::L2,
        TimelinessBucket::L3,
        TimelinessBucket::OffChip,
    ];

    fn index(self) -> usize {
        match self {
            TimelinessBucket::L1 => 0,
            TimelinessBucket::L2 => 1,
            TimelinessBucket::L3 => 2,
            TimelinessBucket::OffChip => 3,
        }
    }
}

const SOURCES: usize = PrefetchSource::COUNT;

/// Counters accumulated by [`MemoryHierarchy`](crate::MemoryHierarchy).
///
/// All counts are events, not rates; the harness divides by cycles or
/// instructions as the figures require.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Demand loads issued.
    pub demand_loads: u64,
    /// Demand stores issued.
    pub demand_stores: u64,
    /// Demand accesses that hit ready in L1/L2/L3 or missed to memory:
    /// indices 0..4 = L1, L2, L3, Mem.
    pub demand_hits: [u64; 4],
    /// Demand accesses that found the line still in flight (MSHR merge).
    pub demand_inflight: u64,
    /// Sum over demand loads of `(complete_at - request_cycle)` — divide by
    /// `demand_loads` for the average load latency the main thread saw.
    pub demand_latency_sum: u64,
    /// DRAM line reads triggered by demand accesses.
    pub dram_demand: u64,
    /// DRAM line reads triggered by each prefetch source.
    pub dram_prefetch: [u64; SOURCES],
    /// DRAM writebacks of dirty lines.
    pub dram_writebacks: u64,
    /// Prefetches issued per source (that actually fetched a missing line).
    pub prefetch_issued: [u64; SOURCES],
    /// Prefetches dropped per source (no free MSHR).
    pub prefetch_dropped: [u64; SOURCES],
    /// First demand touch of a prefetched line, bucketed per Figure 11.
    pub prefetch_found: [[u64; 4]; SOURCES],
    /// Prefetched lines never demanded before the end of the run
    /// (finalized into `OffChip` by [`MemStats::wasted`]).
    pub prefetch_unused: [u64; SOURCES],
    /// Injected faults: demand responses dropped (never complete).
    pub injected_drops: u64,
    /// Injected faults: DRAM reads delayed.
    pub injected_delays: u64,
    /// Injected faults: prefetches poisoned (discarded).
    pub injected_poisons: u64,
    /// Injected faults: fatal events delivered to the core.
    pub injected_fatal: u64,
}

impl MemStats {
    /// Average latency observed by demand loads, in cycles.
    pub fn avg_demand_latency(&self) -> f64 {
        if self.demand_loads == 0 {
            0.0
        } else {
            self.demand_latency_sum as f64 / self.demand_loads as f64
        }
    }

    /// Total DRAM line reads (demand + all prefetch sources).
    pub fn dram_reads(&self) -> u64 {
        self.dram_demand + self.dram_prefetch.iter().sum::<u64>()
    }

    /// DRAM reads attributable to runahead engines (PRE/VR/DVR), the
    /// "runahead mode" slice of Figure 10.
    pub fn dram_runahead(&self) -> u64 {
        PrefetchSource::ALL
            .iter()
            .filter(|s| s.is_runahead())
            .map(|s| self.dram_prefetch[s.index()])
            .sum()
    }

    /// Records a demand hit at a level index (0=L1..3=Mem).
    pub(crate) fn record_demand_level(&mut self, level_idx: usize) {
        self.demand_hits[level_idx] += 1;
    }

    /// Records where a prefetched line was found on first use.
    pub(crate) fn record_found(&mut self, src: PrefetchSource, bucket: TimelinessBucket) {
        self.prefetch_found[src.index()][bucket.index()] += 1;
    }

    /// Prefetches per source that were issued but never used.
    pub fn wasted(&self, src: PrefetchSource) -> u64 {
        self.prefetch_unused[src.index()]
    }

    /// Timeliness fractions for a source in Figure 11 order
    /// (L1, L2, L3, off-chip), where off-chip includes unused prefetches.
    ///
    /// Returns `None` if the source issued no prefetches.
    pub fn timeliness(&self, src: PrefetchSource) -> Option<[f64; 4]> {
        let i = src.index();
        let found = self.prefetch_found[i];
        let total: u64 = found.iter().sum::<u64>() + self.prefetch_unused[i];
        if total == 0 {
            return None;
        }
        let t = total as f64;
        Some([
            found[0] as f64 / t,
            found[1] as f64 / t,
            found[2] as f64 / t,
            (found[3] + self.prefetch_unused[i]) as f64 / t,
        ])
    }

    /// Fraction of issued prefetches that were eventually used (accuracy).
    pub fn accuracy(&self, src: PrefetchSource) -> Option<f64> {
        let i = src.index();
        let used: u64 = self.prefetch_found[i].iter().sum();
        let total = used + self.prefetch_unused[i];
        if total == 0 {
            None
        } else {
            Some(used as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeliness_fractions_sum_to_one() {
        let mut s = MemStats::default();
        let src = PrefetchSource::Dvr;
        s.record_found(src, TimelinessBucket::L1);
        s.record_found(src, TimelinessBucket::L1);
        s.record_found(src, TimelinessBucket::L3);
        s.prefetch_unused[src.index()] = 1;
        let t = s.timeliness(src).unwrap();
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_source_reports_none() {
        let s = MemStats::default();
        assert!(s.timeliness(PrefetchSource::Stride).is_none());
        assert!(s.accuracy(PrefetchSource::Stride).is_none());
    }

    #[test]
    fn runahead_traffic_excludes_hw_prefetchers() {
        let mut s = MemStats::default();
        s.dram_prefetch[PrefetchSource::Stride.index()] = 5;
        s.dram_prefetch[PrefetchSource::Dvr.index()] = 7;
        s.dram_prefetch[PrefetchSource::Vr.index()] = 2;
        s.dram_demand = 100;
        assert_eq!(s.dram_runahead(), 9);
        assert_eq!(s.dram_reads(), 114);
    }
}
