//! Memory-system statistics backing Figures 9, 10, and 11.

use crate::hierarchy::PrefetchSource;

/// Where the main thread eventually found a prefetched line — the buckets of
/// the paper's timeliness plot (Figure 11).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimelinessBucket {
    /// Found ready in the L1-D.
    L1,
    /// Evicted to (and found in) the L2.
    L2,
    /// Evicted to (and found in) the L3.
    L3,
    /// Still in flight from memory, refetched from DRAM, or never used
    /// (an inaccurate prefetch).
    OffChip,
}

impl TimelinessBucket {
    /// All buckets, in Figure 11 order.
    pub const ALL: [TimelinessBucket; 4] = [
        TimelinessBucket::L1,
        TimelinessBucket::L2,
        TimelinessBucket::L3,
        TimelinessBucket::OffChip,
    ];

    fn index(self) -> usize {
        match self {
            TimelinessBucket::L1 => 0,
            TimelinessBucket::L2 => 1,
            TimelinessBucket::L3 => 2,
            TimelinessBucket::OffChip => 3,
        }
    }
}

const SOURCES: usize = PrefetchSource::COUNT;

/// Counters accumulated by [`MemoryHierarchy`](crate::MemoryHierarchy).
///
/// All counts are events, not rates; the harness divides by cycles or
/// instructions as the figures require.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Demand loads issued.
    pub demand_loads: u64,
    /// Demand stores issued.
    pub demand_stores: u64,
    /// Demand accesses that hit ready in L1/L2/L3 or missed to memory:
    /// indices 0..4 = L1, L2, L3, Mem.
    pub demand_hits: [u64; 4],
    /// Demand accesses that found the line still in flight (MSHR merge).
    pub demand_inflight: u64,
    /// Sum over demand loads of `(complete_at - request_cycle)` — divide by
    /// `demand_loads` for the average load latency the main thread saw.
    pub demand_latency_sum: u64,
    /// DRAM line reads triggered by demand accesses.
    pub dram_demand: u64,
    /// DRAM line reads triggered by each prefetch source.
    pub dram_prefetch: [u64; SOURCES],
    /// DRAM writebacks of dirty lines.
    pub dram_writebacks: u64,
    /// Prefetches issued per source (that actually fetched a missing line).
    pub prefetch_issued: [u64; SOURCES],
    /// Prefetches dropped per source (no free MSHR).
    pub prefetch_dropped: [u64; SOURCES],
    /// First demand touch of a prefetched line, bucketed per Figure 11.
    pub prefetch_found: [[u64; 4]; SOURCES],
    /// Prefetched lines never demanded before the end of the run
    /// (finalized into `OffChip` by [`MemStats::wasted`]).
    pub prefetch_unused: [u64; SOURCES],
    /// Injected faults: demand responses dropped (never complete).
    pub injected_drops: u64,
    /// Injected faults: DRAM reads delayed.
    pub injected_delays: u64,
    /// Injected faults: prefetches poisoned (discarded).
    pub injected_poisons: u64,
    /// Injected faults: fatal events delivered to the core.
    pub injected_fatal: u64,
}

impl MemStats {
    /// Length of the [`MemStats::to_flat`] encoding.
    pub const FLAT_LEN: usize = 14 + 8 * SOURCES;

    /// Flattens every counter into a fixed-order `u64` array — the wire
    /// format of the sample-worker protocol and the basis of
    /// [`MemStats::accumulate`]. All counters are event counts, so the
    /// encoding is lossless and summable.
    pub fn to_flat(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(Self::FLAT_LEN);
        v.extend([self.demand_loads, self.demand_stores]);
        v.extend(self.demand_hits);
        v.extend([self.demand_inflight, self.demand_latency_sum, self.dram_demand]);
        v.extend(self.dram_prefetch);
        v.push(self.dram_writebacks);
        v.extend(self.prefetch_issued);
        v.extend(self.prefetch_dropped);
        v.extend(self.prefetch_found.iter().flatten());
        v.extend(self.prefetch_unused);
        v.extend([
            self.injected_drops,
            self.injected_delays,
            self.injected_poisons,
            self.injected_fatal,
        ]);
        debug_assert_eq!(v.len(), Self::FLAT_LEN);
        v
    }

    /// Rebuilds a `MemStats` from a [`MemStats::to_flat`] array; `None` if
    /// the length is wrong.
    pub fn from_flat(v: &[u64]) -> Option<Self> {
        if v.len() != Self::FLAT_LEN {
            return None;
        }
        let mut it = v.iter().copied();
        let mut next = || it.next().expect("length checked");
        let mut s = MemStats { demand_loads: next(), demand_stores: next(), ..MemStats::default() };
        s.demand_hits = std::array::from_fn(|_| next());
        s.demand_inflight = next();
        s.demand_latency_sum = next();
        s.dram_demand = next();
        s.dram_prefetch = std::array::from_fn(|_| next());
        s.dram_writebacks = next();
        s.prefetch_issued = std::array::from_fn(|_| next());
        s.prefetch_dropped = std::array::from_fn(|_| next());
        s.prefetch_found = std::array::from_fn(|_| std::array::from_fn(|_| next()));
        s.prefetch_unused = std::array::from_fn(|_| next());
        s.injected_drops = next();
        s.injected_delays = next();
        s.injected_poisons = next();
        s.injected_fatal = next();
        Some(s)
    }

    /// Adds every counter of `other` into `self` — merging the per-period
    /// statistics of independently measured sampling intervals.
    pub fn accumulate(&mut self, other: &MemStats) {
        let sum: Vec<u64> =
            self.to_flat().iter().zip(other.to_flat()).map(|(a, b)| a + b).collect();
        *self = MemStats::from_flat(&sum).expect("same length by construction");
    }

    /// Average latency observed by demand loads, in cycles.
    pub fn avg_demand_latency(&self) -> f64 {
        if self.demand_loads == 0 {
            0.0
        } else {
            self.demand_latency_sum as f64 / self.demand_loads as f64
        }
    }

    /// Total DRAM line reads (demand + all prefetch sources).
    pub fn dram_reads(&self) -> u64 {
        self.dram_demand + self.dram_prefetch.iter().sum::<u64>()
    }

    /// DRAM reads attributable to runahead engines (PRE/VR/DVR), the
    /// "runahead mode" slice of Figure 10.
    pub fn dram_runahead(&self) -> u64 {
        PrefetchSource::ALL
            .iter()
            .filter(|s| s.is_runahead())
            .map(|s| self.dram_prefetch[s.index()])
            .sum()
    }

    /// Records a demand hit at a level index (0=L1..3=Mem).
    pub(crate) fn record_demand_level(&mut self, level_idx: usize) {
        self.demand_hits[level_idx] += 1;
    }

    /// Records where a prefetched line was found on first use.
    pub(crate) fn record_found(&mut self, src: PrefetchSource, bucket: TimelinessBucket) {
        self.prefetch_found[src.index()][bucket.index()] += 1;
    }

    /// Prefetches per source that were issued but never used.
    pub fn wasted(&self, src: PrefetchSource) -> u64 {
        self.prefetch_unused[src.index()]
    }

    /// Timeliness fractions for a source in Figure 11 order
    /// (L1, L2, L3, off-chip), where off-chip includes unused prefetches.
    ///
    /// Returns `None` if the source issued no prefetches.
    pub fn timeliness(&self, src: PrefetchSource) -> Option<[f64; 4]> {
        let i = src.index();
        let found = self.prefetch_found[i];
        let total: u64 = found.iter().sum::<u64>() + self.prefetch_unused[i];
        if total == 0 {
            return None;
        }
        let t = total as f64;
        Some([
            found[0] as f64 / t,
            found[1] as f64 / t,
            found[2] as f64 / t,
            (found[3] + self.prefetch_unused[i]) as f64 / t,
        ])
    }

    /// Fraction of issued prefetches that were eventually used (accuracy).
    pub fn accuracy(&self, src: PrefetchSource) -> Option<f64> {
        let i = src.index();
        let used: u64 = self.prefetch_found[i].iter().sum();
        let total = used + self.prefetch_unused[i];
        if total == 0 {
            None
        } else {
            Some(used as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeliness_fractions_sum_to_one() {
        let mut s = MemStats::default();
        let src = PrefetchSource::Dvr;
        s.record_found(src, TimelinessBucket::L1);
        s.record_found(src, TimelinessBucket::L1);
        s.record_found(src, TimelinessBucket::L3);
        s.prefetch_unused[src.index()] = 1;
        let t = s.timeliness(src).unwrap();
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_source_reports_none() {
        let s = MemStats::default();
        assert!(s.timeliness(PrefetchSource::Stride).is_none());
        assert!(s.accuracy(PrefetchSource::Stride).is_none());
    }

    #[test]
    fn flat_encoding_roundtrips_and_accumulates() {
        let mut a = MemStats { demand_loads: 7, demand_hits: [1, 2, 3, 4], ..Default::default() };
        a.dram_prefetch[PrefetchSource::Dvr.index()] = 5;
        a.prefetch_found[PrefetchSource::Vr.index()][2] = 9;
        a.injected_fatal = 1;
        let flat = a.to_flat();
        assert_eq!(flat.len(), MemStats::FLAT_LEN);
        let b = MemStats::from_flat(&flat).unwrap();
        assert_eq!(b.to_flat(), flat);
        let mut sum = a.clone();
        sum.accumulate(&b);
        assert_eq!(sum.demand_loads, 14);
        assert_eq!(sum.prefetch_found[PrefetchSource::Vr.index()][2], 18);
        assert!(MemStats::from_flat(&flat[1..]).is_none());
    }

    #[test]
    fn runahead_traffic_excludes_hw_prefetchers() {
        let mut s = MemStats::default();
        s.dram_prefetch[PrefetchSource::Stride.index()] = 5;
        s.dram_prefetch[PrefetchSource::Dvr.index()] = 7;
        s.dram_prefetch[PrefetchSource::Vr.index()] = 2;
        s.dram_demand = 100;
        assert_eq!(s.dram_runahead(), 9);
        assert_eq!(s.dram_reads(), 114);
    }
}
