//! DRAM: fixed minimum latency plus a request-based bandwidth model.

/// DRAM timing parameters.
///
/// The paper's Table 1: 50 ns minimum latency (200 cycles at 4 GHz) and
/// 51.2 GB/s bandwidth with a *request-based contention model* — at 4 GHz
/// that is 12.8 B/cycle, i.e. one 64 B line every 5 cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramConfig {
    /// Minimum (uncontended) access latency in core cycles.
    pub min_latency: u64,
    /// Cycles between line transfers at full bandwidth.
    pub cycles_per_line: u64,
    /// Number of banks for the optional open-page model. `0` (the paper's
    /// request-based model) disables banking: every access pays
    /// `min_latency`.
    pub banks: usize,
    /// Latency of a row-buffer hit when banking is enabled.
    pub row_hit_latency: u64,
    /// Consecutive lines per DRAM row (row size / 64 B; 128 = 8 KiB rows).
    pub lines_per_row: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            min_latency: 200,
            cycles_per_line: 5,
            banks: 0,
            row_hit_latency: 120,
            lines_per_row: 128,
        }
    }
}

impl DramConfig {
    /// An open-page banked variant (16 banks, 8 KiB rows): sequential
    /// streams get row-buffer hits, random traffic pays full latency.
    pub fn banked() -> Self {
        DramConfig { banks: 16, ..DramConfig::default() }
    }
}

/// The DRAM channel: serializes line transfers at the configured bandwidth
/// and adds the fixed access latency.
///
/// Bandwidth is modelled as a *slot calendar*: each transfer occupies one
/// `cycles_per_line`-wide slot, and a request takes the earliest free slot
/// at or after its own cycle. This keeps the model fair under bursts — a
/// demand read arriving in the middle of a large prefetch burst is served
/// in the next free slot near its arrival time (as a real FR-FCFS
/// controller would), instead of behind the whole burst.
///
/// # Example
///
/// ```
/// use sim_mem::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::default());
/// let a = dram.request(100); // arrives at 100+200
/// let b = dram.request(100); // next slot: one line per 5 cycles
/// assert_eq!(a, 300);
/// assert_eq!(b, 305);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Busy slot indices as sorted, disjoint, non-adjacent `[start, end)`
    /// intervals. Requests mostly arrive at monotonically increasing
    /// cycles, so nearly every acquisition extends the last interval —
    /// a bounds check and an increment, no hashing.
    busy: Vec<(u64, u64)>,
    /// Open row per bank (open-page mode only).
    open_rows: Vec<Option<u64>>,
    reads: u64,
    writes: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates an idle DRAM channel.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            busy: Vec::new(),
            open_rows: vec![None; cfg.banks],
            reads: 0,
            writes: 0,
            row_hits: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Takes the first free slot index at or after `idx`.
    fn acquire_slot(&mut self, idx: u64) -> u64 {
        // Fast path: at or past the busy frontier.
        match self.busy.last_mut() {
            None => {
                self.busy.push((idx, idx + 1));
                return idx;
            }
            Some(last) => {
                if idx == last.1 {
                    last.1 += 1;
                    return idx;
                }
                if idx > last.1 {
                    self.busy.push((idx, idx + 1));
                    return idx;
                }
            }
        }
        // General case: find the interval at or before `idx`.
        let p = self.busy.partition_point(|&(s, _)| s <= idx);
        if p > 0 && idx < self.busy[p - 1].1 {
            // Inside a busy interval: take its end slot (free, since
            // intervals are kept non-adjacent) and extend.
            let slot = self.busy[p - 1].1;
            self.busy[p - 1].1 = slot + 1;
            if p < self.busy.len() && self.busy[p].0 == slot + 1 {
                self.busy[p - 1].1 = self.busy[p].1;
                self.busy.remove(p);
            }
            return slot;
        }
        // `idx` itself is free; claim it, coalescing with neighbours.
        let left = p > 0 && self.busy[p - 1].1 == idx;
        let right = p < self.busy.len() && self.busy[p].0 == idx + 1;
        match (left, right) {
            (true, true) => {
                self.busy[p - 1].1 = self.busy[p].1;
                self.busy.remove(p);
            }
            (true, false) => self.busy[p - 1].1 = idx + 1,
            (false, true) => self.busy[p].0 = idx,
            (false, false) => self.busy.insert(p, (idx, idx + 1)),
        }
        idx
    }

    /// Issues a line read at `cycle`; returns the completion cycle.
    ///
    /// Without banking (the default, the paper's request-based model) the
    /// line address is ignored and the fixed latency applies. Call
    /// [`Dram::request_line`] to let the open-page model see the address.
    pub fn request(&mut self, cycle: u64) -> u64 {
        self.request_line(cycle, 0)
    }

    /// Issues a read of `line` at `cycle`; returns the completion cycle.
    /// In open-page mode the latency depends on whether the line's row is
    /// open in its bank.
    pub fn request_line(&mut self, cycle: u64, line: u64) -> u64 {
        self.reads += 1;
        let idx = cycle.div_ceil(self.cfg.cycles_per_line);
        let slot = self.acquire_slot(idx);
        slot * self.cfg.cycles_per_line + self.access_latency(line)
    }

    fn access_latency(&mut self, line: u64) -> u64 {
        if self.cfg.banks == 0 {
            return self.cfg.min_latency;
        }
        let row = line / self.cfg.lines_per_row;
        let bank = (row as usize) % self.cfg.banks;
        if self.open_rows[bank] == Some(row) {
            self.row_hits += 1;
            self.cfg.row_hit_latency
        } else {
            self.open_rows[bank] = Some(row);
            self.cfg.min_latency
        }
    }

    /// Issues a line writeback at `cycle`; consumes a bandwidth slot but
    /// nobody waits for it.
    pub fn writeback(&mut self, cycle: u64) {
        self.writes += 1;
        let idx = cycle.div_ceil(self.cfg.cycles_per_line);
        self.acquire_slot(idx);
    }

    /// Total line reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total line writebacks issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Row-buffer hits observed (open-page mode only).
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Number of busy intervals in the slot calendar (a cheap congestion
    /// signal for deadlock diagnostics).
    pub fn calendar_intervals(&self) -> usize {
        self.busy.len()
    }

    /// Drains the slot calendar and closes all open rows, returning the
    /// channel to an idle state. Read/write/row-hit counters are preserved.
    ///
    /// Used at sampling interval boundaries: calendar slots are absolute
    /// cycles of the previous interval's clock and must not contend with
    /// the next interval's cycle-0 restart.
    pub fn quiesce(&mut self) {
        self.busy.clear();
        self.open_rows.iter_mut().for_each(|r| *r = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.request(1000), 1200);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        let mut d = Dram::new(DramConfig::default());
        let c: Vec<u64> = (0..4).map(|_| d.request(0)).collect();
        assert_eq!(c, vec![200, 205, 210, 215]);
        assert_eq!(d.reads(), 4);
    }

    #[test]
    fn idle_gap_keeps_later_requests_uncontended() {
        let mut d = Dram::new(DramConfig::default());
        d.request(0);
        assert_eq!(d.request(10_000), 10_200);
    }

    #[test]
    fn late_arrival_is_not_starved_by_earlier_burst() {
        let mut d = Dram::new(DramConfig::default());
        // A burst issued (in call order) for far-future slots...
        for k in 0..100 {
            d.request(1000 + 5 * k);
        }
        // ...must not delay a request for an *earlier* window.
        assert_eq!(d.request(0), 200);
        // And a request inside the (contiguous) burst window takes the
        // first slot after it.
        assert_eq!(d.request(1002), 1500 + 200);
    }

    #[test]
    fn open_page_rewards_locality() {
        let mut d = Dram::new(DramConfig::banked());
        // First access to a row opens it; the rest of the row hits.
        let base = d.request_line(0, 1000 * 128);
        let hit = d.request_line(10_000, 1000 * 128 + 1);
        assert_eq!(base, 200);
        assert_eq!(hit, 10_000 + 120);
        assert_eq!(d.row_hits(), 1);
        // A different row in the same bank closes it.
        let far = d.request_line(20_000, (1000 + 16) * 128);
        assert_eq!(far, 20_000 + 200);
        let reopened = d.request_line(30_000, 1000 * 128 + 2);
        assert_eq!(reopened, 30_000 + 200, "row was closed by the conflict");
    }

    #[test]
    fn flat_model_ignores_addresses() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.request_line(0, 0), 200);
        assert_eq!(d.request_line(10_000, 1), 10_200);
        assert_eq!(d.row_hits(), 0);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = Dram::new(DramConfig::default());
        d.writeback(0);
        assert_eq!(d.request(0), 205);
        assert_eq!(d.writes(), 1);
    }
}
