//! # sim-mem — cycle-level memory hierarchy for the DVR simulator
//!
//! Models the memory system of the paper's Table 1 baseline:
//!
//! * 32 KB / 8-way L1-D (4-cycle), 256 KB / 8-way private L2 (8-cycle),
//!   8 MB / 16-way shared L3 (30-cycle), all LRU;
//! * **24 MSHRs** tracking outstanding L1-D misses — the structure whose
//!   occupancy *is* memory-level parallelism (paper Figure 9);
//! * DRAM with 50 ns minimum latency and a request-based bandwidth
//!   contention model (51.2 GB/s ⇒ one 64 B line per 5 cycles at 4 GHz);
//! * an always-on L1-D **stride prefetcher** (Reference Prediction Table,
//!   16 streams) and the **IMP** indirect-memory-prefetcher baseline.
//!
//! Every cache line carries *prefetch provenance* so the harness can
//! regenerate the paper's accuracy/coverage (Figure 10) and timeliness
//! (Figure 11) plots: which engine brought a line in, and at which level the
//! main thread eventually found it.
//!
//! ## Example
//!
//! ```
//! use sim_mem::{AccessClass, HierarchyConfig, HitLevel, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! // Cold miss goes to DRAM...
//! let a = mem.load(0, 0x4000, AccessClass::Demand);
//! assert_eq!(a.level, HitLevel::Mem);
//! // ...and the line then hits in L1.
//! let b = mem.load(a.complete_at, 0x4000, AccessClass::Demand);
//! assert_eq!(b.level, HitLevel::L1);
//! assert_eq!(b.complete_at, a.complete_at + 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod fault;
mod hierarchy;
mod imp;
mod mshr;
mod shared;
mod stats;
mod stride;

pub use cache::{Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use fault::{FaultConfig, FaultEvent, FaultKind};
pub use hierarchy::{
    Access, AccessClass, HierarchyConfig, HitLevel, MemoryHierarchy, PrefetchResult,
    PrefetchSource, TaintFill, WARM_STATE_MAGIC,
};
pub use imp::{ImpConfig, ImpPrefetcher};
pub use mshr::MshrFile;
pub use shared::{SharedCoreCounters, SharedLlc, SharedLlcHandle};
pub use stats::{MemStats, TimelinessBucket};
pub use stride::{StrideEntry, StridePrefetcher, StrideUpdate, MAX_DEGREE};

/// Cache-line size in bytes (64 B throughout the hierarchy).
pub const LINE_BYTES: u64 = 64;

/// The cache-line address (byte address divided by the line size).
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
