//! Reference Prediction Table (RPT) stride prefetcher.
//!
//! The always-on L1-D prefetcher of the paper's Table 1 (16 streams), and
//! the stride-detection substrate DVR's trigger reuses (Section 4.1.1): each
//! entry tracks a load PC, its last address, the observed stride, and a
//! 2-bit saturating confidence counter — exactly the fields costed in the
//! paper's hardware-overhead budget (Section 4.4).

/// One RPT entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StrideEntry {
    /// Load PC that owns this stream.
    pub pc: usize,
    /// Last address observed for this PC.
    pub last_addr: u64,
    /// Current stride in bytes (0 until two observations).
    pub stride: i64,
    /// 2-bit saturating confidence (0–3).
    pub confidence: u8,
}

impl StrideEntry {
    /// Whether the stream is confident enough to act on (counter ≥ 2) and
    /// actually striding.
    pub fn is_confident(&self) -> bool {
        self.confidence >= 2 && self.stride != 0
    }
}

/// Maximum prefetch degree the RPT supports (inline buffer bound — this
/// sits on the per-demand-load hot path, so no heap allocation).
pub const MAX_DEGREE: usize = 8;

/// Result of training the RPT on one load.
#[derive(Clone, Debug, Default)]
pub struct StrideUpdate {
    /// The load's stream is confident and striding.
    pub confident: bool,
    /// The stride in bytes (meaningful when `confident`).
    pub stride: i64,
    buf: [u64; MAX_DEGREE],
    len: u8,
}

impl StrideUpdate {
    /// Prefetch addresses the prefetcher wants issued.
    pub fn prefetches(&self) -> &[u64] {
        &self.buf[..self.len as usize]
    }
}

/// A direct-mapped RPT stride prefetcher.
///
/// Training is driven by the core on every demand load; the returned
/// [`StrideUpdate::prefetches`] are issued by the caller through
/// [`MemoryHierarchy::prefetch`](crate::MemoryHierarchy::prefetch) (which
/// drops them when no MSHR is free).
///
/// # Example
///
/// ```
/// use sim_mem::StridePrefetcher;
/// let mut sp = StridePrefetcher::new(32, 2, 4);
/// sp.train(7, 0x1000);
/// sp.train(7, 0x1008); // stride learned
/// sp.train(7, 0x1010); // confidence 2 -> confident
/// let upd = sp.train(7, 0x1018);
/// assert!(upd.confident);
/// assert_eq!(upd.stride, 8);
/// assert_eq!(upd.prefetches(), &[0x1018 + 4 * 8, 0x1018 + 5 * 8]);
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: Vec<Option<StrideEntry>>,
    degree: u64,
    distance: u64,
}

impl StridePrefetcher {
    /// Creates an RPT with `entries` slots, issuing `degree` prefetches per
    /// confident access starting `distance` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `degree` exceeds [`MAX_DEGREE`].
    pub fn new(entries: usize, degree: u64, distance: u64) -> Self {
        assert!(entries > 0, "RPT must have at least one entry");
        assert!(degree as usize <= MAX_DEGREE, "degree {degree} exceeds {MAX_DEGREE}");
        StridePrefetcher { table: vec![None; entries], degree, distance }
    }

    /// The paper's configuration: 32 entries, degree 2, distance 4.
    pub fn paper_default() -> Self {
        StridePrefetcher::new(32, 2, 4)
    }

    fn slot(&self, pc: usize) -> usize {
        pc % self.table.len()
    }

    /// Looks up the stream for `pc` without training it.
    pub fn lookup(&self, pc: usize) -> Option<&StrideEntry> {
        self.table[self.slot(pc)].as_ref().filter(|e| e.pc == pc)
    }

    /// Trains the table on a demand load and returns the prefetches (if
    /// any) this access triggers.
    pub fn train(&mut self, pc: usize, addr: u64) -> StrideUpdate {
        let slot = self.slot(pc);
        let entry = &mut self.table[slot];
        match entry {
            Some(e) if e.pc == pc => {
                let new_stride = addr.wrapping_sub(e.last_addr) as i64;
                if new_stride == e.stride && new_stride != 0 {
                    e.confidence = (e.confidence + 1).min(3);
                } else {
                    if e.confidence > 0 {
                        e.confidence -= 1;
                    }
                    // Adopt the new stride once confidence has drained.
                    if e.confidence == 0 {
                        e.stride = new_stride;
                        e.confidence = 1;
                    }
                }
                e.last_addr = addr;
                let confident = e.is_confident();
                let stride = e.stride;
                let mut buf = [0u64; MAX_DEGREE];
                let mut len = 0u8;
                if confident {
                    for k in 0..self.degree {
                        let delta = stride.wrapping_mul((self.distance + k) as i64);
                        buf[len as usize] = addr.wrapping_add(delta as u64);
                        len += 1;
                    }
                }
                StrideUpdate { confident, stride, buf, len }
            }
            _ => {
                // Allocate (direct-mapped replacement).
                *entry = Some(StrideEntry { pc, last_addr: addr, stride: 0, confidence: 0 });
                StrideUpdate::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_stride_after_three_accesses() {
        let mut sp = StridePrefetcher::new(32, 1, 1);
        assert!(!sp.train(1, 100).confident);
        assert!(!sp.train(1, 108).confident); // stride set, confidence 1
        let u = sp.train(1, 116);
        assert!(u.confident);
        assert_eq!(u.stride, 8);
        assert_eq!(u.prefetches(), &[124]);
    }

    #[test]
    fn negative_strides_work() {
        let mut sp = StridePrefetcher::new(32, 1, 2);
        sp.train(1, 1000);
        sp.train(1, 992);
        let u = sp.train(1, 984);
        assert!(u.confident);
        assert_eq!(u.stride, -8);
        assert_eq!(u.prefetches(), &[984 - 16]);
    }

    #[test]
    fn random_pattern_never_becomes_confident() {
        let mut sp = StridePrefetcher::new(32, 2, 4);
        let addrs = [5u64, 900, 17, 23_000, 4, 88, 1_000_000, 3];
        for a in addrs {
            let u = sp.train(2, a);
            assert!(!u.confident, "random addresses must not train the RPT");
        }
    }

    #[test]
    fn conflicting_pcs_evict_each_other() {
        let mut sp = StridePrefetcher::new(4, 1, 1);
        sp.train(0, 100);
        sp.train(0, 108);
        // pc=4 maps to the same slot, evicting pc=0.
        sp.train(4, 5000);
        assert!(sp.lookup(0).is_none());
        assert!(sp.lookup(4).is_some());
    }

    #[test]
    fn stride_change_retrains() {
        let mut sp = StridePrefetcher::new(32, 1, 1);
        sp.train(1, 0);
        sp.train(1, 8);
        sp.train(1, 16);
        assert!(sp.lookup(1).unwrap().is_confident());
        // Switch to stride 64: confidence drains, then the new stride trains.
        sp.train(1, 80);
        sp.train(1, 144);
        sp.train(1, 208);
        sp.train(1, 272);
        let e = sp.lookup(1).unwrap();
        assert_eq!(e.stride, 64);
        assert!(e.is_confident());
    }

    #[test]
    fn zero_stride_is_not_confident() {
        let mut sp = StridePrefetcher::new(32, 1, 1);
        for _ in 0..5 {
            let u = sp.train(1, 4096);
            assert!(!u.confident);
        }
    }
}
