//! The shared last-level cache and DRAM: the resources N cores contend for.
//!
//! A [`SharedLlc`] bundles the L3 tag array, the DRAM bandwidth calendar,
//! and the shared-state half of prefetch provenance behind one
//! [`SharedLlcHandle`]. Every [`crate::MemoryHierarchy`] fronts one — a
//! solo hierarchy owns a private handle, while a multi-core group attaches
//! N hierarchies to the same one so their misses contend for the same L3
//! ways and DRAM slots. All timing decisions stay in the caches and the
//! calendar; the per-core counters here are pure accounting, which is what
//! keeps a single core attached to a private handle cycle-identical to the
//! pre-shared hierarchy.
//!
//! Handles are [`Rc`]-based and deliberately not `Send`: one simulated
//! machine lives on one host thread. Cross-thread parallelism in this
//! codebase is always across *independent* simulations (see
//! `dvr_sim::parallel_map`), each of which builds its own shared LLC.

use std::cell::RefCell;
use std::rc::Rc;

use sim_isa::FxHashMap;

use crate::cache::{Cache, CacheConfig, Probe};
use crate::dram::{Dram, DramConfig};
use crate::PrefetchSource;

/// Shared handle to a [`SharedLlc`]; clone it to attach more cores.
pub type SharedLlcHandle = Rc<RefCell<SharedLlc>>;

/// Per-core accounting of shared-LLC activity. Observation only — nothing
/// here feeds back into timing.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SharedCoreCounters {
    /// L3 probe hits (including in-flight merges) by this core.
    pub l3_hits: u64,
    /// L3 fills installed on behalf of this core's DRAM requests.
    pub l3_fills: u64,
    /// DRAM line reads this core issued through the shared calendar.
    pub dram_reads: u64,
    /// DRAM writebacks caused by this core's fills evicting dirty L3 lines.
    pub dram_writebacks: u64,
    /// Provenance entries this core installed (prefetch-class DRAM fills).
    pub prov_installed: u64,
    /// Provenance entries owned by this core that were cleared because the
    /// line left the L3 — the "no provenance bit survives eviction" rule.
    pub prov_evicted: u64,
    /// Demand hits by this core on lines another core prefetched: the one
    /// *justified* way provenance migrates between cores (the speculation
    /// paid off for a neighbor, and the entry is retired on the spot).
    pub cross_core_hits: u64,
}

/// The shared L3 + DRAM component.
///
/// Prefetch provenance at this level mirrors the per-core
/// `pending_prefetch` map one level down: a prefetch-class DRAM fill tags
/// the L3 line with `(installing core, source)`, a demand hit retires the
/// tag (counting a cross-core hit when the demander differs from the
/// installer), and *any* path that removes the line from the L3 must clear
/// the tag. [`SharedLlc::check_invariants`] enforces that last rule.
#[derive(Clone, Debug)]
pub struct SharedLlc {
    l3: Cache,
    dram: Dram,
    /// line → (installing core, source) for prefetch-filled resident lines.
    provenance: FxHashMap<u64, (u32, PrefetchSource)>,
    per_core: Vec<SharedCoreCounters>,
}

impl SharedLlc {
    /// Creates an empty shared LLC.
    pub fn new(l3: CacheConfig, dram: DramConfig) -> Self {
        SharedLlc {
            l3: Cache::new(l3),
            dram: Dram::new(dram),
            provenance: FxHashMap::default(),
            per_core: Vec::new(),
        }
    }

    /// Creates an empty shared LLC behind a fresh handle.
    pub fn new_handle(l3: CacheConfig, dram: DramConfig) -> SharedLlcHandle {
        Rc::new(RefCell::new(SharedLlc::new(l3, dram)))
    }

    /// Registers a core, returning its index in the per-core accounting.
    pub(crate) fn register_core(&mut self) -> u32 {
        self.per_core.push(SharedCoreCounters::default());
        (self.per_core.len() - 1) as u32
    }

    /// Number of cores attached so far.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Accounting snapshot for one core.
    pub fn counters(&self, core: u32) -> SharedCoreCounters {
        self.per_core[core as usize]
    }

    /// L3 hit latency.
    pub(crate) fn l3_latency(&self) -> u64 {
        self.l3.latency()
    }

    /// Probes the L3 on behalf of `core`. A demand hit retires the line's
    /// provenance entry (the prefetch was used — justified, even across
    /// cores).
    pub(crate) fn probe_l3(&mut self, core: u32, line: u64, demand: bool) -> Option<Probe> {
        let p = self.l3.probe(line)?;
        self.per_core[core as usize].l3_hits += 1;
        if demand {
            if let Some((owner, _src)) = self.provenance.remove(&line) {
                if owner != core {
                    self.per_core[core as usize].cross_core_hits += 1;
                }
            }
        }
        Some(p)
    }

    /// LRU-refreshing residency probe for functional warming.
    pub(crate) fn warm_probe_l3(&mut self, line: u64) -> bool {
        self.l3.probe(line).is_some()
    }

    /// Installs a DRAM fill into the L3 on behalf of `core`, tagging it
    /// with prefetch provenance when `prov` names a source. Returns whether
    /// a dirty victim consumed DRAM writeback bandwidth, so the caller can
    /// attribute it in its own [`crate::MemStats`].
    pub(crate) fn fill_l3(
        &mut self,
        core: u32,
        line: u64,
        ready_at: u64,
        prov: Option<PrefetchSource>,
    ) -> bool {
        let evicted = self.l3.insert(line, false, ready_at);
        self.per_core[core as usize].l3_fills += 1;
        if let Some(src) = prov {
            // First installer wins, mirroring the per-core pending-prefetch
            // rule: a re-fetch of a still-tracked line keeps its original
            // provenance.
            if let std::collections::hash_map::Entry::Vacant(e) = self.provenance.entry(line) {
                e.insert((core, src));
                self.per_core[core as usize].prov_installed += 1;
            }
        }
        let mut wrote_back = false;
        if let Some((victim, dirty)) = evicted {
            self.evict_provenance(victim);
            if dirty {
                self.dram.writeback(ready_at);
                self.per_core[core as usize].dram_writebacks += 1;
                wrote_back = true;
            }
        }
        wrote_back
    }

    /// Receives a dirty L2 victim: mark the resident copy dirty, or install
    /// one. A victim this install displaces vanishes without DRAM bandwidth
    /// (matching the private-hierarchy behavior), but its provenance is
    /// still cleared — no tag may outlive residency.
    pub(crate) fn writeback_into_l3(&mut self, victim: u64, ready_at: u64) {
        if !self.l3.mark_dirty(victim) {
            if let Some((displaced, _dirty)) = self.l3.insert(victim, true, ready_at) {
                self.evict_provenance(displaced);
            }
        }
    }

    /// Functional-warming fill: no bandwidth, no provenance, silent
    /// evictions (which still clear any stale provenance).
    pub(crate) fn warm_fill_l3(&mut self, line: u64) {
        if let Some((victim, _dirty)) = self.l3.insert(line, false, 0) {
            self.evict_provenance(victim);
        }
    }

    fn evict_provenance(&mut self, line: u64) {
        if let Some((owner, _src)) = self.provenance.remove(&line) {
            self.per_core[owner as usize].prov_evicted += 1;
        }
    }

    /// Schedules a line read on the shared DRAM calendar for `core`.
    pub(crate) fn request_line(&mut self, core: u32, cycle: u64, line: u64) -> u64 {
        self.per_core[core as usize].dram_reads += 1;
        self.dram.request_line(cycle, line)
    }

    /// Read access to the L3 tag array.
    pub fn l3(&self) -> &Cache {
        &self.l3
    }

    /// Number of busy intervals in the shared DRAM slot calendar.
    pub fn dram_calendar_depth(&self) -> usize {
        self.dram.calendar_intervals()
    }

    /// Number of live provenance entries (tests, diagnostics).
    pub fn provenance_entries(&self) -> usize {
        self.provenance.len()
    }

    /// Serializes the L3 tag array (warm-state image segment).
    pub(crate) fn save_l3(&self, out: &mut Vec<u8>) {
        self.l3.save_state(out);
    }

    /// Restores the L3 tag array from a warm-state image segment.
    pub(crate) fn load_l3(&mut self, b: &[u8], off: &mut usize) -> Option<()> {
        self.l3.load_state(b, off)
    }

    /// Drains in-flight timing state (sampling interval boundaries).
    pub(crate) fn quiesce(&mut self) {
        self.l3.quiesce();
        self.dram.quiesce();
    }

    /// Read-only structural sweep: the L3's per-set invariants, plus the
    /// shared-LLC provenance rule — every provenance entry must name a line
    /// still resident in the L3. Violations are reported in sorted line
    /// order so sanitizer output is host-independent.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut out = self.l3.check_invariants();
        let mut stray: Vec<u64> =
            self.provenance.keys().copied().filter(|&l| !self.l3.contains(l)).collect();
        stray.sort_unstable();
        for line in stray {
            out.push(format!("provenance entry for line {line:#x} survived L3 eviction"));
        }
        out
    }
}
