//! Property-based tests for the memory hierarchy.

use proptest::prelude::*;
use sim_mem::{
    line_of, Access, AccessClass, Cache, CacheConfig, HierarchyConfig, HitLevel, MemoryHierarchy,
    StridePrefetcher,
};

proptest! {
    /// A cache never reports more resident lines than its capacity, and a
    /// line just inserted is always found.
    #[test]
    fn cache_capacity_invariant(lines in prop::collection::vec(0u64..10_000, 1..200)) {
        let cfg = CacheConfig { size_bytes: 64 * 64, assoc: 4, latency: 1 };
        let capacity = (cfg.size_bytes / 64) as usize;
        let mut c = Cache::new(cfg);
        for l in &lines {
            c.insert(*l, false, 0);
            prop_assert!(c.contains(*l));
            prop_assert!(c.resident_lines() <= capacity);
        }
    }

    /// Completion times never precede the request cycle, and a repeat access
    /// after completion is an L1 hit.
    #[test]
    fn hierarchy_latency_monotonicity(addrs in prop::collection::vec(0u64..1u64<<24, 1..60)) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let mut cycle = 0u64;
        for a in &addrs {
            let Access { complete_at, .. } = m.load(cycle, *a, AccessClass::Demand);
            prop_assert!(complete_at > cycle);
            cycle = complete_at;
            let again = m.load(cycle, *a, AccessClass::Demand);
            prop_assert_eq!(again.level, HitLevel::L1);
            prop_assert_eq!(again.complete_at, cycle + 4);
            cycle = again.complete_at;
        }
    }

    /// Demand hit counters exactly partition demand accesses.
    #[test]
    fn hierarchy_stats_partition(
        addrs in prop::collection::vec(0u64..1u64<<20, 1..100),
        gap in 1u64..300,
    ) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let mut cycle = 0u64;
        for a in &addrs {
            m.load(cycle, *a, AccessClass::Demand);
            cycle += gap;
        }
        let s = m.stats();
        let total: u64 = s.demand_hits.iter().sum::<u64>() + s.demand_inflight;
        prop_assert_eq!(total, addrs.len() as u64);
        prop_assert_eq!(s.demand_loads, addrs.len() as u64);
    }

    /// The stride prefetcher's predictions always lie on the learned stream.
    #[test]
    fn stride_predictions_on_stream(
        base in 0u64..1u64<<30,
        stride in prop::sample::select(vec![1i64, 4, 8, 16, 64, -8, -64]),
        n in 4usize..40,
    ) {
        let mut sp = StridePrefetcher::new(32, 2, 4);
        let mut addr = base;
        for _ in 0..n {
            let upd = sp.train(9, addr);
            for p in upd.prefetches() {
                // Prediction must be k strides ahead for some k >= 1.
                let delta = p.wrapping_sub(addr) as i64;
                prop_assert_eq!(delta % stride, 0);
                prop_assert!(delta / stride >= 1);
            }
            addr = addr.wrapping_add(stride as u64);
        }
    }

    /// Prefetch accounting: issued = used + unused after finalize.
    #[test]
    fn prefetch_accounting_balances(addrs in prop::collection::vec(0u64..1u64<<22, 1..60)) {
        use sim_mem::PrefetchSource;
        let mut m = MemoryHierarchy::new(HierarchyConfig::default());
        let mut cycle = 0;
        // Prefetch everything, then demand only even-indexed addresses.
        for a in &addrs {
            m.prefetch(cycle, *a, PrefetchSource::Dvr);
            cycle += 10;
        }
        cycle += 100_000;
        for a in addrs.iter().step_by(2) {
            let acc = m.load(cycle, *a, AccessClass::Demand);
            cycle = acc.complete_at;
        }
        m.finalize();
        let s = m.stats();
        let i = PrefetchSource::Dvr.index();
        let used: u64 = s.prefetch_found[i].iter().sum();
        prop_assert_eq!(used + s.prefetch_unused[i], s.prefetch_issued[i]);
    }

    /// Line address helper is consistent with 64-byte lines.
    #[test]
    fn line_addressing(addr in any::<u64>()) {
        prop_assert_eq!(line_of(addr), addr / 64);
        prop_assert_eq!(line_of(addr), line_of(addr & !63));
    }
}
