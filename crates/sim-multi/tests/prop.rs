//! Property-based tests for scheduler determinism.
//!
//! The invariant under test is the one the multi-core simulator's
//! byte-identity guarantees rest on: the event trace is a pure function of
//! the component set, independent of the order in which ready components
//! were inserted into the queue.

use proptest::prelude::*;
use sim_multi::{Component, ComponentId, Scheduler, Tick};

/// A scripted component: ticks `left` times at a fixed `period`.
#[derive(Clone, Copy)]
struct Scripted {
    period: u64,
    left: u32,
}

impl Component for Scripted {
    fn tick(&mut self, now: u64) -> Tick {
        self.left -= 1;
        if self.left == 0 {
            Tick::Done
        } else {
            Tick::Reschedule(now + self.period)
        }
    }
}

/// Runs the component set with first wake-ups armed in `order`, returning
/// the full event trace.
fn trace_with_order(specs: &[Scripted], order: &[usize]) -> Vec<(u64, ComponentId)> {
    let mut comps: Vec<Scripted> = specs.to_vec();
    let mut sched = Scheduler::new();
    for &i in order {
        sched.schedule(0, i as ComponentId);
    }
    let mut refs: Vec<&mut dyn Component> =
        comps.iter_mut().map(|c| c as &mut dyn Component).collect();
    let mut trace = Vec::new();
    sched.run_traced(&mut refs, &mut trace);
    trace
}

proptest! {
    /// Any insertion order of ready components yields the same event trace
    /// (ties at a tick break by `ComponentId`, not arrival order).
    #[test]
    fn insertion_order_cannot_change_the_event_trace(
        specs in prop::collection::vec(
            (1u64..8, 1u32..12).prop_map(|(period, left)| Scripted { period, left }),
            1..8,
        ),
        shuffle_seed in any::<u64>(),
    ) {
        let canonical_order: Vec<usize> = (0..specs.len()).collect();
        // A seeded Fisher–Yates permutation of the arming order.
        let mut order = canonical_order.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..order.len()).rev() {
            // xorshift64 — deterministic per seed, no external RNG needed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let canonical = trace_with_order(&specs, &canonical_order);
        let shuffled = trace_with_order(&specs, &order);
        prop_assert_eq!(&shuffled, &canonical);
        // The trace is exhaustive: every component appears exactly `left`
        // times, in nondecreasing tick order.
        let total: u32 = specs.iter().map(|s| s.left).sum();
        prop_assert_eq!(canonical.len() as u32, total);
        prop_assert!(canonical.windows(2).all(|w| w[0].0 <= w[1].0));
        // Ties are ordered by id.
        prop_assert!(canonical.windows(2).all(|w| w[0].0 < w[1].0 || w[0].1 < w[1].1));
    }
}
