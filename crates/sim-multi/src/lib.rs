//! # sim-multi — deterministic discrete-event component scheduler
//!
//! The top-level clock of the multi-core simulator. Components (OoO cores,
//! the shared LLC observer, future device models) implement [`Component`];
//! the [`Scheduler`] drives them off a min-heap event queue keyed by
//! `(next_tick, ComponentId)`.
//!
//! ## Determinism
//!
//! Every queue entry is a `(tick, id)` pair and each component has **at
//! most one** pending event (it is re-armed only by its own `tick` return
//! value), so all live keys are distinct and the heap pops them in one
//! total order — ties on `tick` break by `ComponentId`. The order in which
//! components were initially scheduled therefore cannot influence the
//! event trace, which is what makes N-core runs byte-identical across
//! re-runs and host thread counts. Keys are integers only; float keys
//! (with their NaN non-ordering) and wall-clock reads are banned from this
//! crate by a `check.sh` grep guard.
//!
//! ## Example
//!
//! ```
//! use sim_multi::{Component, Scheduler, Tick};
//!
//! struct Counter { left: u32 }
//! impl Component for Counter {
//!     fn tick(&mut self, now: u64) -> Tick {
//!         self.left -= 1;
//!         if self.left == 0 { Tick::Done } else { Tick::Reschedule(now + 2) }
//!     }
//! }
//!
//! let mut a = Counter { left: 3 };
//! let mut b = Counter { left: 2 };
//! let mut sched = Scheduler::new();
//! sched.schedule(0, 0);
//! sched.schedule(0, 1);
//! let stats = sched.run(&mut [&mut a, &mut b]);
//! assert_eq!(stats.events, 5);
//! assert_eq!(stats.final_tick, 4); // a: 0,2,4  b: 0,2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a component in the slice passed to [`Scheduler::run`]. Doubles
/// as the deterministic tie-breaker for events at the same tick: lower ids
/// tick first.
pub type ComponentId = u32;

/// What a component wants after a tick.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tick {
    /// Wake this component again at the given tick (must be strictly after
    /// the current one — zero-delay self-wakeups would stall the clock).
    Reschedule(u64),
    /// This component is finished; drop it from the event queue.
    Done,
}

/// Aggregate counters from one [`Scheduler::run`].
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SchedulerStats {
    /// Total events dispatched.
    pub events: u64,
    /// Tick of the last dispatched event (0 if none ran).
    pub final_tick: u64,
}

/// A schedulable simulation component.
///
/// `tick(now)` advances the component's local work at global tick `now`
/// and reports when it next wants the clock. A cycle-accurate core
/// reschedules at `now + 1`; a coarse observer (LLC invariant sweeps, a
/// DMA engine) can sleep for thousands of ticks, which is the point of an
/// event queue over a lock-step loop.
pub trait Component {
    /// Advance to global tick `now`; say when to run next.
    fn tick(&mut self, now: u64) -> Tick;
}

/// Deterministic discrete-event scheduler: a min-heap of
/// `(next_tick, ComponentId)` wake-ups over a global tick counter.
#[derive(Clone, Debug, Default)]
pub struct Scheduler {
    /// Min-heap via `Reverse`; see the crate docs for the determinism
    /// argument (all keys distinct, integer ordering total).
    queue: BinaryHeap<Reverse<(u64, ComponentId)>>,
    now: u64,
}

impl Scheduler {
    /// Creates an empty scheduler at tick 0.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Arms component `id`'s first wake-up at tick `at`. Call once per
    /// component before [`Scheduler::run`]; later wake-ups come from
    /// [`Tick::Reschedule`]. Scheduling the same component twice would
    /// break the one-pending-event invariant, so don't.
    pub fn schedule(&mut self, at: u64, id: ComponentId) {
        self.queue.push(Reverse((at, id)));
    }

    /// The current global tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until the event queue drains (every component returned
    /// [`Tick::Done`]). `components` is indexed by [`ComponentId`].
    ///
    /// # Panics
    ///
    /// If an event names an id outside `components`, or a component
    /// reschedules itself at or before the current tick (the clock must
    /// advance).
    pub fn run(&mut self, components: &mut [&mut dyn Component]) -> SchedulerStats {
        self.run_inner(components, None)
    }

    /// [`Scheduler::run`], recording every dispatched `(tick, id)` event
    /// into `trace`. The trace is the object of the determinism proptest:
    /// any insertion order of ready components must yield the same one.
    pub fn run_traced(
        &mut self,
        components: &mut [&mut dyn Component],
        trace: &mut Vec<(u64, ComponentId)>,
    ) -> SchedulerStats {
        self.run_inner(components, Some(trace))
    }

    fn run_inner(
        &mut self,
        components: &mut [&mut dyn Component],
        mut trace: Option<&mut Vec<(u64, ComponentId)>>,
    ) -> SchedulerStats {
        let mut stats = SchedulerStats::default();
        while let Some(Reverse((tick, id))) = self.queue.pop() {
            debug_assert!(tick >= self.now, "event queue went backwards");
            self.now = tick;
            stats.events += 1;
            stats.final_tick = tick;
            if let Some(t) = trace.as_deref_mut() {
                t.push((tick, id));
            }
            match components[id as usize].tick(tick) {
                Tick::Reschedule(next) => {
                    assert!(
                        next > tick,
                        "component {id} rescheduled at {next} <= current tick {tick}"
                    );
                    self.queue.push(Reverse((next, id)));
                }
                Tick::Done => {}
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ticks at a fixed period a fixed number of times.
    struct Periodic {
        period: u64,
        left: u32,
    }

    impl Component for Periodic {
        fn tick(&mut self, now: u64) -> Tick {
            self.left -= 1;
            if self.left == 0 {
                Tick::Done
            } else {
                Tick::Reschedule(now + self.period)
            }
        }
    }

    #[test]
    fn drains_when_all_components_finish() {
        let mut a = Periodic { period: 1, left: 5 };
        let mut sched = Scheduler::new();
        sched.schedule(0, 0);
        let stats = sched.run(&mut [&mut a]);
        assert_eq!(stats.events, 5);
        assert_eq!(stats.final_tick, 4);
        assert_eq!(sched.now(), 4);
    }

    #[test]
    fn ties_break_by_component_id() {
        let mut a = Periodic { period: 4, left: 3 };
        let mut b = Periodic { period: 4, left: 3 };
        let mut sched = Scheduler::new();
        // Arm in reverse id order: the trace must still order ties by id.
        sched.schedule(0, 1);
        sched.schedule(0, 0);
        let mut trace = Vec::new();
        sched.run_traced(&mut [&mut a, &mut b], &mut trace);
        assert_eq!(trace, vec![(0, 0), (0, 1), (4, 0), (4, 1), (8, 0), (8, 1)]);
    }

    #[test]
    fn mixed_periods_interleave_in_tick_order() {
        let mut fast = Periodic { period: 1, left: 4 };
        let mut slow = Periodic { period: 3, left: 2 };
        let mut sched = Scheduler::new();
        sched.schedule(0, 0);
        sched.schedule(0, 1);
        let mut trace = Vec::new();
        sched.run_traced(&mut [&mut fast, &mut slow], &mut trace);
        assert_eq!(trace, vec![(0, 0), (0, 1), (1, 0), (2, 0), (3, 0), (3, 1)]);
    }

    #[test]
    #[should_panic(expected = "rescheduled at")]
    fn zero_delay_reschedule_panics() {
        struct Stuck;
        impl Component for Stuck {
            fn tick(&mut self, now: u64) -> Tick {
                Tick::Reschedule(now)
            }
        }
        let mut s = Stuck;
        let mut sched = Scheduler::new();
        sched.schedule(0, 0);
        sched.run(&mut [&mut s]);
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let mut sched = Scheduler::new();
        let stats = sched.run(&mut []);
        assert_eq!(stats, SchedulerStats::default());
    }
}
