//! The sweep write-ahead journal.
//!
//! One append-only text file records every cell outcome the moment it
//! is known, so a sweep killed at *any* byte offset — `kill -9`, power
//! loss, a panicking driver — resumes exactly where it stopped.
//!
//! ## Format
//!
//! One record per line:
//!
//! ```text
//! J1 <16-hex fnv64 of rest> <rest>
//! ```
//!
//! where `<rest>` is one of
//!
//! ```text
//! manifest <32-hex digest of the cell grid>
//! done <cell-key> <hex payload>
//! fail <cell-key> <error-kind> <attempts> <hex message>
//! ```
//!
//! The first record is always `manifest`; replay refuses a journal
//! whose manifest digest differs from the requested grid
//! ([`SweepError::JournalMismatch`]) so two different sweeps can never
//! interleave results. Cell keys are opaque tokens that must not
//! contain whitespace; payloads and messages are hex-encoded so the
//! line parser never needs escaping rules.
//!
//! ## Crash tolerance
//!
//! Replay accepts the longest valid prefix: the first line that is
//! truncated (no trailing newline), fails its checksum, or fails to
//! parse ends replay, and the file is truncated back to the end of the
//! valid prefix before appending resumes. A torn final write therefore
//! costs at most one cell's recomputation, never the sweep.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::digest::{fnv64, from_hex, to_hex, Digest128, Hasher};
use crate::error::SweepError;
use crate::CellOutcome;

/// Magic tag opening every journal line (`J` + format version).
pub const JOURNAL_TAG: &str = "J1";

/// One replayed journal record (the manifest record is consumed during
/// open and never surfaced).
#[derive(Clone, PartialEq, Debug)]
pub struct JournalRecord {
    /// Cell key the record settles.
    pub cell: String,
    /// The recorded outcome.
    pub outcome: CellOutcome,
}

/// Digest of a sweep's cell grid; pins a journal to its sweep.
pub fn manifest_digest(cells: &[String]) -> Digest128 {
    let mut h = Hasher::new();
    h.write_str("dvr-sweep-manifest-v1");
    h.write_u64(cells.len() as u64);
    for c in cells {
        h.write_str(c);
    }
    h.finish()
}

/// Statistics from replaying a journal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReplayStats {
    /// Valid records replayed (excluding the manifest).
    pub replayed: u64,
    /// Bytes of invalid tail dropped (0 on a clean journal).
    pub dropped_bytes: u64,
}

/// An open, replayed, append-ready journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    records: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays the valid
    /// prefix, truncates any torn tail, and verifies the manifest.
    ///
    /// Returns the journal positioned for appends, the replayed
    /// records in file order, and replay statistics.
    pub fn open(
        path: &Path,
        manifest: Digest128,
    ) -> Result<(Journal, Vec<JournalRecord>, ReplayStats), SweepError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| SweepError::Journal {
                    path: path.to_path_buf(),
                    reason: format!("create parent dir: {e}"),
                })?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| SweepError::Journal {
                path: path.to_path_buf(),
                reason: format!("open: {e}"),
            })?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw).map_err(|e| SweepError::Journal {
            path: path.to_path_buf(),
            reason: format!("read: {e}"),
        })?;

        let mut records = Vec::new();
        let mut stats = ReplayStats::default();
        let mut valid_end = 0usize;
        let mut saw_manifest = false;
        let mut offset = 0usize;
        while offset < raw.len() {
            let Some(nl) = raw[offset..].iter().position(|&b| b == b'\n') else {
                break; // torn final write: no newline
            };
            let line_end = offset + nl;
            let Ok(line) = std::str::from_utf8(&raw[offset..line_end]) else {
                break;
            };
            let Some(rest) = parse_line(line) else {
                break;
            };
            if !saw_manifest {
                let found = match rest.strip_prefix("manifest ") {
                    Some(hex) => hex.to_string(),
                    None => break,
                };
                if found != manifest.hex() {
                    return Err(SweepError::JournalMismatch {
                        path: path.to_path_buf(),
                        expected: manifest.hex(),
                        found,
                    });
                }
                saw_manifest = true;
            } else {
                let Some(rec) = parse_record(rest) else {
                    break;
                };
                records.push(rec);
                stats.replayed += 1;
            }
            offset = line_end + 1;
            valid_end = offset;
        }
        stats.dropped_bytes = (raw.len() - valid_end) as u64;
        if stats.dropped_bytes > 0 {
            file.set_len(valid_end as u64).map_err(|e| SweepError::Journal {
                path: path.to_path_buf(),
                reason: format!("truncate torn tail: {e}"),
            })?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| SweepError::Journal {
            path: path.to_path_buf(),
            reason: format!("seek: {e}"),
        })?;

        let mut journal = Journal { path: path.to_path_buf(), file, records: stats.replayed };
        if !saw_manifest {
            // Fresh (or fully torn) journal: write the manifest record.
            journal.append_line(&format!("manifest {}", manifest.hex()))?;
        }
        Ok((journal, records, stats))
    }

    /// Appends a settled cell outcome and flushes it to the OS, so the
    /// record survives a `kill -9` of this process.
    pub fn append(&mut self, cell: &str, outcome: &CellOutcome) -> Result<(), SweepError> {
        debug_assert!(
            !cell.chars().any(|c| c.is_whitespace()),
            "cell keys must be whitespace-free tokens"
        );
        let rest = match outcome {
            CellOutcome::Done(payload) => format!("done {cell} {}", to_hex(payload)),
            CellOutcome::Failed { kind, message, attempts } => {
                format!("fail {cell} {kind} {attempts} {}", to_hex(message.as_bytes()))
            }
        };
        self.append_line(&rest)?;
        self.records += 1;
        Ok(())
    }

    /// Records appended or replayed so far (excluding the manifest).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncates `bytes` off the end of the file — the journal-
    /// truncation fault hook. The in-memory record count is left
    /// untouched; a subsequent [`Journal::open`] observes the torn
    /// tail exactly as a crashed writer would have left it.
    pub fn truncate_tail_for_fault(&mut self, bytes: u64) -> Result<(), SweepError> {
        let len = self.file.metadata().map_err(|e| self.err(format!("metadata: {e}")))?.len();
        self.file
            .set_len(len.saturating_sub(bytes))
            .map_err(|e| self.err(format!("fault truncate: {e}")))?;
        self.file.seek(SeekFrom::End(0)).map_err(|e| self.err(format!("seek: {e}")))?;
        Ok(())
    }

    fn err(&self, reason: String) -> SweepError {
        SweepError::Journal { path: self.path.clone(), reason }
    }

    fn append_line(&mut self, rest: &str) -> Result<(), SweepError> {
        let line = format!("{JOURNAL_TAG} {:016x} {rest}\n", fnv64(rest));
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| self.err(format!("append: {e}")))
    }
}

/// Validates one line's tag and checksum, returning the record body.
fn parse_line(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(JOURNAL_TAG)?.strip_prefix(' ')?;
    let (check, body) = rest.split_once(' ')?;
    let check = u64::from_str_radix(check, 16).ok()?;
    if check != fnv64(body) {
        return None;
    }
    Some(body)
}

fn parse_record(body: &str) -> Option<JournalRecord> {
    let (kind, rest) = body.split_once(' ')?;
    match kind {
        "done" => {
            let (cell, hex) = rest.split_once(' ')?;
            Some(JournalRecord {
                cell: cell.to_string(),
                outcome: CellOutcome::Done(from_hex(hex)?),
            })
        }
        "fail" => {
            let (cell, rest) = rest.split_once(' ')?;
            let (err_kind, rest) = rest.split_once(' ')?;
            let (attempts, hex) = rest.split_once(' ')?;
            Some(JournalRecord {
                cell: cell.to_string(),
                outcome: CellOutcome::Failed {
                    kind: err_kind.to_string(),
                    message: String::from_utf8(from_hex(hex)?).ok()?,
                    attempts: attempts.parse().ok()?,
                },
            })
        }
        _ => None,
    }
}

/// Folds replayed records into a per-cell map (last record wins, which
/// only matters if a crashed run managed to double-write a cell).
pub fn settled_map(records: Vec<JournalRecord>) -> HashMap<String, CellOutcome> {
    records.into_iter().map(|r| (r.cell, r.outcome)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dvr-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn digest() -> Digest128 {
        manifest_digest(&["a".into(), "b".into()])
    }

    #[test]
    fn roundtrip_and_resume() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("j.dvrj");
        let (mut j, replayed, stats) = Journal::open(&path, digest()).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(stats, ReplayStats::default());
        j.append("a", &CellOutcome::Done(vec![1, 2, 3])).unwrap();
        j.append(
            "b",
            &CellOutcome::Failed {
                kind: "deadlock".into(),
                message: "no commit for 1000 cycles".into(),
                attempts: 2,
            },
        )
        .unwrap();
        drop(j);

        let (j2, replayed, stats) = Journal::open(&path, digest()).unwrap();
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.dropped_bytes, 0);
        assert_eq!(j2.records(), 2);
        assert_eq!(replayed[0].cell, "a");
        assert_eq!(replayed[0].outcome, CellOutcome::Done(vec![1, 2, 3]));
        match &replayed[1].outcome {
            CellOutcome::Failed { kind, message, attempts } => {
                assert_eq!(kind, "deadlock");
                assert_eq!(message, "no commit for 1000 cycles");
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected failure, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("j.dvrj");
        let (mut j, _, _) = Journal::open(&path, digest()).unwrap();
        j.append("a", &CellOutcome::Done(vec![7])).unwrap();
        j.append("b", &CellOutcome::Done(vec![8])).unwrap();
        drop(j);
        // Chop mid-record, as a kill -9 during the final write would.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();

        let (j2, replayed, stats) = Journal::open(&path, digest()).unwrap();
        assert_eq!(stats.replayed, 1, "torn record dropped");
        assert!(stats.dropped_bytes > 0);
        assert_eq!(replayed[0].cell, "a");
        drop(j2);
        // The torn bytes are gone from disk and replay is now clean.
        let (_, replayed, stats) = Journal::open(&path, digest()).unwrap();
        assert_eq!(stats.dropped_bytes, 0);
        assert_eq!(replayed.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_checksum_ends_replay() {
        let dir = tmpdir("check");
        let path = dir.join("j.dvrj");
        let (mut j, _, _) = Journal::open(&path, digest()).unwrap();
        j.append("a", &CellOutcome::Done(vec![1])).unwrap();
        j.append("b", &CellOutcome::Done(vec![2])).unwrap();
        drop(j);
        // Flip a payload byte in record "a": its checksum now fails, so
        // replay keeps nothing (records after a bad one are dropped too).
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("done a 01", "done a 02", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        let (_, replayed, stats) = Journal::open(&path, digest()).unwrap();
        assert_eq!(replayed.len(), 0);
        assert!(stats.dropped_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_mismatch_is_refused() {
        let dir = tmpdir("mismatch");
        let path = dir.join("j.dvrj");
        let (mut j, _, _) = Journal::open(&path, digest()).unwrap();
        j.append("a", &CellOutcome::Done(vec![1])).unwrap();
        drop(j);
        let other = manifest_digest(&["a".into(), "b".into(), "c".into()]);
        match Journal::open(&path, other) {
            Err(SweepError::JournalMismatch { expected, found, .. }) => {
                assert_eq!(expected, other.hex());
                assert_eq!(found, digest().hex());
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_truncation_behaves_like_a_crash() {
        let dir = tmpdir("fault");
        let path = dir.join("j.dvrj");
        let (mut j, _, _) = Journal::open(&path, digest()).unwrap();
        j.append("a", &CellOutcome::Done(vec![1])).unwrap();
        j.append("b", &CellOutcome::Done(vec![2])).unwrap();
        j.truncate_tail_for_fault(3).unwrap();
        drop(j);
        let (_, replayed, stats) = Journal::open(&path, digest()).unwrap();
        assert_eq!(replayed.len(), 1, "only the torn record is lost");
        assert!(stats.dropped_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_digest_is_order_sensitive() {
        let a = manifest_digest(&["x".into(), "y".into()]);
        let b = manifest_digest(&["y".into(), "x".into()]);
        assert_ne!(a, b);
    }
}
