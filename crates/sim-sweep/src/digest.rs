//! A 128-bit content digest for cache keys and integrity checksums.
//!
//! Two independent FNV-1a streams (different offset bases, the second
//! fed a permuted byte stream) concatenated to 128 bits. Not
//! cryptographic — the cache is a local trust domain — but wide enough
//! that accidental collisions across a design-space sweep are
//! negligible, and cheap enough to hash every payload on both the
//! write and the read path.

/// A 128-bit digest, rendered as 32 lowercase hex characters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Digest128 {
    /// Low 64 bits (the primary FNV-1a stream).
    pub lo: u64,
    /// High 64 bits (the permuted secondary stream).
    pub hi: u64,
}

impl Digest128 {
    /// Renders the digest as 32 hex characters (`lo` first).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.lo, self.hi)
    }

    /// Parses a [`Digest128::hex`] rendering. Returns `None` for
    /// anything that is not exactly 32 hex characters.
    pub fn from_hex(s: &str) -> Option<Digest128> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let lo = u64::from_str_radix(&s[..16], 16).ok()?;
        let hi = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest128 { lo, hi })
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Offset basis for the secondary stream (FNV offset xor an arbitrary
/// odd constant), so the two 64-bit halves are not trivially related.
const FNV_OFFSET_HI: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// Incremental hasher producing a [`Digest128`].
#[derive(Clone, Debug)]
pub struct Hasher {
    lo: u64,
    hi: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the offset bases.
    pub fn new() -> Self {
        Hasher { lo: FNV_OFFSET, hi: FNV_OFFSET_HI }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b ^ 0xa5)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, length-prefixed so field boundaries can't alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Finalizes the digest (the hasher may keep being fed afterwards).
    pub fn finish(&self) -> Digest128 {
        Digest128 { lo: self.lo, hi: self.hi }
    }
}

/// One-shot digest of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> Digest128 {
    let mut h = Hasher::new();
    h.write(bytes);
    h.finish()
}

/// One-shot 64-bit FNV-1a of a string (journal line checksums, jitter
/// seeding — places where 64 bits suffice).
pub fn fnv64(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Encodes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes lowercase/uppercase hex back to bytes. `None` on odd length
/// or a non-hex character. The empty string decodes to an empty vec.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for i in (0..b.len()).step_by(2) {
        let chunk = std::str::from_utf8(&b[i..i + 2]).ok()?;
        out.push(u8::from_str_radix(chunk, 16).ok()?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        let a = digest_bytes(b"hello");
        assert_eq!(a, digest_bytes(b"hello"));
        assert_ne!(a, digest_bytes(b"hellp"));
        assert_ne!(a.lo, a.hi, "streams must be independent");
    }

    #[test]
    fn hex_roundtrips() {
        let d = digest_bytes(b"roundtrip");
        assert_eq!(Digest128::from_hex(&d.hex()), Some(d));
        assert_eq!(d.hex().len(), 32);
        assert!(Digest128::from_hex("xyz").is_none());
        assert!(Digest128::from_hex(&d.hex()[1..]).is_none());
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = Hasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Hasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_codec_roundtrips() {
        let data = [0u8, 1, 0x7f, 0xff, 0xa5];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex");
    }
}
