//! The content-addressed result cache (`.dvr-cache/`).
//!
//! Entries are keyed by a [`Digest128`] of (program bytes, canonical
//! config, code version) — computed by the integration layer — and
//! named `<key-hex>.res`. Every entry carries its own payload checksum;
//! a corrupt or truncated entry is **quarantined** (moved into
//! `quarantine/` for post-mortem) and reported as a typed
//! [`SweepError::CacheCorrupt`], never silently served. Writes go
//! through a temp file + rename so a crashed writer can leave at worst
//! a stale temp file, never a half-visible entry.
//!
//! ## Entry format (little-endian)
//!
//! ```text
//! "DVRC" | version u32 | key.lo u64 | key.hi u64 | len u64 | payload | check.lo u64 | check.hi u64
//! ```
//!
//! where `check` is the [`digest_bytes`] of the payload. The embedded
//! key guards against an entry renamed under the wrong name.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::digest::{digest_bytes, Digest128};
use crate::error::SweepError;

/// Cache entry format version (bump on any layout change).
pub const CACHE_ENTRY_VERSION: u32 = 1;
const CACHE_MAGIC: &[u8; 4] = b"DVRC";
const ENTRY_EXT: &str = "res";

/// Outcome of a cache lookup.
#[derive(Clone, PartialEq, Debug)]
pub enum CacheLookup {
    /// Entry present and intact: the cached payload.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// Entry present but corrupt; it has been quarantined and the
    /// typed error describes why. The caller must recompute.
    Corrupt(SweepError),
}

/// Monotonic counters for one cache handle's lifetime.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups served from an intact entry.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found a corrupt entry (now quarantined).
    pub corrupt: u64,
    /// Entries written.
    pub stores: u64,
}

/// What [`ResultCache::gc`] removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcStats {
    /// Live entries kept.
    pub kept: u64,
    /// Unreferenced entries removed.
    pub removed: u64,
    /// Quarantined files purged.
    pub quarantine_purged: u64,
}

/// A content-addressed, integrity-checked result cache rooted at one
/// directory. Handles are shareable across threads (`&self` methods;
/// counters are atomic).
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stores: AtomicU64,
    tmp_counter: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    pub fn open(root: &Path) -> Result<ResultCache, SweepError> {
        std::fs::create_dir_all(root.join("quarantine")).map_err(|e| SweepError::Io {
            context: format!("create cache dir {}", root.display()),
            error: e.to_string(),
        })?;
        Ok(ResultCache {
            root: root.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the entry for `key` (whether or not it exists).
    pub fn entry_path(&self, key: Digest128) -> PathBuf {
        self.root.join(format!("{}.{ENTRY_EXT}", key.hex()))
    }

    /// Looks up `key`. A corrupt entry is moved into `quarantine/`
    /// before returning [`CacheLookup::Corrupt`].
    pub fn lookup(&self, key: Digest128) -> CacheLookup {
        let path = self.entry_path(key);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return CacheLookup::Miss;
            }
            Err(e) => {
                // Unreadable counts as corrupt: never silently recompute
                // without surfacing the typed reason.
                return self.quarantine(&path, format!("read: {e}"));
            }
        };
        match decode_entry(&raw, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Hit(payload)
            }
            Err(reason) => self.quarantine(&path, reason),
        }
    }

    /// Stores `payload` under `key` atomically (temp file + rename).
    pub fn store(&self, key: Digest128, payload: &[u8]) -> Result<(), SweepError> {
        let tmp = self.root.join(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = encode_entry(key, payload);
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, self.entry_path(key)))
            .map_err(|e| SweepError::Io {
                context: format!("store cache entry {}", self.entry_path(key).display()),
                error: e.to_string(),
            })?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flips one payload byte of `key`'s entry on disk — the
    /// cache-corruption fault hook (`--inject-sweep flip=N`). No-op if
    /// the entry does not exist.
    pub fn flip_byte_for_fault(&self, key: Digest128, offset: u64) -> Result<(), SweepError> {
        let path = self.entry_path(key);
        let mut raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => {
                return Err(SweepError::Io {
                    context: format!("fault read {}", path.display()),
                    error: e.to_string(),
                })
            }
        };
        let header = CACHE_MAGIC.len() + 4 + 16 + 8;
        if raw.len() > header {
            let span = (raw.len() - header) as u64;
            let i = header + (offset % span) as usize;
            raw[i] ^= 0xff;
        }
        std::fs::write(&path, &raw).map_err(|e| SweepError::Io {
            context: format!("fault write {}", path.display()),
            error: e.to_string(),
        })
    }

    /// Removes every entry whose key is not in `keep`, plus all
    /// quarantined files — `dvrsim sweep --gc`.
    pub fn gc(&self, keep: &std::collections::HashSet<String>) -> Result<GcStats, SweepError> {
        let mut stats = GcStats::default();
        let read_dir = |p: &Path| {
            std::fs::read_dir(p).map_err(|e| SweepError::Io {
                context: format!("gc read dir {}", p.display()),
                error: e.to_string(),
            })
        };
        for entry in read_dir(&self.root)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            let is_entry = path.extension().and_then(|e| e.to_str()) == Some(ENTRY_EXT);
            if is_entry && keep.contains(stem) {
                stats.kept += 1;
            } else {
                // Unreferenced entries and stale temp files alike.
                if std::fs::remove_file(&path).is_ok() {
                    stats.removed += 1;
                }
            }
        }
        for entry in read_dir(&self.root.join("quarantine"))? {
            let Ok(entry) = entry else { continue };
            if std::fs::remove_file(entry.path()).is_ok() {
                stats.quarantine_purged += 1;
            }
        }
        Ok(stats)
    }

    /// Lifetime counters for this handle.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    fn quarantine(&self, path: &Path, reason: String) -> CacheLookup {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        // Find a free quarantine slot so repeated corruption of the
        // same key preserves every bad specimen.
        for n in 0..u32::MAX {
            let dest = self.root.join("quarantine").join(format!("{name}.{n}"));
            if !dest.exists() {
                let _ = std::fs::rename(path, &dest);
                break;
            }
        }
        CacheLookup::Corrupt(SweepError::CacheCorrupt { path: path.to_path_buf(), reason })
    }
}

fn encode_entry(key: Digest128, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 44);
    out.extend_from_slice(CACHE_MAGIC);
    out.extend_from_slice(&CACHE_ENTRY_VERSION.to_le_bytes());
    out.extend_from_slice(&key.lo.to_le_bytes());
    out.extend_from_slice(&key.hi.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let check = digest_bytes(payload);
    out.extend_from_slice(&check.lo.to_le_bytes());
    out.extend_from_slice(&check.hi.to_le_bytes());
    out
}

struct Cursor<'a> {
    raw: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.raw.len() - self.i < n {
            return Err(format!("truncated at byte {} (need {n} more)", self.i));
        }
        let s = &self.raw[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn take_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_entry(raw: &[u8], key: Digest128) -> Result<Vec<u8>, String> {
    let mut c = Cursor { raw, i: 0 };
    if c.take(4)? != CACHE_MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(c.take(4)?.try_into().unwrap());
    if version != CACHE_ENTRY_VERSION {
        return Err(format!("unknown entry version {version}"));
    }
    let lo = c.take_u64()?;
    let hi = c.take_u64()?;
    if (Digest128 { lo, hi }) != key {
        return Err("entry keyed under a different digest".into());
    }
    let len = c.take_u64()? as usize;
    let payload = c.take(len)?.to_vec();
    let clo = c.take_u64()?;
    let chi = c.take_u64()?;
    if c.i != raw.len() {
        return Err(format!("{} trailing byte(s)", raw.len() - c.i));
    }
    let check = digest_bytes(&payload);
    if check != (Digest128 { lo: clo, hi: chi }) {
        return Err("payload checksum mismatch".into());
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_bytes;

    fn cache(tag: &str) -> (ResultCache, PathBuf) {
        let d = std::env::temp_dir().join(format!("dvr-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        (ResultCache::open(&d).unwrap(), d)
    }

    #[test]
    fn store_then_hit() {
        let (c, d) = cache("hit");
        let key = digest_bytes(b"cell-1");
        assert_eq!(c.lookup(key), CacheLookup::Miss);
        c.store(key, b"payload").unwrap();
        assert_eq!(c.lookup(key), CacheLookup::Hit(b"payload".to_vec()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.corrupt), (1, 1, 1, 0));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let (c, d) = cache("corrupt");
        let key = digest_bytes(b"cell-2");
        c.store(key, b"precious result").unwrap();
        // Flip one payload byte on disk.
        c.flip_byte_for_fault(key, 3).unwrap();
        match c.lookup(key) {
            CacheLookup::Corrupt(SweepError::CacheCorrupt { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // The entry is gone (quarantined): next lookup is a clean miss.
        assert_eq!(c.lookup(key), CacheLookup::Miss);
        let quarantined: Vec<_> = std::fs::read_dir(d.join("quarantine")).unwrap().collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(c.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn truncated_entry_is_corrupt() {
        let (c, d) = cache("trunc");
        let key = digest_bytes(b"cell-3");
        c.store(key, b"0123456789").unwrap();
        let path = c.entry_path(key);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 4]).unwrap();
        assert!(matches!(c.lookup(key), CacheLookup::Corrupt(_)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wrong_key_name_is_corrupt() {
        let (c, d) = cache("wrongkey");
        let a = digest_bytes(b"cell-a");
        let b = digest_bytes(b"cell-b");
        c.store(a, b"for a").unwrap();
        std::fs::rename(c.entry_path(a), c.entry_path(b)).unwrap();
        match c.lookup(b) {
            CacheLookup::Corrupt(SweepError::CacheCorrupt { reason, .. }) => {
                assert!(reason.contains("different digest"), "{reason}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn gc_keeps_referenced_entries_and_purges_quarantine() {
        let (c, d) = cache("gc");
        let keep_key = digest_bytes(b"keep");
        let drop_key = digest_bytes(b"drop");
        c.store(keep_key, b"k").unwrap();
        c.store(drop_key, b"d").unwrap();
        // Put something in quarantine.
        c.store(digest_bytes(b"bad"), b"x").unwrap();
        c.flip_byte_for_fault(digest_bytes(b"bad"), 0).unwrap();
        let _ = c.lookup(digest_bytes(b"bad"));

        let keep: std::collections::HashSet<String> = [keep_key.hex()].into_iter().collect();
        let stats = c.gc(&keep).unwrap();
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.quarantine_purged, 1);
        assert_eq!(c.lookup(keep_key), CacheLookup::Hit(b"k".to_vec()));
        assert_eq!(c.lookup(drop_key), CacheLookup::Miss);
        let _ = std::fs::remove_dir_all(&d);
    }
}
