//! Typed sweep errors.
//!
//! Every recovery path in the sweep layer is driven by a variant here,
//! mirroring how `SimError` types run failures inside the simulator:
//! callers match on the variant (or its stable [`SweepError::kind`]
//! label) instead of scraping message strings.

use std::path::PathBuf;

/// An error raised by the sweep layer (journal, cache, supervisor, or
/// the sweep driver itself).
///
/// Carries rendered messages rather than source errors so values stay
/// `Clone + PartialEq` — sweep tests assert on exact errors, and cell
/// outcomes are persisted to the journal as text anyway.
#[derive(Clone, PartialEq, Debug)]
pub enum SweepError {
    /// A cache entry failed its integrity check (bad magic, truncated,
    /// checksum mismatch, or keyed under the wrong digest). The entry
    /// has already been quarantined; the caller recomputes.
    CacheCorrupt {
        /// Path of the offending entry (pre-quarantine).
        path: PathBuf,
        /// What the integrity check found.
        reason: String,
    },
    /// The journal file exists but cannot be read or written.
    Journal {
        /// Journal path.
        path: PathBuf,
        /// What went wrong.
        reason: String,
    },
    /// The journal belongs to a different sweep grid: resuming it with
    /// this manifest would mix results from incompatible runs.
    JournalMismatch {
        /// Journal path.
        path: PathBuf,
        /// Manifest digest of the requested sweep.
        expected: String,
        /// Manifest digest recorded in the journal.
        found: String,
    },
    /// A filesystem operation outside the journal failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The rendered I/O error.
        error: String,
    },
    /// A supervised worker exceeded its per-cell wall-clock budget on
    /// every attempt.
    Timeout {
        /// Cell key.
        cell: String,
        /// The configured per-attempt budget.
        timeout_ms: u64,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// A supervised worker died or spoke garbage on every attempt
    /// (spawn failure, killed, crash, protocol violation).
    Worker {
        /// Cell key.
        cell: String,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The last attempt's failure.
        message: String,
    },
    /// The simulation itself failed with a typed outcome (deterministic
    /// — not retried).
    Cell {
        /// Cell key.
        cell: String,
        /// Stable error-kind label (e.g. `deadlock`, `exec_fault`).
        kind: String,
        /// Rendered error message.
        message: String,
    },
    /// The sweep stopped early (injected crash or journal failure);
    /// completed cells are journaled and a rerun resumes from them.
    Aborted {
        /// Journal records written before the stop.
        records: u64,
    },
    /// Invalid sweep configuration (bad grid, bad fault spec, ...).
    Config(String),
}

impl SweepError {
    /// Stable machine-readable label for dashboards and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            SweepError::CacheCorrupt { .. } => "cache_corrupt",
            SweepError::Journal { .. } => "journal",
            SweepError::JournalMismatch { .. } => "journal_mismatch",
            SweepError::Io { .. } => "io",
            SweepError::Timeout { .. } => "timeout",
            SweepError::Worker { .. } => "worker",
            SweepError::Cell { .. } => "cell_failed",
            SweepError::Aborted { .. } => "aborted",
            SweepError::Config(_) => "config",
        }
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::CacheCorrupt { path, reason } => {
                write!(f, "corrupt cache entry {} ({reason}); quarantined", path.display())
            }
            SweepError::Journal { path, reason } => {
                write!(f, "journal {}: {reason}", path.display())
            }
            SweepError::JournalMismatch { path, expected, found } => write!(
                f,
                "journal {} records a different sweep (manifest {found}, want {expected}); \
                 use a fresh --out directory",
                path.display()
            ),
            SweepError::Io { context, error } => write!(f, "{context}: {error}"),
            SweepError::Timeout { cell, timeout_ms, attempts } => {
                write!(f, "cell {cell}: worker exceeded {timeout_ms} ms on {attempts} attempt(s)")
            }
            SweepError::Worker { cell, attempts, message } => {
                write!(f, "cell {cell}: worker failed on {attempts} attempt(s): {message}")
            }
            SweepError::Cell { cell, kind, message } => {
                write!(f, "cell {cell} failed ({kind}): {message}")
            }
            SweepError::Aborted { records } => {
                write!(f, "sweep aborted after {records} journal record(s); rerun to resume")
            }
            SweepError::Config(msg) => write!(f, "sweep config: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let e = SweepError::CacheCorrupt { path: "x.res".into(), reason: "checksum".into() };
        assert_eq!(e.kind(), "cache_corrupt");
        assert!(e.to_string().contains("quarantined"));
        assert_eq!(SweepError::Aborted { records: 3 }.kind(), "aborted");
        assert_eq!(
            SweepError::Timeout { cell: "c".into(), timeout_ms: 5, attempts: 2 }.kind(),
            "timeout"
        );
    }
}
