//! Deterministic fault injection for the sweep layer.
//!
//! Extends the PR-2 philosophy (seeded, reproducible faults in
//! `sim_mem::FaultConfig`) up the stack: kill or hang the Nth spawned
//! worker, flip a byte in the Nth cache entry written, truncate the
//! journal after the Nth record, or abort the whole sweep after the
//! Nth record (a simulated `kill -9` that tests can drive in-process).
//! All triggers count deterministic events, so every recovery path is
//! replayable in CI.
//!
//! Specs parse from `--inject-sweep` strings such as
//! `kill=1,flip=2,trunc=3,trunc-bytes=5,abort=4,hang=1`.

use crate::error::SweepError;

/// Sweep-layer fault plan. `0` disables a trigger; counts are 1-based
/// over the corresponding event stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepFault {
    /// SIGKILL the Nth spawned worker process right after spawn.
    pub kill_worker_at: u64,
    /// Make the Nth spawned worker hang (the supervisor appends the
    /// worker's `--test-hang` flag), exercising the timeout path.
    pub hang_worker_at: u64,
    /// Flip one byte of the Nth cache entry written by this sweep.
    pub flip_cache_at: u64,
    /// Truncate the journal tail right after the Nth record is
    /// appended (implies an abort at the same point — a torn write
    /// never continues).
    pub truncate_journal_at: u64,
    /// How many bytes [`SweepFault::truncate_journal_at`] chops.
    pub truncate_bytes: u64,
    /// Abort the sweep (simulated crash) after the Nth journal record.
    pub abort_after_records: u64,
}

impl SweepFault {
    /// Whether any trigger is armed.
    pub fn is_active(&self) -> bool {
        self.kill_worker_at != 0
            || self.hang_worker_at != 0
            || self.flip_cache_at != 0
            || self.truncate_journal_at != 0
            || self.abort_after_records != 0
    }

    /// Parses an `--inject-sweep` spec: comma-separated `key=value`
    /// pairs from `kill`, `hang`, `flip`, `trunc`, `trunc-bytes`,
    /// `abort`. The empty string is the inactive plan.
    pub fn parse(spec: &str) -> Result<SweepFault, SweepError> {
        let mut f = SweepFault { truncate_bytes: 3, ..SweepFault::default() };
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| SweepError::Config(format!("bad fault spec `{part}`")))?;
            let n: u64 = value.parse().map_err(|_| {
                SweepError::Config(format!("bad fault count `{value}` in `{part}`"))
            })?;
            match key {
                "kill" => f.kill_worker_at = n,
                "hang" => f.hang_worker_at = n,
                "flip" => f.flip_cache_at = n,
                "trunc" => f.truncate_journal_at = n,
                "trunc-bytes" => f.truncate_bytes = n,
                "abort" => f.abort_after_records = n,
                _ => {
                    return Err(SweepError::Config(format!(
                        "unknown fault trigger `{key}` (kill|hang|flip|trunc|trunc-bytes|abort)"
                    )))
                }
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let f = SweepFault::parse("kill=1,flip=2,trunc=3,trunc-bytes=7,abort=4,hang=5").unwrap();
        assert_eq!(f.kill_worker_at, 1);
        assert_eq!(f.flip_cache_at, 2);
        assert_eq!(f.truncate_journal_at, 3);
        assert_eq!(f.truncate_bytes, 7);
        assert_eq!(f.abort_after_records, 4);
        assert_eq!(f.hang_worker_at, 5);
        assert!(f.is_active());
    }

    #[test]
    fn empty_spec_is_inactive() {
        let f = SweepFault::parse("").unwrap();
        assert!(!f.is_active());
        assert_eq!(f.truncate_bytes, 3, "default chop size");
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(matches!(SweepFault::parse("zap=1"), Err(SweepError::Config(_))));
        assert!(matches!(SweepFault::parse("kill"), Err(SweepError::Config(_))));
        assert!(matches!(SweepFault::parse("kill=x"), Err(SweepError::Config(_))));
    }
}
