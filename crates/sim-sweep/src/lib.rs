//! # sim-sweep — crash-safe design-space sweeps
//!
//! The sweep layer turns a grid of (workload, config, technique) cells
//! into a job queue that survives everything the host can throw at it:
//!
//! - a **write-ahead journal** ([`journal`]) records every settled cell
//!   immediately, so a sweep killed at any byte offset resumes exactly
//!   where it stopped — completed cells are never recomputed;
//! - a **content-addressed result cache** ([`cache`]) keyed by a digest
//!   of (program bytes, canonical config, code version) makes repeated
//!   sweep points free across runs; entries carry checksums and corrupt
//!   ones are quarantined with a typed [`SweepError::CacheCorrupt`],
//!   never silently served;
//! - a **worker supervisor** ([`supervisor`]) runs cells in spawned
//!   processes with per-cell wall-clock timeouts and bounded retries
//!   (exponential backoff + deterministic seeded jitter);
//! - **fault injection** ([`fault`]) extends the PR-2 framework to this
//!   layer: worker kills, cache byte flips, journal truncation, and
//!   simulated crashes, all at deterministic seeded points.
//!
//! The crate is simulator-agnostic: a [`CellRunner`] supplies the
//! domain pieces (how to compute a cell, its worker argv, its cache
//! key, and how to render its payload into `summary.json`), which is
//! what keeps `sim-sweep` below `dvr-sim` in the crate graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod digest;
pub mod error;
pub mod fault;
pub mod journal;
pub mod supervisor;

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub use cache::{CacheLookup, CacheStats, GcStats, ResultCache, CACHE_ENTRY_VERSION};
pub use digest::{digest_bytes, fnv64, from_hex, to_hex, Digest128, Hasher};
pub use error::SweepError;
pub use fault::SweepFault;
pub use journal::{manifest_digest, Journal, JournalRecord, ReplayStats};
pub use supervisor::{
    backoff_delay_ms, fail_line, ok_line, parse_worker_output, Supervisor, WORKER_FAIL_TAG,
    WORKER_HANG_FLAG, WORKER_OK_TAG,
};

/// Version stamp of the `summary.json` layout.
pub const SUMMARY_VERSION: u32 = 1;

/// How one cell of the sweep ended. This is what the journal persists
/// and what `summary.json` renders.
#[derive(Clone, PartialEq, Debug)]
pub enum CellOutcome {
    /// The cell completed; the opaque payload is the encoded result.
    Done(Vec<u8>),
    /// The cell failed with a typed outcome (`--keep-going` renders it
    /// as data instead of aborting the sweep).
    Failed {
        /// Stable error-kind label.
        kind: String,
        /// Rendered error message.
        message: String,
        /// Attempts consumed (1 unless the supervisor retried).
        attempts: u32,
    },
}

/// Domain hooks supplied by the integration layer (dvr-sim).
pub trait CellRunner: Sync {
    /// Computes the cell in-process, returning the encoded payload or
    /// a typed `(kind, message)` failure. Deterministic failures are
    /// not retried.
    fn run(&self, cell: &str) -> Result<Vec<u8>, (String, String)>;

    /// Argv for computing the cell in a worker process (`--jobs`
    /// mode). `None` forces in-process execution for this cell.
    fn worker_argv(&self, cell: &str) -> Option<Vec<String>> {
        let _ = cell;
        None
    }

    /// Content-address of the cell's result, or `None` when the cell
    /// must not be cached (e.g. configs with side-band state).
    fn cache_key(&self, cell: &str) -> Option<Digest128> {
        let _ = cell;
        None
    }

    /// Renders a completed payload as one JSON value for
    /// `summary.json`. Errors become `payload_decode` failures.
    fn summarize(&self, cell: &str, payload: &[u8]) -> Result<String, String>;
}

/// Sweep execution policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepOptions {
    /// Worker processes to run concurrently; `0` = in-process,
    /// sequential (the deterministic mode tests rely on).
    pub jobs: usize,
    /// Per-attempt wall-clock budget per cell in ms (`0` = unlimited;
    /// only enforceable in `--jobs` mode, where the cell is a process
    /// that can be killed).
    pub timeout_ms: u64,
    /// Retries per cell after the first attempt (infrastructure
    /// failures only — typed simulation failures never retry).
    pub retries: u32,
    /// Base backoff between attempts in ms.
    pub backoff_ms: u64,
    /// Seed for backoff jitter.
    pub seed: u64,
    /// Record failed cells in `summary.json` instead of aborting.
    pub keep_going: bool,
    /// Armed fault plan.
    pub fault: SweepFault,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            timeout_ms: 0,
            retries: 2,
            backoff_ms: 50,
            seed: 42,
            keep_going: false,
            fault: SweepFault::default(),
        }
    }
}

/// Counters describing where a sweep's results came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepStats {
    /// Cells in the manifest.
    pub total: u64,
    /// Cells settled by journal replay (resume).
    pub from_journal: u64,
    /// Cells settled by a cache hit.
    pub from_cache: u64,
    /// Cells computed this run.
    pub computed: u64,
    /// Cells whose outcome is a typed failure.
    pub failed: u64,
    /// Worker processes spawned.
    pub spawns: u64,
    /// Journal replay statistics.
    pub replay: ReplayStats,
    /// Cache counters (zero when no cache was attached).
    pub cache: CacheStats,
}

/// A completed sweep: outcomes parallel to the manifest plus counters
/// and non-fatal warnings (quarantined cache entries, failed stores).
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRun {
    /// Per-cell outcomes, in manifest order.
    pub outcomes: Vec<CellOutcome>,
    /// Where the results came from.
    pub stats: SweepStats,
    /// Non-fatal events worth surfacing (typed, already recovered).
    pub warnings: Vec<SweepError>,
}

/// Executes (or resumes) a sweep over `cells`.
///
/// Every settled cell is journaled at `journal_path` the moment its
/// outcome is known; rerunning with the same manifest resumes from the
/// journal. With a cache attached, unjournaled cells are first looked
/// up by content address. The remainder is computed — in-process and
/// sequential with `jobs == 0`, otherwise via supervised worker
/// processes.
pub fn run_sweep<R: CellRunner>(
    cells: &[String],
    runner: &R,
    journal_path: &Path,
    cache: Option<&ResultCache>,
    opts: &SweepOptions,
) -> Result<SweepRun, SweepError> {
    validate_manifest(cells)?;
    let manifest = manifest_digest(cells);
    let (journal, replayed, replay) = Journal::open(journal_path, manifest)?;

    let mut settled: Vec<Option<CellOutcome>> = vec![None; cells.len()];
    let mut stats = SweepStats { total: cells.len() as u64, replay, ..SweepStats::default() };
    let mut warnings = Vec::new();
    for (cell, outcome) in journal::settled_map(replayed) {
        if let Some(i) = cells.iter().position(|c| *c == cell) {
            if settled[i].is_none() {
                stats.from_journal += 1;
            }
            settled[i] = Some(outcome);
        }
    }

    let state = DriverState {
        journal: Mutex::new(journal),
        fault: opts.fault,
        abort: AtomicBool::new(false),
        fatal: Mutex::new(None),
        spawns: AtomicU64::new(0),
        stores: AtomicU64::new(0),
    };

    // Cache pre-pass: settle unjournaled cells whose results are
    // already content-addressed. Hits are journaled like computed
    // results, so a later resume never re-reads the cache.
    let mut pending = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        if settled[i].is_some() {
            continue;
        }
        let hit = match (cache, runner.cache_key(cell)) {
            (Some(cache), Some(key)) => match cache.lookup(key) {
                CacheLookup::Hit(payload) => Some(CellOutcome::Done(payload)),
                CacheLookup::Miss => None,
                CacheLookup::Corrupt(e) => {
                    warnings.push(e);
                    None
                }
            },
            _ => None,
        };
        match hit {
            Some(outcome) => {
                state.journal_settled(cell, &outcome)?;
                stats.from_cache += 1;
                settled[i] = Some(outcome);
                if state.abort.load(Ordering::SeqCst) {
                    return Err(state.take_fatal());
                }
            }
            None => pending.push(i),
        }
    }

    // Compute the remainder. `try_parallel_map`'s scoped-thread /
    // panic-isolation machinery lives in dvr-sim *above* this crate,
    // so the fan-out here is a plain scoped work-stealing loop with
    // the same shape.
    let threads = if opts.jobs == 0 { 1 } else { opts.jobs };
    let computed: Vec<Option<CellOutcome>> = {
        let next = AtomicU64::new(0);
        let slots: Vec<Mutex<Option<CellOutcome>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(pending.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= pending.len() || state.abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let cell = &cells[pending[i]];
                    let outcome = compute_cell(cell, runner, cache, opts, &state);
                    if let Some(outcome) = outcome {
                        *slots[i].lock().unwrap() = Some(outcome);
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().unwrap()).collect()
    };
    for (slot, outcome) in pending.iter().zip(computed) {
        if let Some(outcome) = outcome {
            stats.computed += 1;
            settled[*slot] = Some(outcome);
        }
    }
    if state.abort.load(Ordering::SeqCst) {
        return Err(state.take_fatal());
    }

    let outcomes: Vec<CellOutcome> =
        settled.into_iter().map(|o| o.expect("every non-aborted cell settles")).collect();
    stats.failed =
        outcomes.iter().filter(|o| matches!(o, CellOutcome::Failed { .. })).count() as u64;
    stats.spawns = state.spawns.load(Ordering::Relaxed);
    if let Some(cache) = cache {
        stats.cache = cache.stats();
    }

    if !opts.keep_going {
        if let Some((i, CellOutcome::Failed { kind, message, .. })) = outcomes
            .iter()
            .enumerate()
            .find(|(_, o)| matches!(o, CellOutcome::Failed { .. }))
            .map(|(i, o)| (i, o.clone()))
        {
            return Err(SweepError::Cell { cell: cells[i].clone(), kind, message });
        }
    }
    Ok(SweepRun { outcomes, stats, warnings })
}

struct DriverState {
    journal: Mutex<Journal>,
    fault: SweepFault,
    abort: AtomicBool,
    fatal: Mutex<Option<SweepError>>,
    spawns: AtomicU64,
    stores: AtomicU64,
}

impl DriverState {
    /// Appends one settled outcome, then applies the journal-level
    /// fault triggers (truncation / simulated crash).
    fn journal_settled(&self, cell: &str, outcome: &CellOutcome) -> Result<(), SweepError> {
        let mut journal = self.journal.lock().unwrap();
        journal.append(cell, outcome)?;
        let records = journal.records();
        if self.fault.truncate_journal_at == records {
            journal.truncate_tail_for_fault(self.fault.truncate_bytes)?;
            self.raise(SweepError::Aborted { records });
        }
        if self.fault.abort_after_records == records {
            self.raise(SweepError::Aborted { records });
        }
        Ok(())
    }

    fn raise(&self, e: SweepError) {
        let mut fatal = self.fatal.lock().unwrap();
        if fatal.is_none() {
            *fatal = Some(e);
        }
        self.abort.store(true, Ordering::SeqCst);
    }

    fn take_fatal(&self) -> SweepError {
        self.fatal.lock().unwrap().take().unwrap_or(SweepError::Aborted { records: 0 })
    }
}

/// Computes one pending cell (worker process or in-process), stores a
/// fresh success in the cache, and journals the outcome. Returns
/// `None` when the cell was abandoned because the sweep is aborting.
fn compute_cell<R: CellRunner>(
    cell: &str,
    runner: &R,
    cache: Option<&ResultCache>,
    opts: &SweepOptions,
    state: &DriverState,
) -> Option<CellOutcome> {
    let result = match (opts.jobs > 0).then(|| runner.worker_argv(cell)).flatten() {
        Some(argv) => {
            let sup = Supervisor {
                timeout_ms: opts.timeout_ms,
                retries: opts.retries,
                backoff_ms: opts.backoff_ms,
                seed: opts.seed,
                fault: &state.fault,
                spawns: &state.spawns,
            };
            sup.run_cell(cell, &argv)
        }
        None => runner.run(cell).map_err(|(kind, message)| SweepError::Cell {
            cell: cell.to_string(),
            kind,
            message,
        }),
    };
    let outcome = match result {
        Ok(payload) => {
            if let (Some(cache), Some(key)) = (cache, runner.cache_key(cell)) {
                if let Err(e) = cache.store(key, &payload) {
                    // A failed store never fails the cell; the result
                    // is in hand and will be journaled.
                    eprintln!("sweep: warning: {e}");
                }
                let n = state.stores.fetch_add(1, Ordering::Relaxed) + 1;
                if state.fault.flip_cache_at == n {
                    let _ = cache.flip_byte_for_fault(key, opts.seed);
                }
            }
            CellOutcome::Done(payload)
        }
        Err(SweepError::Cell { kind, message, .. }) => {
            CellOutcome::Failed { kind, message, attempts: 1 }
        }
        Err(e @ (SweepError::Timeout { .. } | SweepError::Worker { .. })) => {
            let attempts = match &e {
                SweepError::Timeout { attempts, .. } | SweepError::Worker { attempts, .. } => {
                    *attempts
                }
                _ => 1,
            };
            CellOutcome::Failed { kind: e.kind().into(), message: e.to_string(), attempts }
        }
        Err(e) => {
            state.raise(e);
            return None;
        }
    };
    let failed = matches!(outcome, CellOutcome::Failed { .. });
    if let Err(e) = state.journal_settled(cell, &outcome) {
        state.raise(e);
        return None;
    }
    if failed && !opts.keep_going {
        // The failure is journaled (resume won't recompute it); stop
        // handing out further cells.
        state.abort.store(true, Ordering::SeqCst);
        if let CellOutcome::Failed { kind, message, .. } = &outcome {
            state.raise(SweepError::Cell {
                cell: cell.to_string(),
                kind: kind.clone(),
                message: message.clone(),
            });
        }
    }
    Some(outcome)
}

fn validate_manifest(cells: &[String]) -> Result<(), SweepError> {
    if cells.is_empty() {
        return Err(SweepError::Config("empty sweep grid".into()));
    }
    let mut seen = std::collections::HashSet::new();
    for cell in cells {
        if cell.is_empty() || cell.chars().any(|c| c.is_whitespace()) {
            return Err(SweepError::Config(format!(
                "cell key `{cell}` must be a non-empty whitespace-free token"
            )));
        }
        if !seen.insert(cell) {
            return Err(SweepError::Config(format!("duplicate cell key `{cell}`")));
        }
    }
    Ok(())
}

/// Renders the deterministic `summary.json` for a completed sweep: one
/// line per cell in manifest order, no wall-clock fields, so an
/// interrupted-and-resumed sweep is byte-identical to an uninterrupted
/// one.
pub fn render_summary<R: CellRunner>(
    cells: &[String],
    outcomes: &[CellOutcome],
    runner: &R,
) -> String {
    assert_eq!(cells.len(), outcomes.len());
    let ok = outcomes.iter().filter(|o| matches!(o, CellOutcome::Done(_))).count();
    let mut s = format!(
        "{{\"summary_version\":{SUMMARY_VERSION},\"cells\":{},\"ok\":{ok},\"failed\":{},\
         \"results\":[\n",
        cells.len(),
        cells.len() - ok,
    );
    for (i, (cell, outcome)) in cells.iter().zip(outcomes).enumerate() {
        let body = match outcome {
            CellOutcome::Done(payload) => match runner.summarize(cell, payload) {
                Ok(json) => format!("\"status\":\"ok\",\"report\":{json}"),
                Err(e) => format!(
                    "\"status\":\"failed\",\"kind\":\"payload_decode\",\"error\":\"{}\"",
                    escape_json(&e)
                ),
            },
            CellOutcome::Failed { kind, message, attempts } => format!(
                "\"status\":\"failed\",\"kind\":\"{}\",\"attempts\":{attempts},\"error\":\"{}\"",
                escape_json(kind),
                escape_json(message)
            ),
        };
        s.push_str(&format!(
            "{{\"cell\":\"{}\",{body}}}{}\n",
            escape_json(cell),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("]}\n");
    s
}

/// Writes `content` to `path` atomically (temp file + rename), so a
/// crashed writer never leaves a half-written summary.
pub fn write_atomic(path: &Path, content: &str) -> Result<(), SweepError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content).and_then(|()| std::fs::rename(&tmp, path)).map_err(|e| {
        SweepError::Io { context: format!("write {}", path.display()), error: e.to_string() }
    })
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Toy runner: payload is the cell key uppercased; cells starting
    /// with `bad` fail typed; cache key is the digest of the key.
    struct ToyRunner {
        cacheable: bool,
    }

    impl CellRunner for ToyRunner {
        fn run(&self, cell: &str) -> Result<Vec<u8>, (String, String)> {
            if cell.starts_with("bad") {
                return Err(("deadlock".into(), format!("{cell} is stuck")));
            }
            Ok(cell.to_uppercase().into_bytes())
        }

        fn cache_key(&self, cell: &str) -> Option<Digest128> {
            self.cacheable.then(|| digest_bytes(cell.as_bytes()))
        }

        fn summarize(&self, _cell: &str, payload: &[u8]) -> Result<String, String> {
            Ok(format!("\"{}\"", String::from_utf8_lossy(payload)))
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dvr-sweep-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn keys(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sweep_completes_and_summary_is_stable() {
        let d = tmp("basic");
        let cells = keys(&["a", "b", "c"]);
        let runner = ToyRunner { cacheable: false };
        let run =
            run_sweep(&cells, &runner, &d.join("j.dvrj"), None, &SweepOptions::default()).unwrap();
        assert_eq!(run.stats.computed, 3);
        assert_eq!(run.outcomes[0], CellOutcome::Done(b"A".to_vec()));
        let summary = render_summary(&cells, &run.outcomes, &runner);
        assert!(summary.contains("\"cells\":3,\"ok\":3,\"failed\":0"), "{summary}");
        assert!(summary.contains("{\"cell\":\"a\",\"status\":\"ok\",\"report\":\"A\"},"));

        // Rerun: everything comes from the journal, summary identical.
        let rerun =
            run_sweep(&cells, &runner, &d.join("j.dvrj"), None, &SweepOptions::default()).unwrap();
        assert_eq!(rerun.stats.from_journal, 3);
        assert_eq!(rerun.stats.computed, 0);
        assert_eq!(render_summary(&cells, &rerun.outcomes, &runner), summary);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn injected_crash_resumes_byte_identical() {
        let d = tmp("crash");
        let cells = keys(&["a", "b", "c", "d"]);
        let runner = ToyRunner { cacheable: false };
        // Uninterrupted reference.
        let reference =
            run_sweep(&cells, &runner, &d.join("ref.dvrj"), None, &SweepOptions::default())
                .unwrap();
        let reference = render_summary(&cells, &reference.outcomes, &runner);
        for abort_at in 1..=3u64 {
            let journal = d.join(format!("crash{abort_at}.dvrj"));
            let opts = SweepOptions {
                fault: SweepFault { abort_after_records: abort_at, ..Default::default() },
                ..SweepOptions::default()
            };
            match run_sweep(&cells, &runner, &journal, None, &opts) {
                Err(SweepError::Aborted { records }) => assert_eq!(records, abort_at),
                other => panic!("expected abort, got {other:?}"),
            }
            let resumed =
                run_sweep(&cells, &runner, &journal, None, &SweepOptions::default()).unwrap();
            assert_eq!(resumed.stats.from_journal, abort_at);
            assert_eq!(resumed.stats.computed, 4 - abort_at);
            assert_eq!(render_summary(&cells, &resumed.outcomes, &runner), reference);
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn journal_truncation_fault_costs_one_cell_only() {
        let d = tmp("trunc");
        let cells = keys(&["a", "b", "c"]);
        let runner = ToyRunner { cacheable: false };
        let journal = d.join("j.dvrj");
        let opts = SweepOptions {
            fault: SweepFault { truncate_journal_at: 2, truncate_bytes: 4, ..Default::default() },
            ..SweepOptions::default()
        };
        assert!(run_sweep(&cells, &runner, &journal, None, &opts).is_err());
        let resumed = run_sweep(&cells, &runner, &journal, None, &SweepOptions::default()).unwrap();
        // Record 2 was torn, so exactly one journaled record survives.
        assert_eq!(resumed.stats.from_journal, 1);
        assert_eq!(resumed.stats.replay.replayed, 1);
        assert_eq!(resumed.stats.computed, 2);
        assert_eq!(resumed.outcomes[1], CellOutcome::Done(b"B".to_vec()));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn cache_serves_second_run_and_corruption_recomputes() {
        let d = tmp("cache");
        let cells = keys(&["x", "y"]);
        let runner = ToyRunner { cacheable: true };
        let cache = ResultCache::open(&d.join("cache")).unwrap();
        let first =
            run_sweep(&cells, &runner, &d.join("j1.dvrj"), Some(&cache), &SweepOptions::default())
                .unwrap();
        assert_eq!(first.stats.computed, 2);
        assert_eq!(first.stats.cache.stores, 2);

        // Fresh journal, same cache: both cells come from the cache.
        let second =
            run_sweep(&cells, &runner, &d.join("j2.dvrj"), Some(&cache), &SweepOptions::default())
                .unwrap();
        assert_eq!(second.stats.from_cache, 2);
        assert_eq!(second.stats.computed, 0);
        assert_eq!(second.outcomes, first.outcomes);

        // Corrupt one entry: third run recomputes it, warns typed.
        cache.flip_byte_for_fault(digest_bytes(b"x"), 1).unwrap();
        let third =
            run_sweep(&cells, &runner, &d.join("j3.dvrj"), Some(&cache), &SweepOptions::default())
                .unwrap();
        assert_eq!(third.stats.from_cache, 1);
        assert_eq!(third.stats.computed, 1);
        assert_eq!(third.outcomes, first.outcomes);
        assert!(third.warnings.iter().any(|w| w.kind() == "cache_corrupt"), "{:?}", third.warnings);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn typed_failure_aborts_without_keep_going_but_renders_with_it() {
        let d = tmp("fail");
        let cells = keys(&["a", "bad-1", "c"]);
        let runner = ToyRunner { cacheable: false };
        let err =
            run_sweep(&cells, &runner, &d.join("strict.dvrj"), None, &SweepOptions::default())
                .unwrap_err();
        assert_eq!(err.kind(), "cell_failed");

        let run = run_sweep(
            &cells,
            &runner,
            &d.join("keep.dvrj"),
            None,
            &SweepOptions { keep_going: true, ..SweepOptions::default() },
        )
        .unwrap();
        assert_eq!(run.stats.failed, 1);
        let summary = render_summary(&cells, &run.outcomes, &runner);
        assert!(
            summary.contains(
                "{\"cell\":\"bad-1\",\"status\":\"failed\",\"kind\":\"deadlock\",\"attempts\":1,"
            ),
            "{summary}"
        );
        assert!(summary.contains("\"ok\":2,\"failed\":1"), "{summary}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn manifest_validation_rejects_bad_grids() {
        let runner = ToyRunner { cacheable: false };
        let d = tmp("validate");
        let j = d.join("j.dvrj");
        let opts = SweepOptions::default();
        assert!(matches!(run_sweep(&[], &runner, &j, None, &opts), Err(SweepError::Config(_))));
        assert!(matches!(
            run_sweep(&keys(&["a", "a"]), &runner, &j, None, &opts),
            Err(SweepError::Config(_))
        ));
        assert!(matches!(
            run_sweep(&keys(&["a b"]), &runner, &j, None, &opts),
            Err(SweepError::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&d);
    }
}
