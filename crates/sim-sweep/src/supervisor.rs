//! Worker-process supervision: spawn, poll, timeout, retry, backoff.
//!
//! Each cell attempt spawns one worker process speaking a one-line
//! stdout protocol (the sweep sibling of the `sample-worker` line
//! protocol):
//!
//! ```text
//! SWEEPOK1 <hex payload>                 # success
//! SWEEPFAIL1 <error-kind> <hex message>  # typed simulation failure
//! ```
//!
//! Anything else — spawn failure, death by signal, nonzero exit,
//! protocol garbage, or exceeding the per-cell wall-clock budget — is
//! an *infrastructure* failure and is retried with exponential backoff
//! plus deterministic seeded jitter. A `SWEEPFAIL1` line is a *typed,
//! deterministic* simulation outcome and is never retried.
//!
//! Workers are polled with `try_wait` so a hung worker is killed the
//! moment it exceeds its budget instead of wedging the sweep.

use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::digest::{fnv64, from_hex};
use crate::error::SweepError;
use crate::fault::SweepFault;

/// Success line tag of the sweep-worker protocol.
pub const WORKER_OK_TAG: &str = "SWEEPOK1";
/// Typed-failure line tag of the sweep-worker protocol.
pub const WORKER_FAIL_TAG: &str = "SWEEPFAIL1";
/// Flag the supervisor appends to the Nth worker's argv under an
/// injected hang fault; workers honor it by sleeping forever.
pub const WORKER_HANG_FLAG: &str = "--test-hang";

/// Poll interval while waiting on a worker.
const POLL: Duration = Duration::from_millis(2);

/// Shared supervision policy for one sweep run.
#[derive(Debug)]
pub struct Supervisor<'a> {
    /// Per-attempt wall-clock budget in milliseconds (`0` = unlimited).
    pub timeout_ms: u64,
    /// Retries after the first attempt (attempts = retries + 1).
    pub retries: u32,
    /// Base backoff in milliseconds; attempt `k` waits
    /// `base << k + jitter` where jitter is seeded and `< base`.
    pub backoff_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
    /// Armed fault plan.
    pub fault: &'a SweepFault,
    /// Global spawn counter (drives `kill`/`hang` triggers).
    pub spawns: &'a AtomicU64,
}

/// Deterministic backoff delay before retry `attempt` (0-based) of
/// `cell`: exponential in the attempt with seeded jitter so a thundering
/// herd of failed workers does not re-spawn in lockstep, yet every run
/// waits the same amounts.
pub fn backoff_delay_ms(seed: u64, cell: &str, attempt: u32, base_ms: u64) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    // splitmix64 over (seed, cell, attempt) for well-mixed jitter bits.
    let mut z = seed
        .wrapping_add(fnv64(cell))
        .wrapping_add(u64::from(attempt))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (base_ms << attempt.min(6)) + z % base_ms
}

impl Supervisor<'_> {
    /// Runs `argv` for `cell` under supervision, retrying
    /// infrastructure failures up to the retry budget.
    pub fn run_cell(&self, cell: &str, argv: &[String]) -> Result<Vec<u8>, SweepError> {
        assert!(!argv.is_empty(), "worker argv must name a binary");
        let mut last = SweepError::Worker {
            cell: cell.to_string(),
            attempts: 0,
            message: "no attempt made".into(),
        };
        for attempt in 0..=self.retries {
            match self.one_attempt(cell, argv) {
                Ok(payload) => return Ok(payload),
                Err(e @ SweepError::Cell { .. }) => return Err(e),
                Err(e) => {
                    last = stamp_attempts(e, attempt + 1);
                    if attempt < self.retries {
                        std::thread::sleep(Duration::from_millis(backoff_delay_ms(
                            self.seed,
                            cell,
                            attempt,
                            self.backoff_ms,
                        )));
                    }
                }
            }
        }
        Err(last)
    }

    fn one_attempt(&self, cell: &str, argv: &[String]) -> Result<Vec<u8>, SweepError> {
        let n = self.spawns.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cmd = Command::new(&argv[0]);
        cmd.args(&argv[1..]);
        if self.fault.hang_worker_at == n {
            cmd.arg(WORKER_HANG_FLAG);
        }
        cmd.stdin(Stdio::null()).stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = cmd.spawn().map_err(|e| SweepError::Worker {
            cell: cell.to_string(),
            attempts: 0,
            message: format!("spawn: {e}"),
        })?;
        if self.fault.kill_worker_at == n {
            let _ = child.kill();
        }
        let started = Instant::now();
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if self.timeout_ms != 0
                        && started.elapsed() >= Duration::from_millis(self.timeout_ms)
                    {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(SweepError::Timeout {
                            cell: cell.to_string(),
                            timeout_ms: self.timeout_ms,
                            attempts: 0,
                        });
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => {
                    let _ = child.kill();
                    return Err(SweepError::Worker {
                        cell: cell.to_string(),
                        attempts: 0,
                        message: format!("wait: {e}"),
                    });
                }
            }
        };
        // Read output only after exit: worker lines are far below the
        // OS pipe buffer, so a finished worker can never block on it.
        let mut stdout = String::new();
        let mut stderr = String::new();
        if let Some(mut s) = child.stdout.take() {
            use std::io::Read;
            let _ = s.read_to_string(&mut stdout);
        }
        if let Some(mut s) = child.stderr.take() {
            use std::io::Read;
            let _ = s.read_to_string(&mut stderr);
        }
        parse_worker_output(cell, status.success(), &stdout, &stderr)
    }
}

fn stamp_attempts(e: SweepError, attempts: u32) -> SweepError {
    match e {
        SweepError::Worker { cell, message, .. } => SweepError::Worker { cell, attempts, message },
        SweepError::Timeout { cell, timeout_ms, .. } => {
            SweepError::Timeout { cell, timeout_ms, attempts }
        }
        other => other,
    }
}

/// Parses one worker's stdout according to the sweep-worker protocol.
/// Exposed for the in-process unit tests and the serve loop.
pub fn parse_worker_output(
    cell: &str,
    exited_ok: bool,
    stdout: &str,
    stderr: &str,
) -> Result<Vec<u8>, SweepError> {
    let line = stdout.lines().next().unwrap_or("").trim();
    if let Some(hex) = line.strip_prefix(WORKER_OK_TAG).and_then(|r| r.strip_prefix(' ')) {
        if let Some(payload) = from_hex(hex) {
            return Ok(payload);
        }
        return Err(SweepError::Worker {
            cell: cell.to_string(),
            attempts: 0,
            message: "undecodable payload hex".into(),
        });
    }
    if let Some(rest) = line.strip_prefix(WORKER_FAIL_TAG).and_then(|r| r.strip_prefix(' ')) {
        if let Some((kind, hex)) = rest.split_once(' ') {
            if let Some(msg) = from_hex(hex).and_then(|b| String::from_utf8(b).ok()) {
                return Err(SweepError::Cell {
                    cell: cell.to_string(),
                    kind: kind.to_string(),
                    message: msg,
                });
            }
        }
        return Err(SweepError::Worker {
            cell: cell.to_string(),
            attempts: 0,
            message: "malformed failure line".into(),
        });
    }
    let detail = if stderr.trim().is_empty() {
        format!("stdout: {line:.120}")
    } else {
        format!("stderr: {:.200}", stderr.trim())
    };
    Err(SweepError::Worker {
        cell: cell.to_string(),
        attempts: 0,
        message: if exited_ok {
            format!("protocol violation ({detail})")
        } else {
            format!("worker died ({detail})")
        },
    })
}

/// Renders a payload as a `SWEEPOK1` protocol line (worker side).
pub fn ok_line(payload: &[u8]) -> String {
    format!("{WORKER_OK_TAG} {}", crate::digest::to_hex(payload))
}

/// Renders a typed failure as a `SWEEPFAIL1` protocol line (worker
/// side).
pub fn fail_line(kind: &str, message: &str) -> String {
    format!("{WORKER_FAIL_TAG} {kind} {}", crate::digest::to_hex(message.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup<'a>(fault: &'a SweepFault, spawns: &'a AtomicU64) -> Supervisor<'a> {
        Supervisor { timeout_ms: 2_000, retries: 1, backoff_ms: 1, seed: 42, fault, spawns }
    }

    fn sh(script: &str) -> Vec<String> {
        vec!["/bin/sh".into(), "-c".into(), script.into()]
    }

    #[test]
    fn protocol_roundtrip() {
        let line = ok_line(&[0xde, 0xad]);
        assert_eq!(parse_worker_output("c", true, &line, "").unwrap(), vec![0xde, 0xad]);
        let fail = fail_line("deadlock", "stuck at cycle 7");
        match parse_worker_output("c", true, &fail, "") {
            Err(SweepError::Cell { kind, message, .. }) => {
                assert_eq!(kind, "deadlock");
                assert_eq!(message, "stuck at cycle 7");
            }
            other => panic!("expected typed failure, got {other:?}"),
        }
        assert!(matches!(
            parse_worker_output("c", true, "what is this", ""),
            Err(SweepError::Worker { .. })
        ));
    }

    #[test]
    fn healthy_worker_payload_comes_back() {
        let fault = SweepFault::default();
        let spawns = AtomicU64::new(0);
        let payload = sup(&fault, &spawns).run_cell("c", &sh("echo 'SWEEPOK1 0102ff'")).unwrap();
        assert_eq!(payload, vec![1, 2, 0xff]);
        assert_eq!(spawns.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn typed_failure_is_not_retried() {
        let fault = SweepFault::default();
        let spawns = AtomicU64::new(0);
        let err = sup(&fault, &spawns)
            .run_cell("c", &sh("echo 'SWEEPFAIL1 deadlock 6f6f7073'"))
            .unwrap_err();
        assert_eq!(err.kind(), "cell_failed");
        assert_eq!(spawns.load(Ordering::Relaxed), 1, "no retry on typed failure");
    }

    #[test]
    fn crash_is_retried_then_reported() {
        let fault = SweepFault::default();
        let spawns = AtomicU64::new(0);
        let err = sup(&fault, &spawns).run_cell("c", &sh("exit 3")).unwrap_err();
        match err {
            SweepError::Worker { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected worker error, got {other:?}"),
        }
        assert_eq!(spawns.load(Ordering::Relaxed), 2, "one retry");
    }

    #[test]
    fn injected_kill_recovers_on_retry() {
        let fault = SweepFault { kill_worker_at: 1, ..SweepFault::default() };
        let spawns = AtomicU64::new(0);
        // sleep first so the kill lands before the echo on attempt 1.
        let payload =
            sup(&fault, &spawns).run_cell("c", &sh("sleep 0.3; echo 'SWEEPOK1 aa'")).unwrap();
        assert_eq!(payload, vec![0xaa]);
        assert_eq!(spawns.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn timeout_kills_and_reports() {
        let fault = SweepFault::default();
        let spawns = AtomicU64::new(0);
        let sup = Supervisor {
            timeout_ms: 100,
            retries: 0,
            backoff_ms: 1,
            seed: 1,
            fault: &fault,
            spawns: &spawns,
        };
        let started = Instant::now();
        let err = sup.run_cell("c", &sh("sleep 30")).unwrap_err();
        assert!(matches!(err, SweepError::Timeout { timeout_ms: 100, attempts: 1, .. }), "{err:?}");
        assert!(started.elapsed() < Duration::from_secs(10), "must not wait for the sleep");
    }

    #[test]
    fn backoff_is_deterministic_exponential_with_jitter() {
        let a0 = backoff_delay_ms(42, "cell-a", 0, 50);
        assert_eq!(a0, backoff_delay_ms(42, "cell-a", 0, 50));
        assert!((50..100).contains(&a0), "{a0}");
        let a1 = backoff_delay_ms(42, "cell-a", 1, 50);
        assert!((100..150).contains(&a1), "{a1}");
        assert_ne!(
            backoff_delay_ms(42, "cell-a", 0, 50) % 50,
            backoff_delay_ms(42, "cell-b", 0, 50) % 50,
            "different cells should jitter apart (true for these keys)"
        );
        assert_eq!(backoff_delay_ms(42, "cell-a", 0, 0), 0, "zero base disables backoff");
    }
}
