//! Self-contained SVG chart rendering for the figure harness.
//!
//! Design follows the data-viz method: form first (grouped bars for
//! per-benchmark comparisons, stacked bars for compositions, lines for
//! sweeps), one y-axis per chart, categorical colors assigned in a fixed
//! validated order (never cycled), thin marks with rounded data-ends, a
//! recessive grid, a legend whenever there are two or more series, and a
//! table view (the harness's text output) always accompanying the chart —
//! which is the relief for the palette's low-contrast slots.

use std::fmt::Write as _;

/// Categorical palette, light mode, in its validated fixed order
/// (worst adjacent CVD ΔE 24.2 — verified with the palette validator).
const SERIES_COLORS: [&str; 6] = ["#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948"];
/// Neutral segment color for "everything else" stack parts (off-chip).
const NEUTRAL: &str = "#9b9a94";
/// Marker color for categories whose cells failed (keep-going runs).
const FAILED_MARK: &str = "#e34948";
const SURFACE: &str = "#fcfcfb";
const GRID: &str = "#f0efec";
const TEXT_PRIMARY: &str = "#0b0b0b";
const TEXT_SECONDARY: &str = "#52514e";

/// The chart's form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChartKind {
    /// One group of bars per category, one bar per series (comparisons).
    GroupedBars,
    /// One bar per category, stacked series segments (composition; series
    /// values per category should sum to a meaningful total).
    StackedBars,
    /// One line per series over ordered categories (sweeps).
    Lines,
}

/// One named series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// One value per category.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series { name: name.into(), values }
    }
}

/// A renderable chart: structured data plus both renderings (aligned text
/// table, and a self-contained SVG).
#[derive(Clone, Debug)]
pub struct Chart {
    /// Title (figure name).
    pub title: String,
    /// y-axis label.
    pub y_label: String,
    /// Category (x) labels.
    pub categories: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// The form.
    pub kind: ChartKind,
    /// Optional reference line (e.g. 1.0 for "baseline").
    pub baseline: Option<f64>,
    /// File stem used when writing SVGs.
    pub slug: String,
    /// Category indices whose cells failed in a keep-going run; rendered
    /// as a red ✕ above the category (values there are placeholders).
    pub failed: Vec<usize>,
}

impl Chart {
    /// Checks internal consistency (every series has one value per
    /// category, at most 6 series for the fixed palette).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.series.is_empty() {
            return Err(format!("{}: no series", self.slug));
        }
        if self.series.len() > SERIES_COLORS.len() {
            return Err(format!(
                "{}: {} series exceeds the fixed categorical palette ({})",
                self.slug,
                self.series.len(),
                SERIES_COLORS.len()
            ));
        }
        for s in &self.series {
            if s.values.len() != self.categories.len() {
                return Err(format!(
                    "{}: series '{}' has {} values for {} categories",
                    self.slug,
                    s.name,
                    s.values.len(),
                    self.categories.len()
                ));
            }
            if s.values.iter().any(|v| !v.is_finite()) {
                return Err(format!("{}: series '{}' has non-finite values", self.slug, s.name));
            }
        }
        if let Some(&i) = self.failed.iter().find(|&&i| i >= self.categories.len()) {
            return Err(format!(
                "{}: failed marker {} out of range ({} categories)",
                self.slug,
                i,
                self.categories.len()
            ));
        }
        Ok(())
    }

    /// The table view: an aligned text table (always produced alongside the
    /// SVG — identity is never carried by color alone).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let cat_w = self.categories.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut header = format!("{:cat_w$}", "");
        for ser in &self.series {
            let _ = write!(header, " {:>10}", truncate(&ser.name, 10));
        }
        let _ = writeln!(s, "{header}");
        for (i, c) in self.categories.iter().enumerate() {
            let mut row = format!("{c:cat_w$}");
            for ser in &self.series {
                let _ = write!(row, " {:>10.3}", ser.values[i]);
            }
            let _ = writeln!(s, "{row}");
        }
        s
    }

    /// Renders a self-contained SVG (light mode).
    ///
    /// # Panics
    ///
    /// Panics if [`Chart::validate`] would fail (construct charts through
    /// the harness, which validates).
    pub fn to_svg(&self) -> String {
        self.validate().expect("chart is consistent");
        let ncat = self.categories.len();
        let nser = self.series.len();

        // --- Layout ----------------------------------------------------
        let (bar_w, gap_in, group_pad) = (14.0, 2.0, 14.0);
        let group_w = match self.kind {
            ChartKind::GroupedBars => nser as f64 * (bar_w + gap_in) + group_pad,
            ChartKind::StackedBars => bar_w + group_pad,
            ChartKind::Lines => 56.0,
        };
        let plot_w = (ncat as f64 * group_w).max(320.0);
        let plot_h = 260.0;
        let (ml, mr, mt, mb) = (56.0, 16.0, 56.0, 72.0);
        let width = ml + plot_w + mr;
        let height = mt + plot_h + mb;

        // --- Scale -----------------------------------------------------
        let max_v = match self.kind {
            ChartKind::StackedBars => (0..ncat)
                .map(|i| self.series.iter().map(|s| s.values[i]).sum::<f64>())
                .fold(0.0f64, f64::max),
            _ => self.series.iter().flat_map(|s| s.values.iter().copied()).fold(0.0f64, f64::max),
        }
        .max(self.baseline.unwrap_or(0.0));
        let y_max = nice_ceiling(max_v * 1.05);
        let y = |v: f64| mt + plot_h - (v / y_max) * plot_h;

        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="system-ui, sans-serif">"#
        );
        let _ = write!(s, r#"<rect width="{width:.0}" height="{height:.0}" fill="{SURFACE}"/>"#);
        // Title.
        let _ = write!(
            s,
            r#"<text x="{ml}" y="22" font-size="14" font-weight="600" fill="{TEXT_PRIMARY}">{}</text>"#,
            esc(&self.title)
        );
        // Legend (always, for >= 2 series).
        if nser >= 2 {
            let mut lx = ml;
            for (k, ser) in self.series.iter().enumerate() {
                let c = self.series_color(k);
                let _ = write!(
                    s,
                    r#"<rect x="{lx}" y="32" width="10" height="10" rx="2" fill="{c}"/>"#
                );
                let _ = write!(
                    s,
                    r#"<text x="{:.0}" y="41" font-size="11" fill="{TEXT_SECONDARY}">{}</text>"#,
                    lx + 14.0,
                    esc(&ser.name)
                );
                lx += 14.0 + 7.0 * ser.name.len() as f64 + 16.0;
            }
        }
        // Grid + y ticks.
        let ticks = y_ticks(y_max);
        for t in &ticks {
            let ty = y(*t);
            let _ = write!(
                s,
                r#"<line x1="{ml}" y1="{ty:.1}" x2="{:.1}" y2="{ty:.1}" stroke="{GRID}" stroke-width="1"/>"#,
                ml + plot_w
            );
            let _ = write!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end" fill="{TEXT_SECONDARY}">{}</text>"#,
                ml - 6.0,
                ty + 4.0,
                fmt_tick(*t)
            );
        }
        // Reference line.
        if let Some(b) = self.baseline {
            let by = y(b);
            let _ = write!(
                s,
                r#"<line x1="{ml}" y1="{by:.1}" x2="{:.1}" y2="{by:.1}" stroke="{TEXT_SECONDARY}" stroke-width="1" stroke-dasharray="4 3"/>"#,
                ml + plot_w
            );
        }
        // y label.
        let _ = write!(
            s,
            r#"<text x="14" y="{:.0}" font-size="11" fill="{TEXT_SECONDARY}" transform="rotate(-90 14 {:.0})" text-anchor="middle">{}</text>"#,
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            esc(&self.y_label)
        );

        // --- Marks -------------------------------------------------------
        match self.kind {
            ChartKind::GroupedBars => {
                for (i, _) in self.categories.iter().enumerate() {
                    let gx = ml + i as f64 * group_w + group_pad / 2.0;
                    for (k, ser) in self.series.iter().enumerate() {
                        let v = ser.values[i];
                        let x0 = gx + k as f64 * (bar_w + gap_in);
                        let _ = write!(s, "{}", bar(x0, y(v), bar_w, y(0.0), self.series_color(k)));
                    }
                }
            }
            ChartKind::StackedBars => {
                for (i, _) in self.categories.iter().enumerate() {
                    let x0 = ml + i as f64 * group_w + group_pad / 2.0;
                    let mut acc = 0.0;
                    for (k, ser) in self.series.iter().enumerate() {
                        let v = ser.values[i];
                        let y_top = y(acc + v);
                        let y_bot = (y(acc) - 2.0).max(y_top); // 2px surface gap
                        let _ = write!(
                            s,
                            r#"<rect x="{x0:.1}" y="{y_top:.1}" width="{bar_w}" height="{:.1}" fill="{}"/>"#,
                            (y_bot - y_top).max(0.0),
                            self.series_color(k)
                        );
                        acc += v;
                    }
                }
            }
            ChartKind::Lines => {
                for (k, ser) in self.series.iter().enumerate() {
                    let c = self.series_color(k);
                    let pts: Vec<(f64, f64)> = ser
                        .values
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (ml + (i as f64 + 0.5) * group_w, y(*v)))
                        .collect();
                    let path: String = pts
                        .iter()
                        .enumerate()
                        .map(|(i, (px, py))| {
                            format!("{}{px:.1} {py:.1}", if i == 0 { "M" } else { "L" })
                        })
                        .collect();
                    let _ = write!(
                        s,
                        r#"<path d="{path}" fill="none" stroke="{c}" stroke-width="2"/>"#
                    );
                    for (px, py) in &pts {
                        let _ = write!(
                            s,
                            r#"<circle cx="{px:.1}" cy="{py:.1}" r="4" fill="{c}" stroke="{SURFACE}" stroke-width="2"/>"#
                        );
                    }
                    // Direct label at the line end (selective labeling).
                    if let Some((px, py)) = pts.last() {
                        let _ = write!(
                            s,
                            r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}">{}</text>"#,
                            px + 8.0,
                            py + 4.0,
                            esc(&ser.name)
                        );
                    }
                }
            }
        }

        // Failed-cell markers (keep-going runs): a red ✕ above the category.
        for &i in &self.failed {
            let cx = ml + (i as f64 + 0.5) * group_w;
            let _ = write!(
                s,
                r#"<text x="{cx:.1}" y="{:.1}" font-size="14" font-weight="700" text-anchor="middle" fill="{FAILED_MARK}">&#x2715;</text>"#,
                mt + 14.0
            );
        }

        // x labels (rotated when dense).
        let rotate = ncat > 8;
        for (i, c) in self.categories.iter().enumerate() {
            let cx = ml + (i as f64 + 0.5) * group_w;
            let ty = mt + plot_h + 14.0;
            if rotate {
                let _ = write!(
                    s,
                    r#"<text x="{cx:.1}" y="{ty:.1}" font-size="10" fill="{TEXT_SECONDARY}" text-anchor="end" transform="rotate(-45 {cx:.1} {ty:.1})">{}</text>"#,
                    esc(c)
                );
            } else {
                let _ = write!(
                    s,
                    r#"<text x="{cx:.1}" y="{ty:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle">{}</text>"#,
                    esc(c)
                );
            }
        }
        // Baseline axis.
        let _ = write!(
            s,
            r#"<line x1="{ml}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{TEXT_SECONDARY}" stroke-width="1"/>"#,
            y(0.0),
            ml + plot_w,
            y(0.0)
        );
        s.push_str("</svg>");
        s
    }

    fn series_color(&self, k: usize) -> &'static str {
        // The off-chip / remainder segment of a stacked composition is
        // neutral, not a categorical hue.
        if self.kind == ChartKind::StackedBars
            && k == self.series.len() - 1
            && self.series[k].name.to_lowercase().contains("off")
        {
            return NEUTRAL;
        }
        SERIES_COLORS[k]
    }
}

/// A bar with a 4px-rounded data end, anchored flat on the baseline.
fn bar(x: f64, y_top: f64, w: f64, y_base: f64, color: &str) -> String {
    let h = (y_base - y_top).max(0.0);
    let r = 4.0f64.min(h).min(w / 2.0);
    format!(
        r#"<path d="M{x:.1} {y_base:.1} V{:.1} Q{x:.1} {y_top:.1} {:.1} {y_top:.1} H{:.1} Q{:.1} {y_top:.1} {:.1} {:.1} V{y_base:.1} Z" fill="{color}"/>"#,
        y_top + r,
        x + r,
        x + w - r,
        x + w,
        x + w,
        y_top + r,
    )
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Rounds up to a "nice" axis maximum (1/2/2.5/5 × 10^k).
fn nice_ceiling(v: f64) -> f64 {
    if v <= 0.0 {
        return 1.0;
    }
    let mag = 10f64.powf(v.log10().floor());
    for m in [1.0, 2.0, 2.5, 5.0, 10.0] {
        if m * mag >= v {
            return m * mag;
        }
    }
    10.0 * mag
}

fn y_ticks(y_max: f64) -> Vec<f64> {
    (0..=4).map(|i| y_max * i as f64 / 4.0).collect()
}

fn fmt_tick(v: f64) -> String {
    if v >= 100.0 || (v.fract() == 0.0 && v >= 10.0) {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: ChartKind) -> Chart {
        Chart {
            title: "Sample".into(),
            y_label: "IPC".into(),
            categories: vec!["a".into(), "b".into(), "c".into()],
            series: vec![
                Series::new("OoO", vec![1.0, 2.0, 3.0]),
                Series::new("DVR", vec![2.0, 3.0, 4.0]),
            ],
            kind,
            baseline: Some(1.0),
            slug: "sample".into(),
            failed: vec![],
        }
    }

    #[test]
    fn validate_catches_mismatches() {
        let mut c = sample(ChartKind::GroupedBars);
        assert!(c.validate().is_ok());
        c.series[0].values.pop();
        assert!(c.validate().is_err());
        c = sample(ChartKind::GroupedBars);
        c.series[1].values[0] = f64::NAN;
        assert!(c.validate().is_err());
        c = sample(ChartKind::GroupedBars);
        for k in 0..6 {
            c.series.push(Series::new(format!("s{k}"), vec![1.0, 1.0, 1.0]));
        }
        assert!(c.validate().is_err(), "more series than the fixed palette must fail");
    }

    #[test]
    fn svg_is_well_formed_for_every_kind() {
        for kind in [ChartKind::GroupedBars, ChartKind::StackedBars, ChartKind::Lines] {
            let svg = sample(kind).to_svg();
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>"));
            // Balanced elements (every opened tag closes or self-closes).
            assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
            assert!(svg.contains(SURFACE));
            // Legend present for 2 series.
            assert!(svg.contains("OoO"));
        }
    }

    #[test]
    fn colors_follow_fixed_order() {
        let svg = sample(ChartKind::GroupedBars).to_svg();
        let p1 = svg.find(SERIES_COLORS[0]).expect("slot 1 used");
        let p2 = svg.find(SERIES_COLORS[1]).expect("slot 2 used");
        assert!(p1 < p2, "slot order must be fixed");
        assert!(!svg.contains(SERIES_COLORS[2]), "unused slots stay unused");
    }

    #[test]
    fn offchip_stack_segment_is_neutral() {
        let c = Chart {
            title: "t".into(),
            y_label: "%".into(),
            categories: vec!["a".into()],
            series: vec![Series::new("L1", vec![0.5]), Series::new("off-chip", vec![0.5])],
            kind: ChartKind::StackedBars,
            baseline: None,
            slug: "t".into(),
            failed: vec![],
        };
        let svg = c.to_svg();
        assert!(svg.contains(NEUTRAL));
    }

    #[test]
    fn failed_markers_render_and_validate() {
        let mut c = sample(ChartKind::GroupedBars);
        c.failed = vec![1];
        c.validate().expect("in-range marker is fine");
        let svg = c.to_svg();
        assert!(svg.contains(FAILED_MARK), "marker color present");
        assert!(svg.contains("&#x2715;"), "cross glyph present");
        c.failed = vec![3];
        assert!(c.validate().is_err(), "marker past the last category must fail");
    }

    #[test]
    fn text_table_lists_all_cells() {
        let t = sample(ChartKind::Lines).to_text();
        assert!(t.contains("Sample"));
        assert!(t.contains("a") && t.contains("c"));
        assert!(t.contains("4.000"));
    }

    #[test]
    fn nice_ceiling_behaves() {
        assert_eq!(nice_ceiling(0.9), 1.0);
        assert_eq!(nice_ceiling(3.2), 5.0);
        assert_eq!(nice_ceiling(7.0), 10.0);
        assert_eq!(nice_ceiling(120.0), 200.0);
        assert_eq!(nice_ceiling(0.0), 1.0);
    }

    #[test]
    fn escaping() {
        let mut c = sample(ChartKind::GroupedBars);
        c.title = "a<b & c".into();
        let svg = c.to_svg();
        assert!(svg.contains("a&lt;b &amp; c"));
    }
}
