//! `diag` — a developer diagnostics probe: prints demand-hit level
//! distributions, latency, traffic attribution, and prefetch timeliness
//! for the baseline, VR, and DVR on two representative benchmarks.
//! Used while calibrating the model (see EXPERIMENTS.md); kept as a
//! debugging aid.

fn main() {
    use dvr_sim::{simulate, PrefetchSource, SimConfig, Technique};
    use workloads::{Benchmark, SizeClass};

    for t in [Technique::Baseline, Technique::Vr, Technique::Dvr] {
        for (b, n) in [(Benchmark::Hj8, 300_000u64), (Benchmark::Camel, 300_000)] {
            let wl = b.build(None, SizeClass::Paper, 42);
            let r = simulate(&wl, &SimConfig::new(t).with_max_instructions(n));
            let h = r.mem.demand_hits;
            let total: u64 = h.iter().sum::<u64>() + r.mem.demand_inflight;
            println!(
                "{:10} {:8} ipc={:.3} cyc={} L1={:.2} L2={:.2} L3={:.2} Mem={:.2} InFl={:.2} \
                 dram(dem={} ra={}) commit_blocked={} stall_frac={:.2}",
                wl.name,
                t.name(),
                r.ipc,
                r.core.cycles,
                h[0] as f64 / total as f64,
                h[1] as f64 / total as f64,
                h[2] as f64 / total as f64,
                h[3] as f64 / total as f64,
                r.mem.demand_inflight as f64 / total as f64,
                r.mem.dram_demand,
                r.mem.dram_runahead(),
                r.core.commit_blocked_engine_cycles,
                r.core.rob_full_stall_fraction(),
            );
            println!(
                "           avg_demand_lat={:.1} mlp={:.2} loads={} mispred_mpki={:.1}",
                r.mem.avg_demand_latency(),
                r.mlp,
                r.mem.demand_loads,
                r.core.mpki()
            );
            let src = if t == Technique::Vr { PrefetchSource::Vr } else { PrefetchSource::Dvr };
            if let Some(tl) = r.mem.timeliness(src) {
                println!(
                    "           prefetch: issued={} acc={:.2} timeliness L1={:.2} L2={:.2} L3={:.2} off={:.2}",
                    r.mem.prefetch_issued[src.index()],
                    r.mem.accuracy(src).unwrap_or(0.0),
                    tl[0], tl[1], tl[2], tl[3]
                );
            }
        }
    }
}
