//! `diag` — a developer diagnostics probe: prints demand-hit level
//! distributions, latency, traffic attribution, and prefetch timeliness
//! for the baseline, VR, and DVR on two representative benchmarks.
//! Used while calibrating the model (see EXPERIMENTS.md); kept as a
//! debugging aid.
//!
//! `--threads N` fans the technique×benchmark runs over worker threads
//! (0 = all cores); the report is printed in the same fixed order either
//! way. `--keep-going` prints a FAILED line for a crashed or failed run
//! instead of aborting the probe. `--audit` instead prints the full
//! static-vs-dynamic Discovery audit for the probe benchmarks (see
//! `dvrsim audit` for the whole suite).

use dvr_sim::{audit_benchmark, simulate, try_parallel_map, PrefetchSource, SimConfig, Technique};
use workloads::{Benchmark, SizeClass};

fn main() {
    let mut threads: usize = 1;
    let mut keep_going = false;
    let mut audit = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).expect("numeric --threads");
            }
            "--keep-going" => keep_going = true,
            "--audit" => audit = true,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let benches = [(Benchmark::Hj8, 300_000u64), (Benchmark::Camel, 300_000)];

    if audit {
        let mut clean = true;
        for &(b, instrs) in &benches {
            let r = audit_benchmark(b, SizeClass::Paper, 42, instrs);
            print!("{}", r.render());
            clean &= r.is_clean();
        }
        std::process::exit(if clean { 0 } else { 1 });
    }

    let workloads: Vec<_> =
        benches.iter().map(|&(b, _)| b.build(None, SizeClass::Paper, 42)).collect();

    // One cell per (technique, benchmark), in print order.
    let cells: Vec<(Technique, usize)> = [Technique::Baseline, Technique::Vr, Technique::Dvr]
        .into_iter()
        .flat_map(|t| (0..benches.len()).map(move |k| (t, k)))
        .collect();
    let results = try_parallel_map(cells.len(), threads, |i| {
        let (t, k) = cells[i];
        simulate(&workloads[k], &SimConfig::new(t).with_max_instructions(benches[k].1))
    });

    for ((t, k), result) in cells.into_iter().zip(results) {
        let wl = &workloads[k];
        let r = match result {
            Ok(r) => r,
            Err(e) => {
                if !keep_going {
                    eprintln!("diag: {} {} crashed: {e}", wl.name, t.name());
                    std::process::exit(1);
                }
                println!("{:10} {:8} FAILED: {e}", wl.name, t.name());
                continue;
            }
        };
        if let Some(e) = r.outcome.error() {
            if !keep_going {
                eprintln!("diag: {} {} failed: {e}", wl.name, t.name());
                std::process::exit(1);
            }
            println!("{:10} {:8} FAILED ({}): {e}", wl.name, t.name(), e.kind());
            continue;
        }
        let h = r.mem.demand_hits;
        let total: u64 = h.iter().sum::<u64>() + r.mem.demand_inflight;
        println!(
            "{:10} {:8} ipc={:.3} cyc={} L1={:.2} L2={:.2} L3={:.2} Mem={:.2} InFl={:.2} \
             dram(dem={} ra={}) commit_blocked={} stall_frac={:.2}",
            wl.name,
            t.name(),
            r.ipc,
            r.core.cycles,
            h[0] as f64 / total as f64,
            h[1] as f64 / total as f64,
            h[2] as f64 / total as f64,
            h[3] as f64 / total as f64,
            r.mem.demand_inflight as f64 / total as f64,
            r.mem.dram_demand,
            r.mem.dram_runahead(),
            r.core.commit_blocked_engine_cycles,
            r.core.rob_full_stall_fraction(),
        );
        println!(
            "           avg_demand_lat={:.1} mlp={:.2} loads={} mispred_mpki={:.1}",
            r.mem.avg_demand_latency(),
            r.mlp,
            r.mem.demand_loads,
            r.core.mpki()
        );
        let src = if t == Technique::Vr { PrefetchSource::Vr } else { PrefetchSource::Dvr };
        if let Some(tl) = r.mem.timeliness(src) {
            println!(
                "           prefetch: issued={} acc={:.2} timeliness L1={:.2} L2={:.2} L3={:.2} off={:.2}",
                r.mem.prefetch_issued[src.index()],
                r.mem.accuracy(src).unwrap_or(0.0),
                tl[0], tl[1], tl[2], tl[3]
            );
        }
        // Per-cell simulation cost — stderr, like all timing output.
        eprintln!(
            "[diag] {} {}: {:.2}M simulated instrs/host-second ({:.2}s)",
            wl.name,
            t.name(),
            r.sim_instrs_per_host_second() / 1e6,
            r.host_seconds
        );
    }
}
