//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- <experiment> [options]
//!
//! experiments: table1 table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 ablation all
//! options:
//!   --size test|small|paper   input scale          (default: paper)
//!   --instrs N                ROI length per run   (default: 500000)
//!   --seed N                  synthetic-input seed (default: 42)
//!   --threads N               simulation worker threads; 0 = all cores
//!                             (default: 1; output is identical either way)
//!   --svg DIR                 also render each figure as an SVG chart
//!   --keep-going              don't abort on a failed cell: mark it in the
//!                             output (text section + chart ✕) and continue
//!   --force-fail LABEL        panic the cell with this combo/technique
//!                             label (failure-path smoke testing)
//!   --sanitize                run every cell under the cycle-model invariant
//!                             sanitizer (stderr summary; stdout unchanged)
//!   --sample                  run every cell sampled (functional fast-forward
//!                             with warming between seeded detailed intervals)
//!                             instead of exactly — several-fold faster, with
//!                             the statistical error EXPERIMENTS.md describes
//!   --sample-period N         sampling period in instructions (implies
//!                             --sample; default 20000)
//! ```
//!
//! Exit status: 0 on success; without `--keep-going` a failed cell aborts
//! the process with a diagnostic naming the cell; with `--sanitize` any
//! invariant violation exits 1.

use bench::{run_experiment_full, Ctx};
use workloads::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut size = SizeClass::Paper;
    let mut instrs: u64 = 500_000;
    let mut seed: u64 = 42;
    let mut threads: usize = 1;
    let mut svg_dir: Option<String> = None;
    let mut keep_going = false;
    let mut force_fail: Option<String> = None;
    let mut sanitize = false;
    let mut sample = false;
    let mut sample_period: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                i += 1;
                size = match args.get(i).map(String::as_str) {
                    Some("test") => SizeClass::Test,
                    Some("small") => SizeClass::Small,
                    Some("paper") => SizeClass::Paper,
                    other => {
                        eprintln!("unknown size {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--instrs" => {
                i += 1;
                instrs = args[i].parse().expect("numeric --instrs");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("numeric --seed");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("numeric --threads");
            }
            "--svg" => {
                i += 1;
                svg_dir = Some(args[i].clone());
            }
            "--keep-going" => keep_going = true,
            "--sanitize" => sanitize = true,
            "--sample" => sample = true,
            "--sample-period" => {
                i += 1;
                sample_period = Some(args[i].parse().expect("numeric --sample-period"));
            }
            "--force-fail" => {
                i += 1;
                force_fail = Some(args[i].clone());
            }
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut ctx = Ctx::new(size, instrs, seed)
        .with_threads(threads)
        .with_keep_going(keep_going)
        .with_sanitize(sanitize);
    if sample || sample_period.is_some() {
        let mut scfg = dvr_sim::SampleConfig::default();
        if let Some(p) = sample_period {
            scfg = scfg.with_period(p);
        }
        ctx = ctx.with_sample(scfg);
    }
    if let Some(label) = force_fail {
        ctx = ctx.with_force_fail(label);
    }
    let t0 = std::time::Instant::now();
    let result = run_experiment_full(&experiment, &mut ctx);
    print!("{}", result.text);
    if let Some(dir) = svg_dir {
        std::fs::create_dir_all(&dir).expect("create --svg directory");
        for chart in &result.charts {
            let path = format!("{dir}/{}.svg", chart.slug);
            std::fs::write(&path, chart.to_svg()).expect("write SVG");
            eprintln!("[figures] wrote {path}");
        }
    }
    // Timing goes to stderr: stdout must stay byte-identical across
    // --threads settings.
    eprintln!(
        "[figures] {experiment} done in {:?} on {} thread(s): {}",
        t0.elapsed(),
        dvr_sim::resolve_threads(threads),
        ctx.throughput_summary()
    );
    if !ctx.failures().is_empty() {
        eprintln!("[figures] {} cell(s) failed (marked in the output)", ctx.failures().len());
    }
    if sanitize {
        let (checks, violations) = ctx.sanitize_totals();
        eprintln!("[figures] sanitize: {checks} invariant checks, {violations} violations");
        if violations > 0 {
            std::process::exit(1);
        }
    }
}
