//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- <experiment> [options]
//!
//! experiments: table1 table2 fig2 fig7 fig8 fig9 fig10 fig11 fig12 ablation mix all
//! options:
//!   --size test|small|paper   input scale          (default: paper)
//!   --instrs N                ROI length per run   (default: 500000)
//!   --seed N                  synthetic-input seed (default: 42)
//!   --threads N               simulation worker threads; 0 = all cores
//!                             (default: 1; output is identical either way)
//!   --svg DIR                 also render each figure as an SVG chart
//!   --keep-going              don't abort on a failed cell: mark it in the
//!                             output (text section + chart ✕) and continue
//!   --force-fail LABEL        panic the cell with this combo/technique
//!                             label (failure-path smoke testing)
//!   --sanitize                run every cell under the cycle-model invariant
//!                             sanitizer (stderr summary; stdout unchanged)
//!   --sample                  run every cell sampled (functional fast-forward
//!                             with warming between seeded detailed intervals)
//!                             instead of exactly — several-fold faster, with
//!                             the statistical error EXPERIMENTS.md describes
//!   --sample-period N         sampling period in instructions (implies
//!                             --sample; default 20000)
//!   --sample-threads N        in-process threads for each sampled cell's
//!                             measure phase; 0 = all cores (default: 1;
//!                             output is byte-identical either way)
//!   --jobs N                  fan each plain sampled cell's measure phase
//!                             across N `dvrsim sample-worker` processes
//!                             (output byte-identical; swept cells fall
//!                             back to --sample-threads)
//!   --cache DIR               serve completed cells from (and store them
//!                             into) the content-addressed result cache that
//!                             `dvrsim sweep --cache` maintains; output is
//!                             byte-identical, warm reruns skip simulation
//!   --bench-json DIR          persist the perf trajectory as
//!                             DIR/BENCH_<experiment>.json: wall seconds per
//!                             figure, aggregate simulation throughput, a
//!                             sequential-vs-parallel sample wall-clock probe,
//!                             result-cache hit counters, and a sweep
//!                             cold-vs-resume overhead probe (the wall-clock
//!                             probes self-skip on a single-core host, where
//!                             their speedups would be meaningless)
//! ```
//!
//! Exit status: 0 on success; without `--keep-going` a failed cell aborts
//! the process with a diagnostic naming the cell; with `--sanitize` any
//! invariant violation exits 1.

use std::fmt::Write as _;

use bench::{
    run_experiment_full, sample_speedup_probe, sweep_resume_probe, Ctx, Experiment, EXPERIMENTS,
};
use workloads::SizeClass;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut size = SizeClass::Paper;
    let mut instrs: u64 = 500_000;
    let mut seed: u64 = 42;
    let mut threads: usize = 1;
    let mut svg_dir: Option<String> = None;
    let mut keep_going = false;
    let mut force_fail: Option<String> = None;
    let mut sanitize = false;
    let mut sample = false;
    let mut sample_period: Option<u64> = None;
    let mut sample_threads: usize = 1;
    let mut jobs: usize = 0;
    let mut bench_json: Option<String> = None;
    let mut cache_dir: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                i += 1;
                size = match args.get(i).map(String::as_str) {
                    Some("test") => SizeClass::Test,
                    Some("small") => SizeClass::Small,
                    Some("paper") => SizeClass::Paper,
                    other => {
                        eprintln!("error: unknown figures size {other:?} (expected test, small, or paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--instrs" => {
                i += 1;
                instrs = args[i].parse().expect("numeric --instrs");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("numeric --seed");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("numeric --threads");
            }
            "--sample-threads" => {
                i += 1;
                sample_threads = args[i].parse().expect("numeric --sample-threads");
            }
            "--jobs" => {
                i += 1;
                jobs = args[i].parse().expect("numeric --jobs");
            }
            "--svg" => {
                i += 1;
                svg_dir = Some(args[i].clone());
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(args[i].clone());
            }
            "--cache" => {
                i += 1;
                cache_dir = Some(args[i].clone());
            }
            "--keep-going" => keep_going = true,
            "--sanitize" => sanitize = true,
            "--sample" => sample = true,
            "--sample-period" => {
                i += 1;
                sample_period = Some(args[i].parse().expect("numeric --sample-period"));
            }
            "--force-fail" => {
                i += 1;
                force_fail = Some(args[i].clone());
            }
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => {
                eprintln!("error: unknown figures option '{other}' (see the module docs or crates/bench/src/bin/figures.rs for the option list)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut ctx = Ctx::new(size, instrs, seed)
        .with_threads(threads)
        .with_keep_going(keep_going)
        .with_sanitize(sanitize)
        .with_sample_threads(sample_threads)
        .with_jobs(jobs);
    if sample || sample_period.is_some() {
        let mut scfg = dvr_sim::SampleConfig::default();
        if let Some(p) = sample_period {
            scfg = scfg.with_period(p);
        }
        ctx = ctx.with_sample(scfg);
    }
    if jobs > 0 && bench::dvrsim_binary().is_none() {
        eprintln!(
            "[figures] --jobs {jobs}: no dvrsim binary next to this executable; \
             sampled cells will run in-process"
        );
    }
    if let Some(label) = force_fail {
        ctx = ctx.with_force_fail(label);
    }
    if let Some(dir) = &cache_dir {
        ctx = match ctx.with_result_cache(std::path::Path::new(dir)) {
            Ok(ctx) => ctx,
            Err(e) => {
                eprintln!("[figures] --cache {dir}: {e}");
                std::process::exit(2);
            }
        };
    }

    // Run each experiment separately so the trajectory JSON can attribute
    // wall seconds per figure; the concatenated stdout is byte-identical
    // to what a single run_experiment_full("all") produces.
    let names: Vec<&str> =
        if experiment == "all" { EXPERIMENTS.to_vec() } else { vec![experiment.as_str()] };
    let t0 = std::time::Instant::now();
    let mut result = Experiment::default();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for name in &names {
        let t = std::time::Instant::now();
        let e = run_experiment_full(name, &mut ctx);
        timings.push((name, t.elapsed().as_secs_f64()));
        result.text.push_str(&e.text);
        if experiment == "all" {
            result.text.push('\n');
        }
        result.charts.extend(e.charts);
    }
    print!("{}", result.text);
    if let Some(dir) = svg_dir {
        std::fs::create_dir_all(&dir).expect("create --svg directory");
        for chart in &result.charts {
            let path = format!("{dir}/{}.svg", chart.slug);
            std::fs::write(&path, chart.to_svg()).expect("write SVG");
            eprintln!("[figures] wrote {path}");
        }
    }
    let total_wall = t0.elapsed().as_secs_f64();
    // Timing goes to stderr: stdout must stay byte-identical across
    // --threads settings.
    eprintln!(
        "[figures] {experiment} done in {:?} on {} thread(s): {}",
        t0.elapsed(),
        dvr_sim::resolve_threads(threads),
        ctx.throughput_summary()
    );
    if cache_dir.is_some() {
        let (hits, misses, stores, corrupt) = ctx.cache_totals();
        eprintln!(
            "[figures] result cache: {hits} hit(s), {misses} miss(es), {stores} store(s), \
             {corrupt} corrupt"
        );
    }
    if let Some(dir) = bench_json {
        let path = write_bench_json(&dir, &experiment, &mut ctx, &timings, total_wall, jobs);
        eprintln!("[figures] wrote {path}");
    }
    if !ctx.failures().is_empty() {
        eprintln!("[figures] {} cell(s) failed (marked in the output)", ctx.failures().len());
    }
    if sanitize {
        let (checks, violations) = ctx.sanitize_totals();
        eprintln!("[figures] sanitize: {checks} invariant checks, {violations} violations");
        if violations > 0 {
            std::process::exit(1);
        }
    }
}

/// Persists the run's perf trajectory as `DIR/BENCH_<experiment>.json`:
/// wall seconds per figure, aggregate host throughput, a
/// sequential-vs-4-thread sampled wall-clock probe, the result-cache
/// counters of this run, and a sweep cold-vs-resume overhead probe.
/// Returns the path.
///
/// The two wall-clock probes compare sequential against parallel
/// execution, so on a single-core host every "speedup" they report is
/// scheduling noise; there they self-skip and their JSON fields carry the
/// marker string `"skipped_single_core"` instead of an object (`host_cores`
/// is always recorded, `0` meaning unknown — unknown parallelism runs the
/// probes).
fn write_bench_json(
    dir: &str,
    experiment: &str,
    ctx: &mut Ctx,
    timings: &[(&str, f64)],
    total_wall: f64,
    jobs: usize,
) -> String {
    let (runs, sim_instrs, sim_secs) = ctx.throughput_totals();
    let minstr_per_sec = if sim_secs > 0.0 { sim_instrs as f64 / sim_secs / 1e6 } else { 0.0 };
    let host_cores = std::thread::available_parallelism().map_or(0, usize::from);
    let run_probes = host_cores != 1;
    let probe = run_probes.then(|| sample_speedup_probe(ctx, 4));
    match &probe {
        Some(probe) => eprintln!(
            "[figures] sample probe: {} x{} instrs sequential {:.2}s vs {}-thread {:.2}s ({:.2}x)",
            probe.bench,
            probe.instrs,
            probe.sequential_seconds,
            probe.threads,
            probe.parallel_seconds,
            probe.speedup
        ),
        None => eprintln!("[figures] sample probe: skipped on a single-core host"),
    }
    let mut j = String::new();
    let _ = write!(
        j,
        "{{\"experiment\":\"{experiment}\",\"size\":\"{:?}\",\"instrs\":{},\"seed\":{},\
         \"threads\":{},\"sample_threads\":{},\"jobs\":{jobs},\"sampled\":{},\
         \"host_cores\":{host_cores},",
        ctx.size,
        ctx.instrs,
        ctx.seed,
        ctx.threads,
        ctx.sample_threads,
        ctx.sample.is_some()
    );
    let _ = write!(j, "\"figures\":[");
    for (k, (name, secs)) in timings.iter().enumerate() {
        let sep = if k + 1 == timings.len() { "" } else { "," };
        let _ = write!(j, "{{\"name\":\"{name}\",\"wall_seconds\":{secs:.3}}}{sep}");
    }
    let _ = write!(
        j,
        "],\"total_wall_seconds\":{total_wall:.3},\"runs\":{runs},\
         \"simulated_minstr\":{:.3},\"host_minstr_per_sec\":{minstr_per_sec:.3},",
        sim_instrs as f64 / 1e6
    );
    match &probe {
        Some(probe) => {
            let _ = write!(
                j,
                "\"sample_probe\":{{\"bench\":\"{}\",\"instrs\":{},\"sequential_seconds\":{:.3},\
                 \"parallel_seconds\":{:.3},\"threads\":{},\"speedup\":{:.3}}},",
                probe.bench,
                probe.instrs,
                probe.sequential_seconds,
                probe.parallel_seconds,
                probe.threads,
                probe.speedup
            );
        }
        None => {
            let _ = write!(j, "\"sample_probe\":\"skipped_single_core\",");
        }
    }
    let (hits, misses, stores, corrupt) = ctx.cache_totals();
    let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
    let _ = write!(
        j,
        "\"result_cache\":{{\"hits\":{hits},\"misses\":{misses},\"stores\":{stores},\
         \"corrupt\":{corrupt},\"hit_rate\":{hit_rate:.3}}},"
    );
    match run_probes.then(|| sweep_resume_probe(ctx)) {
        Some(sweep) => {
            eprintln!(
                "[figures] sweep probe: {} cells cold {:.2}s, resume {:.3}s ({:.3}x), \
                 warm-cache hit rate {:.0}%",
                sweep.cells,
                sweep.cold_seconds,
                sweep.resume_seconds,
                sweep.resume_overhead,
                100.0 * sweep.cache_hit_rate
            );
            let _ = write!(
                j,
                "\"sweep_probe\":{{\"cells\":{},\"cold_seconds\":{:.3},\"resume_seconds\":{:.3},\
                 \"resume_overhead\":{:.3},\"cache_hit_rate\":{:.3}}}}}",
                sweep.cells,
                sweep.cold_seconds,
                sweep.resume_seconds,
                sweep.resume_overhead,
                sweep.cache_hit_rate
            );
        }
        None => {
            eprintln!("[figures] sweep probe: skipped on a single-core host");
            let _ = write!(j, "\"sweep_probe\":\"skipped_single_core\"}}");
        }
    }
    std::fs::create_dir_all(dir).expect("create --bench-json directory");
    let path = format!("{dir}/BENCH_{experiment}.json");
    std::fs::write(&path, j).expect("write BENCH json");
    path
}
