//! # bench — figure/table regeneration harness for the DVR reproduction
//!
//! One entry point per table and figure of the paper (see DESIGN.md §3).
//! The `figures` binary drives [`run_experiment`]; `--svg DIR` additionally
//! renders each figure as a chart via [`chart::Chart`]. The Criterion
//! benches reuse the same experiment code on reduced inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chart::{Chart, ChartKind, Series};
use dvr_sim::{
    evaluate_mix, measure_periods_via_workers, merge_periods, sample_emit, sampled_report_from,
    simulate, simulate_mix, simulate_sampled, simulate_sampled_threads, try_parallel_map,
    CoreStats, EngineSummary, MemStats, MixSpec, RunOutcome, SampleConfig, SimConfig, SimError,
    SimReport, Technique,
};
use workloads::{Benchmark, GraphInput, SizeClass, Workload};

/// One experiment cell: a (benchmark, input) pair simulated under one
/// configuration. Experiments enumerate their cells up front so
/// [`Ctx::run_batch`] can fan them out over worker threads.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// The benchmark to run.
    pub benchmark: Benchmark,
    /// Graph input (GAP benchmarks only).
    pub input: Option<GraphInput>,
    /// Full simulation configuration.
    pub cfg: SimConfig,
}

impl Cell {
    /// Creates a cell.
    pub fn new(benchmark: Benchmark, input: Option<GraphInput>, cfg: SimConfig) -> Self {
        Cell { benchmark, input, cfg }
    }

    /// Diagnostic label: `combo/technique` (e.g. `bfs_KR/DVR`).
    pub fn label(&self) -> String {
        format!("{}/{}", combo_name(self.benchmark, self.input), self.cfg.technique.name())
    }
}

/// A cell that failed during a keep-going batch (worker panic or a typed
/// simulation error such as a watchdog deadlock).
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// The cell's `combo/technique` label.
    pub label: String,
    /// What went wrong.
    pub message: String,
}

/// Shared experiment context: sizing knobs, the worker-thread count, and a
/// workload cache (building a paper-scale Kronecker graph costs seconds;
/// every figure reuses it). Workloads are built once and shared immutably
/// via [`Arc`] — each simulation clones only the memory image it mutates.
pub struct Ctx {
    /// Input size class.
    pub size: SizeClass,
    /// Instruction budget per run (the ROI length).
    pub instrs: u64,
    /// Seed for all synthetic inputs.
    pub seed: u64,
    /// Worker threads for [`Ctx::run_batch`] (`0` = available
    /// parallelism). Results are independent of this setting.
    pub threads: usize,
    /// When set, failed cells are recorded and replaced by zero-IPC
    /// placeholder reports instead of aborting the batch.
    pub keep_going: bool,
    /// Test/CI hook: a cell whose [`Cell::label`] equals this panics in the
    /// worker instead of simulating.
    pub force_fail: Option<String>,
    /// Run every cell under the cycle-model invariant sanitizer. Checks are
    /// timing-neutral, so figure text stays byte-identical; violation totals
    /// surface through [`Ctx::sanitize_totals`].
    pub sanitize: bool,
    /// When set, every cell runs sampled ([`dvr_sim::simulate_sampled`])
    /// instead of exactly: functional fast-forward with warming between
    /// seeded detailed intervals. Figure numbers then carry the sampling
    /// error the config's confidence intervals describe, in exchange for a
    /// several-fold host-time speedup. Sampled runs are deterministic, so
    /// output stays byte-identical across thread counts.
    pub sample: Option<SampleConfig>,
    /// In-process worker threads for the measure phase *inside* each
    /// sampled cell (`0` = available parallelism). Independent of
    /// [`Ctx::threads`], which fans out across cells; reports are
    /// byte-identical for every setting.
    pub sample_threads: usize,
    /// When nonzero and sampling, plain Table 1 cells fan their measure
    /// phase across this many `dvrsim sample-worker` processes (the binary
    /// is located next to the running executable). Swept configurations the
    /// worker cannot rebuild from its command line, and sanitized runs,
    /// fall back to the in-process path; either way the reports are
    /// byte-identical, so figure output does not depend on this knob.
    pub jobs: usize,
    cache: HashMap<(Benchmark, Option<GraphInput>), Arc<Workload>>,
    result_cache: Option<dvr_sim::sim_sweep::ResultCache>,
    failures: Vec<CellFailure>,
    runs: u64,
    sim_committed: u64,
    sim_seconds: f64,
    san_checks: u64,
    san_violations: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_stores: u64,
    cache_corrupt: u64,
}

impl Ctx {
    /// Creates a serial (one-thread) context.
    pub fn new(size: SizeClass, instrs: u64, seed: u64) -> Self {
        Ctx {
            size,
            instrs,
            seed,
            threads: 1,
            keep_going: false,
            force_fail: None,
            sanitize: false,
            sample: None,
            sample_threads: 1,
            jobs: 0,
            cache: HashMap::new(),
            result_cache: None,
            failures: Vec::new(),
            runs: 0,
            sim_committed: 0,
            sim_seconds: 0.0,
            san_checks: 0,
            san_violations: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_stores: 0,
            cache_corrupt: 0,
        }
    }

    /// Attaches a content-addressed result cache (the same store `dvrsim
    /// sweep --cache` uses): completed reports are persisted keyed by
    /// (program bytes, canonical config, code version) and served on the
    /// next invocation instead of resimulating. Corrupt entries are
    /// quarantined and recomputed. Sanitized, traced, and force-fail runs
    /// bypass the cache — their side-band output is not part of the cached
    /// payload. Figure text is byte-identical with and without the cache.
    pub fn with_result_cache(mut self, dir: &Path) -> Result<Self, String> {
        self.result_cache =
            Some(dvr_sim::sim_sweep::ResultCache::open(dir).map_err(|e| e.to_string())?);
        Ok(self)
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Records failed cells and keeps going instead of aborting the batch.
    pub fn with_keep_going(mut self, keep_going: bool) -> Self {
        self.keep_going = keep_going;
        self
    }

    /// Forces the cell with the given [`Cell::label`] to panic (CI smoke
    /// tests for the failure paths).
    pub fn with_force_fail(mut self, label: impl Into<String>) -> Self {
        self.force_fail = Some(label.into());
        self
    }

    /// Runs every cell under the cycle-model invariant sanitizer (see
    /// [`dvr_sim::SimConfig::with_sanitize`]).
    pub fn with_sanitize(mut self, sanitize: bool) -> Self {
        self.sanitize = sanitize;
        self
    }

    /// Runs every cell sampled with the given configuration (see
    /// [`Ctx::sample`]).
    pub fn with_sample(mut self, scfg: SampleConfig) -> Self {
        self.sample = Some(scfg);
        self
    }

    /// Sets the per-cell measure-phase thread count (see
    /// [`Ctx::sample_threads`]).
    pub fn with_sample_threads(mut self, threads: usize) -> Self {
        self.sample_threads = threads;
        self
    }

    /// Sets the worker-process count for sampled cells (see [`Ctx::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Every cell failure recorded so far (keep-going mode only).
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// Builds (or fetches the cached) workload, shared immutably.
    pub fn workload(&mut self, b: Benchmark, g: Option<GraphInput>) -> Arc<Workload> {
        let key = (b, if b.is_gap() { g.or(Some(GraphInput::Kr)) } else { None });
        let (size, seed) = (self.size, self.seed);
        Arc::clone(self.cache.entry(key).or_insert_with(|| Arc::new(b.build(key.1, size, seed))))
    }

    /// The default per-cell configuration for a technique.
    fn tcfg(&self, t: Technique) -> SimConfig {
        SimConfig::new(t).with_max_instructions(self.instrs).with_sanitize(self.sanitize)
    }

    /// Runs one (benchmark, input, technique) cell.
    pub fn run(&mut self, b: Benchmark, g: Option<GraphInput>, t: Technique) -> SimReport {
        let cfg = self.tcfg(t);
        self.run_cfg(b, g, &cfg)
    }

    /// Runs with an explicit config (ROB sweeps, ablations).
    pub fn run_cfg(&mut self, b: Benchmark, g: Option<GraphInput>, cfg: &SimConfig) -> SimReport {
        let wl = self.workload(b, g);
        let cell = Cell::new(b, g, *cfg);
        let key = self.cell_cache_key(&cell, &wl);
        if let Some(key) = key {
            if let Some(r) = self.cache_lookup(key) {
                self.account(std::slice::from_ref(&r));
                return r;
            }
        }
        let r = match self.sample_dispatch() {
            Some(d) => simulate_sampled_cell(&wl, &cell, &d),
            None => simulate(&wl, cfg),
        };
        if let Some(key) = key {
            self.cache_store(key, &r);
        }
        self.account(std::slice::from_ref(&r));
        r
    }

    /// The cell's content address, or `None` when it must not be cached:
    /// no cache attached, sanitizer or DVR tracing on (their side-band
    /// output is not in the payload), or a force-fail hook active.
    fn cell_cache_key(&self, cell: &Cell, wl: &Workload) -> Option<dvr_sim::sim_sweep::Digest128> {
        self.result_cache.as_ref()?;
        if cell.cfg.core.sanitize || cell.cfg.trace_dvr || self.force_fail.is_some() {
            return None;
        }
        Some(dvr_sim::cache_key(wl, &cell.cfg, self.sample.as_ref()))
    }

    /// One cache probe: a decodable hit becomes a report, everything else
    /// (miss, corrupt-and-quarantined, undecodable payload) a miss.
    fn cache_lookup(&mut self, key: dvr_sim::sim_sweep::Digest128) -> Option<SimReport> {
        use dvr_sim::sim_sweep::CacheLookup;
        let cache = self.result_cache.as_ref()?;
        match cache.lookup(key) {
            CacheLookup::Hit(payload) => match dvr_sim::decode_report(&payload) {
                Ok(r) => {
                    self.cache_hits += 1;
                    Some(r)
                }
                Err(_) => {
                    self.cache_misses += 1;
                    None
                }
            },
            CacheLookup::Corrupt(_) => {
                self.cache_corrupt += 1;
                self.cache_misses += 1;
                None
            }
            CacheLookup::Miss => {
                self.cache_misses += 1;
                None
            }
        }
    }

    /// Persists a completed report; failed runs are never cached.
    fn cache_store(&mut self, key: dvr_sim::sim_sweep::Digest128, r: &SimReport) {
        let Some(cache) = self.result_cache.as_ref() else { return };
        if !r.outcome.is_complete() {
            return;
        }
        if let Ok(payload) = dvr_sim::encode_report(r) {
            if cache.store(key, &payload).is_ok() {
                self.cache_stores += 1;
            }
        }
    }

    /// Aggregate result-cache counters:
    /// `(hits, misses, stores, corrupt)`. All zero unless
    /// [`Ctx::with_result_cache`] attached a cache.
    pub fn cache_totals(&self) -> (u64, u64, u64, u64) {
        (self.cache_hits, self.cache_misses, self.cache_stores, self.cache_corrupt)
    }

    /// Resolves the sampling knobs into one dispatch description shared by
    /// every cell of a batch (`None` when running exactly).
    fn sample_dispatch(&self) -> Option<SampleDispatch> {
        let scfg = self.sample?;
        let worker = (self.jobs > 0).then(|| dvrsim_binary().map(|p| (p, self.jobs))).flatten();
        Some(SampleDispatch {
            scfg,
            threads: self.sample_threads,
            worker,
            size: self.size,
            seed: self.seed,
        })
    }

    /// Runs a batch of cells on up to [`Ctx::threads`] worker threads and
    /// returns the reports **in cell order**.
    ///
    /// Distinct workloads are built once, serially, before the fan-out;
    /// the workers then share them immutably. Simulation is deterministic,
    /// so the returned reports — and any text rendered from them — are
    /// byte-identical for every thread count.
    ///
    /// Each cell is panic-isolated (with one retry). A cell that panics, or
    /// whose run ends in a typed failure ([`SimReport::outcome`]), either
    /// aborts the batch with a diagnostic naming the cell (the default), or
    /// — with [`Ctx::keep_going`] — is recorded in [`Ctx::failures`] and
    /// replaced by a zero-IPC placeholder so the rest of the figure still
    /// renders.
    ///
    /// # Panics
    ///
    /// Without `keep_going`, panics on the first failed cell, naming its
    /// index and label and carrying the underlying diagnostic (for a
    /// deadlock, the full watchdog snapshot).
    pub fn run_batch(&mut self, cells: &[Cell]) -> Vec<SimReport> {
        let jobs: Vec<Arc<Workload>> =
            cells.iter().map(|c| self.workload(c.benchmark, c.input)).collect();
        let labels: Vec<String> = cells.iter().map(Cell::label).collect();
        // Cache pre-pass: resolve cacheable cells serially, then fan out
        // only the remainder. Hits are full-fidelity reports (modulo the
        // wall clock), so the rendered figures cannot tell the difference.
        let keys: Vec<Option<dvr_sim::sim_sweep::Digest128>> =
            cells.iter().zip(&jobs).map(|(c, wl)| self.cell_cache_key(c, wl)).collect();
        let cached: Vec<Option<SimReport>> =
            keys.iter().map(|k| k.and_then(|k| self.cache_lookup(k))).collect();
        let force_fail = self.force_fail.clone();
        let dispatch = self.sample_dispatch();
        let results = try_parallel_map(cells.len(), self.threads, |i| {
            if let Some(r) = &cached[i] {
                return r.clone();
            }
            if force_fail.as_deref() == Some(labels[i].as_str()) {
                panic!("forced failure requested for cell '{}'", labels[i]);
            }
            match &dispatch {
                Some(d) => simulate_sampled_cell(&jobs[i], &cells[i], d),
                None => simulate(&jobs[i], &cells[i].cfg),
            }
        });
        let mut reports = Vec::with_capacity(cells.len());
        for (i, result) in results.into_iter().enumerate() {
            let report = match result {
                Ok(r) => {
                    if cached[i].is_none() {
                        if let Some(key) = keys[i] {
                            self.cache_store(key, &r);
                        }
                    }
                    r
                }
                Err(e) => {
                    if !self.keep_going {
                        panic!("cell {i} ({}) failed: {e}", labels[i]);
                    }
                    failed_report(&cells[i], &jobs[i].name, SimError::Panic { message: e.message })
                }
            };
            if let Some(err) = report.outcome.error() {
                if !self.keep_going {
                    panic!("cell {i} ({}) failed: {err}", labels[i]);
                }
                self.failures
                    .push(CellFailure { label: labels[i].clone(), message: err.to_string() });
            }
            reports.push(report);
        }
        self.account(&reports);
        reports
    }

    fn account(&mut self, reports: &[SimReport]) {
        for r in reports {
            self.runs += 1;
            // Covered instructions: committed for exact runs, fast-forward +
            // detailed for sampled ones (the honest throughput numerator).
            self.sim_committed += r.simulated_instructions;
            self.sim_seconds += r.host_seconds;
            if let Some(san) = &r.sanitizer {
                self.san_checks += san.checks;
                self.san_violations += san.violations;
            }
        }
    }

    /// Aggregate sanitizer counts over every run: `(checks, violations)`.
    /// Both zero unless [`Ctx::sanitize`] was set.
    pub fn sanitize_totals(&self) -> (u64, u64) {
        (self.san_checks, self.san_violations)
    }

    /// Aggregate simulation cost over every run through this context:
    /// `(runs, covered instructions, seconds inside simulate())`. Covered
    /// means committed for exact runs and fast-forward + detailed for
    /// sampled ones.
    /// Seconds are summed per-run host time (CPU time when batches run on
    /// several threads, wall time when serial).
    pub fn throughput_totals(&self) -> (u64, u64, f64) {
        (self.runs, self.sim_committed, self.sim_seconds)
    }

    /// One-line aggregate throughput summary (for stderr diagnostics —
    /// never part of experiment text, which must stay deterministic).
    pub fn throughput_summary(&self) -> String {
        let (runs, instrs, secs) = self.throughput_totals();
        let ips = if secs > 0.0 { instrs as f64 / secs / 1e6 } else { 0.0 };
        format!(
            "{} runs, {:.1}M instrs simulated in {:.2}s simulate() time ({:.2}M instr/s)",
            runs,
            instrs as f64 / 1e6,
            secs,
            ips
        )
    }
}

/// How a sampled cell's measure phase is dispatched — resolved once per
/// batch from the context's knobs and shared read-only by the cell workers.
#[derive(Clone)]
struct SampleDispatch {
    scfg: SampleConfig,
    threads: usize,
    /// `(dvrsim binary, job count)` when worker processes were requested
    /// and the binary was found.
    worker: Option<(PathBuf, usize)>,
    size: SizeClass,
    seed: u64,
}

/// Locates the `dvrsim` binary built alongside the current executable
/// (`figures` and `dvrsim` land in the same target directory; test
/// binaries sit one level down in `deps/`).
pub fn dvrsim_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..2 {
        let cand = dir.join(format!("dvrsim{}", std::env::consts::EXE_SUFFIX));
        if cand.is_file() {
            return Some(cand);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

/// The CLI spelling of a technique (the `dvrsim --technique` flag).
fn technique_flag(t: Technique) -> &'static str {
    match t {
        Technique::Baseline => "ooo",
        Technique::Pre => "pre",
        Technique::Imp => "imp",
        Technique::Vr => "vr",
        Technique::Dvr => "dvr",
        Technique::DvrOffload => "dvr-offload",
        Technique::DvrDiscovery => "dvr-discovery",
        Technique::Oracle => "oracle",
    }
}

fn size_flag(s: SizeClass) -> &'static str {
    match s {
        SizeClass::Test => "test",
        SizeClass::Small => "small",
        SizeClass::Paper => "paper",
    }
}

/// The `dvrsim sample-worker` command line that rebuilds this cell's
/// workload and configuration from flags (the orchestrator appends
/// `--checkpoint <file>` per period).
fn worker_argv(exe: &Path, cell: &Cell, d: &SampleDispatch) -> Vec<String> {
    let mut v: Vec<String> = vec![
        exe.to_string_lossy().into_owned(),
        "sample-worker".into(),
        "--bench".into(),
        cell.benchmark.name().into(),
        "--technique".into(),
        technique_flag(cell.cfg.technique).into(),
        "--size".into(),
        size_flag(d.size).into(),
        "--seed".into(),
        d.seed.to_string(),
        "--instrs".into(),
        cell.cfg.max_instructions.to_string(),
        "--interval".into(),
        d.scfg.interval.to_string(),
        "--warmup".into(),
        d.scfg.warmup.to_string(),
        "--period".into(),
        d.scfg.period.to_string(),
        "--placement".into(),
        match d.scfg.placement {
            dvr_sim::Placement::Systematic => "systematic".into(),
            dvr_sim::Placement::Random => "random".into(),
        },
        "--sample-seed".into(),
        d.scfg.seed.to_string(),
        "--json".into(),
    ];
    if let Some(g) = cell.input {
        v.push("--input".into());
        v.push(g.name().into());
    }
    v
}

static SCRATCH_ID: AtomicU64 = AtomicU64::new(0);

/// Runs one sampled cell under a dispatch description: worker processes
/// when requested and applicable, in-process measure threads otherwise.
///
/// A worker rebuilds its configuration from `(technique, size, seed,
/// instrs)` alone, so only unmodified Table 1 cells (no ROB/MSHR/lane
/// sweeps, no sanitizer) take the process path; everything else falls back
/// in-process. Both paths are byte-identical, so the choice never shows in
/// figure output.
fn simulate_sampled_cell(wl: &Workload, cell: &Cell, d: &SampleDispatch) -> SimReport {
    let plain = cell.cfg
        == SimConfig::new(cell.cfg.technique).with_max_instructions(cell.cfg.max_instructions);
    if let Some((exe, njobs)) = d.worker.as_ref().filter(|_| plain) {
        let t0 = std::time::Instant::now();
        let argv = worker_argv(exe, cell, d);
        let scratch = std::env::temp_dir().join(format!(
            "figures-sample-{}-{}",
            std::process::id(),
            SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let result = sample_emit(wl, &cell.cfg, &d.scfg).and_then(|emit| {
            let periods = measure_periods_via_workers(&argv, &emit.checkpoints, *njobs, &scratch)?;
            Ok(merge_periods(periods, emit.total_retired, emit.halted))
        });
        let _ = std::fs::remove_dir_all(&scratch);
        let mut r = sampled_report_from(wl, &cell.cfg, &d.scfg, result);
        r.host_seconds = t0.elapsed().as_secs_f64();
        return r;
    }
    simulate_sampled_threads(wl, &cell.cfg, &d.scfg, d.threads)
}

/// Wall-clock comparison of the sequential vs parallel sampled driver on
/// one benchmark — the perf-trajectory probe persisted into
/// `BENCH_<name>.json`.
#[derive(Clone, Debug)]
pub struct SampleProbe {
    /// The probed workload's name.
    pub bench: String,
    /// Region-of-interest length of both runs.
    pub instrs: u64,
    /// Wall seconds of the sequential (one-thread) driver.
    pub sequential_seconds: f64,
    /// Wall seconds with the measure phase fanned across
    /// [`SampleProbe::threads`] in-process workers.
    pub parallel_seconds: f64,
    /// Worker-thread count of the parallel run.
    pub threads: usize,
    /// `sequential_seconds / parallel_seconds`.
    pub speedup: f64,
}

/// Probes the checkpoint-parallel speedup: one benchmark (BFS on the KR
/// graph) sampled sequentially and with the measure phase on `threads`
/// workers, at the context's size/seed/ROI. The reports are byte-identical;
/// only the wall clock differs. Runs are not accounted into the context's
/// throughput totals.
pub fn sample_speedup_probe(ctx: &mut Ctx, threads: usize) -> SampleProbe {
    let wl = ctx.workload(Benchmark::Bfs, Some(GraphInput::Kr));
    let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(ctx.instrs);
    let scfg = ctx.sample.unwrap_or_default();
    let seq = simulate_sampled(&wl, &cfg, &scfg);
    let par = simulate_sampled_threads(&wl, &cfg, &scfg, threads);
    SampleProbe {
        bench: wl.name.clone(),
        instrs: cfg.max_instructions,
        sequential_seconds: seq.host_seconds,
        parallel_seconds: par.host_seconds,
        threads,
        speedup: seq.host_seconds / par.host_seconds.max(1e-9),
    }
}

/// Wall-clock probe of the crash-safe sweep service (`dvrsim sweep`):
/// one tiny grid swept cold, resumed from its journal, and served from a
/// warm cache — the robustness-overhead numbers persisted into
/// `BENCH_<name>.json`.
#[derive(Clone, Debug)]
pub struct SweepProbe {
    /// Cells in the probe grid.
    pub cells: usize,
    /// Wall seconds of the cold sweep (compute + journal + cache store).
    pub cold_seconds: f64,
    /// Wall seconds rerunning against the completed journal (pure
    /// replay; nothing is recomputed).
    pub resume_seconds: f64,
    /// `resume_seconds / cold_seconds` — the cost of crash-safety on a
    /// finished sweep.
    pub resume_overhead: f64,
    /// Fraction of cells served by the content-addressed cache when the
    /// journal is fresh but the cache is warm.
    pub cache_hit_rate: f64,
}

/// Runs the sweep probe on a private scratch directory: a 2-cell grid
/// (BFS/KR under OoO and DVR at test scale) swept cold, resumed, and
/// re-swept with a fresh journal against the warm cache. Runs are not
/// accounted into the context's throughput totals.
pub fn sweep_resume_probe(ctx: &Ctx) -> SweepProbe {
    use dvr_sim::sim_sweep::{run_sweep, ResultCache, SweepOptions};
    use dvr_sim::{DvrSweepRunner, SweepCell};

    let dir = std::env::temp_dir().join(format!(
        "bench-sweep-probe-{}-{}",
        std::process::id(),
        SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create sweep-probe scratch");
    let cells: Vec<String> = SweepCell::grid(
        &[Benchmark::Bfs],
        &[GraphInput::Kr],
        &[Technique::Baseline, Technique::Dvr],
        SizeClass::Test,
        ctx.seed,
        20_000,
    )
    .iter()
    .map(SweepCell::key)
    .collect();
    let runner = DvrSweepRunner::new(None);
    let cache = ResultCache::open(&dir.join("cache")).ok();
    let journal = dir.join("journal.dvrj");
    let opts = SweepOptions::default();

    let t0 = std::time::Instant::now();
    let _ = run_sweep(&cells, &runner, &journal, cache.as_ref(), &opts);
    let cold_seconds = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let _ = run_sweep(&cells, &runner, &journal, cache.as_ref(), &opts);
    let resume_seconds = t1.elapsed().as_secs_f64();
    let warm = run_sweep(&cells, &runner, &dir.join("journal-warm.dvrj"), cache.as_ref(), &opts);
    let cache_hit_rate =
        warm.map(|r| r.stats.from_cache as f64 / (r.stats.total.max(1)) as f64).unwrap_or(0.0);
    let _ = std::fs::remove_dir_all(&dir);
    SweepProbe {
        cells: cells.len(),
        cold_seconds,
        resume_seconds,
        resume_overhead: resume_seconds / cold_seconds.max(1e-9),
        cache_hit_rate,
    }
}

/// A zero-IPC placeholder standing in for a cell that produced no report
/// (worker panic). Downstream math must survive it: `speedup_over` and the
/// figure normalizers treat a zero-IPC baseline as 0.
fn failed_report(cell: &Cell, workload_name: &str, err: SimError) -> SimReport {
    SimReport {
        technique: cell.cfg.technique,
        workload: workload_name.to_string(),
        core: CoreStats::default(),
        mem: MemStats::default(),
        ipc: 0.0,
        mlp: 0.0,
        simulated_instructions: 0,
        host_seconds: 0.0,
        sampling: None,
        engine: EngineSummary::default(),
        outcome: RunOutcome::Failed(err),
        sanitizer: None,
        dvr_trace: None,
        taint_fills: None,
        spec_extents: None,
    }
}

/// Normalizes an IPC against a baseline that may come from a failed cell.
fn norm(ipc: f64, base: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        ipc / base
    }
}

/// A rendered experiment: the text report plus zero or more charts.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    /// The aligned-table report (also the charts' accessible table view).
    pub text: String,
    /// Charts to render with `--svg`.
    pub charts: Vec<Chart>,
}

impl Experiment {
    fn text_only(text: String) -> Self {
        Experiment { text, charts: vec![] }
    }
}

/// The benchmark-input combinations of Figure 7 (GAP × 5 inputs, then the
/// eight hpc-db benchmarks).
pub fn fig7_combos() -> Vec<(Benchmark, Option<GraphInput>)> {
    let mut v = Vec::new();
    for b in Benchmark::GAP {
        for g in GraphInput::ALL {
            v.push((b, Some(g)));
        }
    }
    for b in Benchmark::HPC_DB {
        v.push((b, None));
    }
    v
}

/// The 13-benchmark set with GAP pinned to KR (used by Figures 2, 8, 9,
/// 10, 11, 12 to bound runtime).
pub fn combos_kr() -> Vec<(Benchmark, Option<GraphInput>)> {
    Benchmark::ALL.iter().map(|&b| (b, b.is_gap().then_some(GraphInput::Kr))).collect()
}

/// Harmonic mean (the paper's average for speedups).
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x.max(1e-12)).sum::<f64>()
}

/// Label for a combo.
pub fn combo_name(b: Benchmark, g: Option<GraphInput>) -> String {
    match g {
        Some(g) if b.is_gap() => format!("{}_{}", b.name(), g.name()),
        _ => b.name().to_string(),
    }
}

/// All experiment names, in paper order (the paper's tables and figures,
/// then our extensions).
pub const EXPERIMENTS: [&str; 11] = [
    "table1", "table2", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation",
    "mix",
];

/// Runs a named experiment, returning its printable report (text only).
pub fn run_experiment(name: &str, ctx: &mut Ctx) -> String {
    run_experiment_full(name, ctx).text
}

/// Runs a named experiment, returning text and charts.
///
/// Valid names: `table1`, `table2`, `fig2`, `fig7`, `fig8`, `fig9`,
/// `fig10`, `fig11`, `fig12`, `ablation`, `mix`, `all`.
///
/// In keep-going mode, cells that failed during the experiment are listed
/// in a trailing text section and their categories marked on the charts.
pub fn run_experiment_full(name: &str, ctx: &mut Ctx) -> Experiment {
    if name == "all" {
        let mut out = Experiment::default();
        for n in EXPERIMENTS {
            let e = run_experiment_full(n, ctx);
            out.text.push_str(&e.text);
            out.text.push('\n');
            out.charts.extend(e.charts);
        }
        return out;
    }
    let mark = ctx.failures.len();
    let mut e = match name {
        "table1" => Experiment::text_only(table1()),
        "table2" => Experiment::text_only(table2(ctx)),
        "fig2" => fig2(ctx),
        "fig7" => fig7(ctx),
        "fig8" => fig8(ctx),
        "fig9" => fig9(ctx),
        "fig10" => fig10(ctx),
        "fig11" => fig11(ctx),
        "fig12" => fig12(ctx),
        "ablation" => Experiment::text_only(ablation(ctx)),
        "mix" => mix_figure(ctx),
        other => Experiment::text_only(format!("unknown experiment '{other}'\n")),
    };
    annotate_failures(&mut e, &ctx.failures[mark..]);
    e
}

/// Appends a failed-cells section to the experiment text and marks failed
/// categories (matched by the `combo/` prefix of the failure label) on its
/// charts.
fn annotate_failures(e: &mut Experiment, failures: &[CellFailure]) {
    if failures.is_empty() {
        return;
    }
    let _ = writeln!(e.text, "-- {} FAILED cell(s), shown as 0 above --", failures.len());
    for f in failures {
        let _ = writeln!(e.text, "   {}: {}", f.label, f.message);
    }
    for chart in &mut e.charts {
        chart.failed = chart
            .categories
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                failures.iter().any(|f| {
                    f.label.strip_prefix(c.as_str()).is_some_and(|rest| rest.starts_with('/'))
                })
            })
            .map(|(i, _)| i)
            .collect();
    }
}

/// Table 1: the active baseline configuration.
pub fn table1() -> String {
    let cfg = SimConfig::new(Technique::Baseline);
    let mut s = String::new();
    let _ = writeln!(s, "== Table 1: baseline configuration ==");
    let c = cfg.core;
    let h = cfg.hierarchy;
    let _ = writeln!(s, "ROB size               {}", c.rob_size);
    let _ = writeln!(
        s,
        "Queue sizes            issue ({}), load ({}), store ({})",
        c.iq_size, c.lq_size, c.sq_size
    );
    let _ = writeln!(s, "Processor width        {}-wide fetch/dispatch/commit", c.width);
    let _ = writeln!(s, "Pipeline depth         {} front-end stages", c.frontend_penalty);
    let _ = writeln!(s, "Branch predictor       TAGE + loop predictor (8 KB class)");
    let _ = writeln!(
        s,
        "Functional units       {} int add, {} int mult, {} int div, {} ld ports, {} st ports",
        c.int_alu, c.int_mul, c.int_div, c.load_ports, c.store_ports
    );
    let _ = writeln!(
        s,
        "L1 D-cache             {} KB, assoc {}, {}-cycle, {} MSHRs, stride prefetcher",
        h.l1.size_bytes / 1024,
        h.l1.assoc,
        h.l1.latency,
        h.mshrs
    );
    let _ = writeln!(
        s,
        "Private L2 cache       {} KB, assoc {}, {}-cycle",
        h.l2.size_bytes / 1024,
        h.l2.assoc,
        h.l2.latency
    );
    let _ = writeln!(
        s,
        "Shared L3 cache        {} MB, assoc {}, {}-cycle",
        h.l3.size_bytes / 1024 / 1024,
        h.l3.assoc,
        h.l3.latency
    );
    let _ = writeln!(
        s,
        "Memory                 {}-cycle min latency, 1 line / {} cycles bandwidth",
        h.dram.min_latency, h.dram.cycles_per_line
    );
    s
}

/// Table 2: graph inputs and LLC MPKI aggregated over the five GAP
/// benchmarks per input, on the baseline core.
pub fn table2(ctx: &mut Ctx) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Table 2: graph inputs (scaled surrogates) ==");
    let _ = writeln!(s, "{:6} {:>10} {:>12} {:>10}", "Input", "Nodes", "Edges", "LLC MPKI");
    let cells: Vec<Cell> = GraphInput::ALL
        .into_iter()
        .flat_map(|g| Benchmark::GAP.into_iter().map(move |b| (b, g)))
        .map(|(b, g)| Cell::new(b, Some(g), ctx.tcfg(Technique::Baseline)))
        .collect();
    let mut rep = ctx.run_batch(&cells).into_iter();
    for g in GraphInput::ALL {
        let graph = g.generate(ctx.size.graph_scale_shift(), ctx.seed);
        let (mut misses, mut instrs) = (0u64, 0u64);
        for _ in Benchmark::GAP {
            let r = rep.next().expect("one report per cell");
            misses += r.mem.dram_demand;
            instrs += r.core.committed;
        }
        let mpki = 1000.0 * misses as f64 / instrs.max(1) as f64;
        let _ = writeln!(s, "{:6} {:>10} {:>12} {:>10.1}", g.name(), graph.n, graph.m(), mpki);
    }
    s
}

const ROB_SWEEP: [usize; 5] = [128, 192, 224, 350, 512];

/// Figure 2: OoO & VR performance vs ROB size (normalized to OoO-350) and
/// full-window stall fraction.
pub fn fig2(ctx: &mut Ctx) -> Experiment {
    let combos = combos_kr();
    // Baseline at 350 for normalization, then the (OoO, VR) pair per ROB
    // point per combo — all enumerated up front so the batch can fan out.
    let mut cells: Vec<Cell> =
        combos.iter().map(|&(b, g)| Cell::new(b, g, ctx.tcfg(Technique::Baseline))).collect();
    for rob in ROB_SWEEP {
        for &(b, g) in &combos {
            cells.push(Cell::new(b, g, ctx.tcfg(Technique::Baseline).with_rob(rob)));
            cells.push(Cell::new(b, g, ctx.tcfg(Technique::Vr).with_rob(rob)));
        }
    }
    let mut rep = ctx.run_batch(&cells).into_iter();
    let base350: Vec<f64> = combos.iter().map(|_| rep.next().expect("baseline cell").ipc).collect();
    let mut ooo_pts = Vec::new();
    let mut vr_pts = Vec::new();
    let mut stall_pts = Vec::new();
    for _rob in ROB_SWEEP {
        let mut ooo = Vec::new();
        let mut vr = Vec::new();
        let mut stall = Vec::new();
        for (k, _) in combos.iter().enumerate() {
            let rb = rep.next().expect("OoO cell");
            ooo.push(norm(rb.ipc, base350[k]));
            stall.push(rb.core.rob_full_stall_fraction());
            let rv = rep.next().expect("VR cell");
            vr.push(norm(rv.ipc, base350[k]));
        }
        ooo_pts.push(hmean(&ooo));
        vr_pts.push(hmean(&vr));
        stall_pts.push(stall.iter().sum::<f64>() / stall.len() as f64);
    }

    let cats: Vec<String> = ROB_SWEEP.iter().map(|r| r.to_string()).collect();
    let perf = Chart {
        title: "Figure 2: OoO & VR vs ROB size (norm. to OoO-350)".into(),
        y_label: "normalized IPC (h-mean)".into(),
        categories: cats.clone(),
        series: vec![Series::new("OoO", ooo_pts.clone()), Series::new("VR", vr_pts.clone())],
        kind: ChartKind::Lines,
        baseline: Some(1.0),
        slug: "fig02_perf".into(),
        failed: vec![],
    };
    let stall = Chart {
        title: "Figure 2 (right axis): full-window stall fraction".into(),
        y_label: "fraction of cycles".into(),
        categories: cats,
        series: vec![Series::new("window-full", stall_pts.clone())],
        kind: ChartKind::Lines,
        baseline: None,
        slug: "fig02_stall".into(),
        failed: vec![],
    };

    let mut text = String::new();
    let _ = writeln!(text, "== Figure 2: OoO & VR vs ROB size (norm. to OoO-350) ==");
    let _ =
        writeln!(text, "{:>6} {:>10} {:>10} {:>12}", "ROB", "OoO(norm)", "VR(norm)", "stall-frac");
    for (i, rob) in ROB_SWEEP.iter().enumerate() {
        let _ = writeln!(
            text,
            "{:>6} {:>10.3} {:>10.3} {:>12.3}",
            rob, ooo_pts[i], vr_pts[i], stall_pts[i]
        );
    }
    Experiment { text, charts: vec![perf, stall] }
}

/// Figure 7: speedup of each technique over the baseline, per
/// benchmark-input combination.
pub fn fig7(ctx: &mut Ctx) -> Experiment {
    let combos = fig7_combos();
    let mut cells = Vec::new();
    for &(b, g) in &combos {
        cells.push(Cell::new(b, g, ctx.tcfg(Technique::Baseline)));
        for &t in &Technique::FIG7 {
            cells.push(Cell::new(b, g, ctx.tcfg(t)));
        }
    }
    let mut rep = ctx.run_batch(&cells).into_iter();
    let mut cats = Vec::new();
    let mut base_ipcs = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); Technique::FIG7.len()];
    for &(b, g) in &combos {
        let base = rep.next().expect("baseline cell");
        cats.push(combo_name(b, g));
        base_ipcs.push(base.ipc);
        for (i, _) in Technique::FIG7.iter().enumerate() {
            cols[i].push(rep.next().expect("technique cell").speedup_over(&base));
        }
    }

    let mut text = String::new();
    let _ = writeln!(text, "== Figure 7: normalized performance (speedup over OoO) ==");
    let _ = writeln!(
        text,
        "{:16} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "OoO-IPC", "PRE", "IMP", "VR", "DVR", "Oracle"
    );
    for (k, c) in cats.iter().enumerate() {
        let mut row = format!("{:16} {:>8.3}", c, base_ipcs[k]);
        for col in &cols {
            let _ = write!(row, " {:>7.2}", col[k]);
        }
        let _ = writeln!(text, "{row}");
    }
    let mut row = format!("{:16} {:>8}", "H-MEAN", "");
    for col in &cols {
        let _ = write!(row, " {:>7.2}", hmean(col));
    }
    let _ = writeln!(text, "{row}");

    let chart = Chart {
        title: "Figure 7: speedup over the OoO baseline".into(),
        y_label: "speedup (x)".into(),
        categories: cats,
        series: Technique::FIG7
            .iter()
            .zip(&cols)
            .map(|(t, col)| Series::new(t.name(), col.clone()))
            .collect(),
        kind: ChartKind::GroupedBars,
        baseline: Some(1.0),
        slug: "fig07_performance".into(),
        failed: vec![],
    };
    Experiment { text, charts: vec![chart] }
}

/// Figure 8: the DVR breakdown (VR → Offload → +Discovery → +Nested).
pub fn fig8(ctx: &mut Ctx) -> Experiment {
    let combos = combos_kr();
    let mut cells = Vec::new();
    for &(b, g) in &combos {
        cells.push(Cell::new(b, g, ctx.tcfg(Technique::Baseline)));
        for &t in &Technique::FIG8 {
            cells.push(Cell::new(b, g, ctx.tcfg(t)));
        }
    }
    let mut rep = ctx.run_batch(&cells).into_iter();
    let mut cats = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); Technique::FIG8.len()];
    for &(b, g) in &combos {
        let base = rep.next().expect("baseline cell");
        cats.push(combo_name(b, g));
        for (i, _) in Technique::FIG8.iter().enumerate() {
            cols[i].push(rep.next().expect("technique cell").speedup_over(&base));
        }
    }

    let names = ["VR", "Offload", "+Discovery", "DVR"];
    let mut text = String::new();
    let _ = writeln!(text, "== Figure 8: DVR breakdown (speedup over OoO) ==");
    let _ = writeln!(
        text,
        "{:16} {:>7} {:>9} {:>11} {:>7}",
        "benchmark", names[0], names[1], names[2], names[3]
    );
    for (k, c) in cats.iter().enumerate() {
        let _ = writeln!(
            text,
            "{:16} {:>7.2} {:>9.2} {:>11.2} {:>7.2}",
            c, cols[0][k], cols[1][k], cols[2][k], cols[3][k]
        );
    }
    let _ = writeln!(
        text,
        "{:16} {:>7.2} {:>9.2} {:>11.2} {:>7.2}",
        "H-MEAN",
        hmean(&cols[0]),
        hmean(&cols[1]),
        hmean(&cols[2]),
        hmean(&cols[3])
    );

    let chart = Chart {
        title: "Figure 8: DVR breakdown (speedup over OoO)".into(),
        y_label: "speedup (x)".into(),
        categories: cats,
        series: names.iter().zip(&cols).map(|(n, col)| Series::new(*n, col.clone())).collect(),
        kind: ChartKind::GroupedBars,
        baseline: Some(1.0),
        slug: "fig08_breakdown".into(),
        failed: vec![],
    };
    Experiment { text, charts: vec![chart] }
}

/// Figure 9: memory-level parallelism (average MSHRs in use per cycle).
pub fn fig9(ctx: &mut Ctx) -> Experiment {
    let combos = combos_kr();
    let techs = [Technique::Baseline, Technique::Vr, Technique::Dvr];
    let cells: Vec<Cell> =
        combos.iter().flat_map(|&(b, g)| techs.map(|t| Cell::new(b, g, ctx.tcfg(t)))).collect();
    let mut rep = ctx.run_batch(&cells).into_iter();
    let mut cats = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); techs.len()];
    for &(b, g) in &combos {
        cats.push(combo_name(b, g));
        for (i, _) in techs.iter().enumerate() {
            cols[i].push(rep.next().expect("technique cell").mlp);
        }
    }

    let mut text = String::new();
    let _ = writeln!(text, "== Figure 9: MLP (avg MSHRs used per cycle) ==");
    let _ = writeln!(text, "{:16} {:>7} {:>7} {:>7}", "benchmark", "OoO", "VR", "DVR");
    for (k, c) in cats.iter().enumerate() {
        let _ =
            writeln!(text, "{:16} {:>7.2} {:>7.2} {:>7.2}", c, cols[0][k], cols[1][k], cols[2][k]);
    }
    let n = cats.len() as f64;
    let _ = writeln!(
        text,
        "{:16} {:>7.2} {:>7.2} {:>7.2}",
        "MEAN",
        cols[0].iter().sum::<f64>() / n,
        cols[1].iter().sum::<f64>() / n,
        cols[2].iter().sum::<f64>() / n
    );

    let chart = Chart {
        title: "Figure 9: memory-level parallelism (MSHRs per cycle)".into(),
        y_label: "avg MSHRs in use".into(),
        categories: cats,
        series: vec![
            Series::new("OoO", cols[0].clone()),
            Series::new("VR", cols[1].clone()),
            Series::new("DVR", cols[2].clone()),
        ],
        kind: ChartKind::GroupedBars,
        baseline: None,
        slug: "fig09_mlp".into(),
        failed: vec![],
    };
    Experiment { text, charts: vec![chart] }
}

/// Figure 10: DRAM reads normalized to the baseline, split into demand vs
/// runahead traffic (accuracy/coverage).
pub fn fig10(ctx: &mut Ctx) -> Experiment {
    let combos = combos_kr();
    let mut cats = Vec::new();
    // Per technique: (demand fraction, runahead fraction), normalized to
    // the baseline's total reads.
    let mut vr_demand = Vec::new();
    let mut vr_ra = Vec::new();
    let mut dvr_demand = Vec::new();
    let mut dvr_ra = Vec::new();
    let cells: Vec<Cell> = combos
        .iter()
        .flat_map(|&(b, g)| {
            [Technique::Baseline, Technique::Vr, Technique::Dvr]
                .map(|t| Cell::new(b, g, ctx.tcfg(t)))
        })
        .collect();
    let mut rep = ctx.run_batch(&cells).into_iter();
    for &(b, g) in &combos {
        let base = rep.next().expect("baseline cell");
        let vr = rep.next().expect("VR cell");
        let dvr = rep.next().expect("DVR cell");
        cats.push(combo_name(b, g));
        let norm = base.mem.dram_reads().max(1) as f64;
        vr_ra.push(vr.mem.dram_runahead() as f64 / norm);
        vr_demand.push((vr.mem.dram_reads() - vr.mem.dram_runahead()) as f64 / norm);
        dvr_ra.push(dvr.mem.dram_runahead() as f64 / norm);
        dvr_demand.push((dvr.mem.dram_reads() - dvr.mem.dram_runahead()) as f64 / norm);
    }

    let mut text = String::new();
    let _ = writeln!(text, "== Figure 10: DRAM accesses normalized to OoO (demand+runahead) ==");
    let _ = writeln!(
        text,
        "{:16} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "VR-total", "VR-ra%", "DVR-total", "DVR-ra%"
    );
    for (k, c) in cats.iter().enumerate() {
        let vr_t = vr_demand[k] + vr_ra[k];
        let dvr_t = dvr_demand[k] + dvr_ra[k];
        let _ = writeln!(
            text,
            "{:16} {:>9.2} {:>8.0}% {:>9.2} {:>8.0}%",
            c,
            vr_t,
            100.0 * vr_ra[k] / vr_t.max(1e-12),
            dvr_t,
            100.0 * dvr_ra[k] / dvr_t.max(1e-12),
        );
    }

    let mk = |name: &str, demand: &[f64], ra: &[f64], slug: &str| Chart {
        title: format!("Figure 10: {name} DRAM reads (normalized to OoO)"),
        y_label: "DRAM line reads / OoO total".into(),
        categories: cats.clone(),
        series: vec![Series::new("demand", demand.to_vec()), Series::new("runahead", ra.to_vec())],
        kind: ChartKind::StackedBars,
        baseline: Some(1.0),
        slug: slug.into(),
        failed: vec![],
    };
    Experiment {
        text,
        charts: vec![
            mk("VR", &vr_demand, &vr_ra, "fig10_vr_traffic"),
            mk("DVR", &dvr_demand, &dvr_ra, "fig10_dvr_traffic"),
        ],
    }
}

/// Figure 11: timeliness of DVR prefetches (where the main thread found
/// the prefetched lines).
pub fn fig11(ctx: &mut Ctx) -> Experiment {
    let combos = combos_kr();
    let mut cats = Vec::new();
    let mut buckets: [Vec<f64>; 4] = Default::default();
    let cells: Vec<Cell> =
        combos.iter().map(|&(b, g)| Cell::new(b, g, ctx.tcfg(Technique::Dvr))).collect();
    let mut rep = ctx.run_batch(&cells).into_iter();
    for &(b, g) in &combos {
        let r = rep.next().expect("DVR cell");
        cats.push(combo_name(b, g));
        let t = r.timeliness().unwrap_or([0.0; 4]);
        for (i, bv) in t.iter().enumerate() {
            buckets[i].push(*bv);
        }
    }

    let mut text = String::new();
    let _ = writeln!(text, "== Figure 11: DVR prefetch timeliness ==");
    let _ = writeln!(
        text,
        "{:16} {:>7} {:>7} {:>7} {:>9}",
        "benchmark", "L1%", "L2%", "L3%", "off-chip%"
    );
    for (k, c) in cats.iter().enumerate() {
        let _ = writeln!(
            text,
            "{:16} {:>6.0}% {:>6.0}% {:>6.0}% {:>8.0}%",
            c,
            100.0 * buckets[0][k],
            100.0 * buckets[1][k],
            100.0 * buckets[2][k],
            100.0 * buckets[3][k]
        );
    }

    let chart = Chart {
        title: "Figure 11: DVR prefetch timeliness".into(),
        y_label: "fraction of prefetched lines".into(),
        categories: cats,
        series: vec![
            Series::new("L1", buckets[0].clone()),
            Series::new("L2", buckets[1].clone()),
            Series::new("L3", buckets[2].clone()),
            Series::new("off-chip", buckets[3].clone()),
        ],
        kind: ChartKind::StackedBars,
        baseline: None,
        slug: "fig11_timeliness".into(),
        failed: vec![],
    };
    Experiment { text, charts: vec![chart] }
}

/// Figure 12: DVR performance vs ROB size, normalized to OoO-350.
pub fn fig12(ctx: &mut Ctx) -> Experiment {
    let combos = combos_kr();
    let mut cells: Vec<Cell> =
        combos.iter().map(|&(b, g)| Cell::new(b, g, ctx.tcfg(Technique::Baseline))).collect();
    for rob in ROB_SWEEP {
        for &(b, g) in &combos {
            cells.push(Cell::new(b, g, ctx.tcfg(Technique::Dvr).with_rob(rob)));
            cells.push(Cell::new(b, g, ctx.tcfg(Technique::Dvr).with_scaled_backend(rob)));
        }
    }
    let mut rep = ctx.run_batch(&cells).into_iter();
    let base350: Vec<f64> = combos.iter().map(|_| rep.next().expect("baseline cell").ipc).collect();
    let mut dvr_pts = Vec::new();
    let mut scaled_pts = Vec::new();
    for _rob in ROB_SWEEP {
        let mut dvr = Vec::new();
        let mut dvr_scaled = Vec::new();
        for (k, _) in combos.iter().enumerate() {
            dvr.push(norm(rep.next().expect("DVR cell").ipc, base350[k]));
            dvr_scaled.push(norm(rep.next().expect("scaled cell").ipc, base350[k]));
        }
        dvr_pts.push(hmean(&dvr));
        scaled_pts.push(hmean(&dvr_scaled));
    }

    let mut text = String::new();
    let _ = writeln!(text, "== Figure 12: DVR vs ROB size (norm. to OoO-350) ==");
    let _ = writeln!(text, "{:>6} {:>10} {:>12}", "ROB", "DVR(norm)", "DVR(scaled)");
    for (i, rob) in ROB_SWEEP.iter().enumerate() {
        let _ = writeln!(text, "{:>6} {:>10.3} {:>12.3}", rob, dvr_pts[i], scaled_pts[i]);
    }

    let chart = Chart {
        title: "Figure 12: DVR vs ROB size (norm. to OoO-350)".into(),
        y_label: "normalized IPC (h-mean)".into(),
        categories: ROB_SWEEP.iter().map(|r| r.to_string()).collect(),
        series: vec![Series::new("DVR", dvr_pts), Series::new("DVR scaled-backend", scaled_pts)],
        kind: ChartKind::Lines,
        baseline: Some(1.0),
        slug: "fig12_dvr_rob".into(),
        failed: vec![],
    };
    Experiment { text, charts: vec![chart] }
}

/// Our ablations: MSHR-count and lane-count sensitivity (including the
/// paper's Section 6.1 "wider 256-element DVR" extension).
pub fn ablation(ctx: &mut Ctx) -> String {
    const MSHR_COMBOS: [(Benchmark, Option<GraphInput>); 2] =
        [(Benchmark::Hj8, None), (Benchmark::Bfs, Some(GraphInput::Kr))];
    const MSHR_SWEEP: [usize; 3] = [12, 24, 48];
    const DRAM_COMBOS: [(Benchmark, Option<GraphInput>); 2] =
        [(Benchmark::Camel, None), (Benchmark::NasCg, None)];
    const LANE_COMBOS: [(Benchmark, Option<GraphInput>); 3] =
        [(Benchmark::NasCg, None), (Benchmark::NasIs, None), (Benchmark::Hj8, None)];
    const LANE_SWEEP: [usize; 4] = [32, 64, 128, 256];

    // All three ablation sections, enumerated in output order.
    let mut cells = Vec::new();
    for (b, g) in MSHR_COMBOS {
        for mshrs in MSHR_SWEEP {
            cells.push(Cell::new(b, g, ctx.tcfg(Technique::Dvr).with_mshrs(mshrs)));
        }
    }
    for (b, g) in DRAM_COMBOS {
        for t in [Technique::Baseline, Technique::Dvr] {
            cells.push(Cell::new(b, g, ctx.tcfg(t)));
            cells.push(Cell::new(b, g, ctx.tcfg(t).with_banked_dram()));
        }
    }
    for (b, g) in LANE_COMBOS {
        cells.push(Cell::new(b, g, ctx.tcfg(Technique::Baseline)));
        cells.push(Cell::new(b, g, ctx.tcfg(Technique::Oracle)));
        for lanes in LANE_SWEEP {
            cells.push(Cell::new(b, g, ctx.tcfg(Technique::Dvr).with_dvr_lanes(lanes)));
        }
    }
    let mut rep = ctx.run_batch(&cells).into_iter();

    let mut s = String::new();
    let _ = writeln!(s, "== Ablations: MSHR count sensitivity (DVR) ==");
    let _ = writeln!(s, "{:16} {:>8} {:>9} {:>7}", "benchmark", "MSHRs", "DVR-IPC", "MLP");
    for (b, g) in MSHR_COMBOS {
        for mshrs in MSHR_SWEEP {
            let r = rep.next().expect("MSHR cell");
            let _ =
                writeln!(s, "{:16} {:>8} {:>9.3} {:>7.2}", combo_name(b, g), mshrs, r.ipc, r.mlp);
        }
    }
    // Banked open-page DRAM (our extension): row-buffer locality matters
    // more for the baseline's sequential streams than for hashed chains.
    let _ = writeln!(s, "\n== Ablations: open-page banked DRAM (extension) ==");
    let _ = writeln!(
        s,
        "{:16} {:>9} {:>9} {:>11} {:>11}",
        "benchmark", "OoO-flat", "OoO-bank", "DVR-flat", "DVR-banked"
    );
    for (b, g) in DRAM_COMBOS {
        let mut row = format!("{:16}", combo_name(b, g));
        for _t in [Technique::Baseline, Technique::Dvr] {
            let flat = rep.next().expect("flat cell");
            let banked = rep.next().expect("banked cell");
            let _ = write!(row, " {:>9.3} {:>9.3}", flat.ipc, banked.ipc);
        }
        let _ = writeln!(s, "{row}");
    }

    let _ = writeln!(s, "\n== Ablations: DVR lane count (Section 6.1 extension) ==");
    let _ = writeln!(
        s,
        "{:16} {:>7} {:>9} {:>9} {:>8}",
        "benchmark", "lanes", "DVR-IPC", "speedup", "Oracle"
    );
    for (b, g) in LANE_COMBOS {
        let base = rep.next().expect("baseline cell");
        let oracle = rep.next().expect("oracle cell").speedup_over(&base);
        for lanes in LANE_SWEEP {
            let r = rep.next().expect("lane cell");
            let _ = writeln!(
                s,
                "{:16} {:>7} {:>9.3} {:>8.2}x {:>7.2}x",
                combo_name(b, g),
                lanes,
                r.ipc,
                r.speedup_over(&base),
                oracle
            );
        }
    }
    s
}

/// Core counts of the mix-scaling figure.
const MIX_CORES: [usize; 3] = [1, 2, 4];

/// Multi-programmed mixes (our extension): round-robin DVR mixes of 1, 2,
/// and 4 cores run on the discrete-event scheduler against a shared
/// L3/DRAM, reported as aggregate throughput (STP — the sum of per-core
/// IPCs normalized to each program's solo IPC) and fairness (the harmonic
/// mean of per-core slowdowns vs solo) versus core count.
///
/// Solo baselines go through [`Ctx::run_batch`], so they fan out over the
/// worker threads and are served by the result cache; the mixes themselves
/// run on the (single-threaded, deterministic) scheduler. Mixes have no
/// sampled mode, so sampling is suspended for this experiment — the solo
/// baselines must be exact too or the slowdowns would compare a sampled
/// estimate against an exact run. The 1-core mix is the scheduler's
/// identity anchor: its report is byte-identical to the solo run, so its
/// row reads exactly STP 1.000 / fairness 1.000.
pub fn mix_figure(ctx: &mut Ctx) -> Experiment {
    let sampling = ctx.sample.take();
    let specs: Vec<MixSpec> =
        MIX_CORES.iter().map(|&n| MixSpec::round_robin(n, Technique::Dvr)).collect();

    // Solo baselines for every distinct (benchmark, input) any mix uses.
    let mut combos: Vec<(Benchmark, Option<GraphInput>)> = Vec::new();
    for spec in &specs {
        for c in &spec.cores {
            if !combos.contains(&(c.bench, c.input)) {
                combos.push((c.bench, c.input));
            }
        }
    }
    let cells: Vec<Cell> =
        combos.iter().map(|&(b, g)| Cell::new(b, g, ctx.tcfg(Technique::Dvr))).collect();
    let solos = ctx.run_batch(&cells);

    let base = ctx.tcfg(Technique::Dvr);
    let mut stp_pts = Vec::new();
    let mut fair_pts = Vec::new();
    let mut rows = Vec::new();
    for spec in &specs {
        let mix = simulate_mix(spec, ctx.size, ctx.seed, &base);
        let solo: Vec<SimReport> = spec
            .cores
            .iter()
            .map(|c| {
                let k = combos.iter().position(|&x| x == (c.bench, c.input)).expect("solo ran");
                solos[k].clone()
            })
            .collect();
        let eval = evaluate_mix(&mix, &solo);
        // Fold the mix's runs (and sanitizer ledgers, shared one included)
        // into the context totals so `--sanitize` covers the shared path.
        ctx.account(&mix.cores);
        if let Some(shared) = &mix.shared_sanitizer {
            ctx.san_checks += shared.checks;
            ctx.san_violations += shared.violations;
        }
        stp_pts.push(eval.throughput);
        fair_pts.push(eval.fairness);
        let benches: Vec<&str> = spec.cores.iter().map(|c| c.bench.name()).collect();
        let slowdowns: Vec<String> = eval.slowdowns.iter().map(|s| format!("{s:.2}")).collect();
        rows.push((spec.cores.len(), benches.join("+"), slowdowns.join(",")));
    }
    ctx.sample = sampling;

    let mut text = String::new();
    let _ = writeln!(text, "== Mix: multi-programmed throughput & fairness vs core count (DVR) ==");
    let _ =
        writeln!(text, "{:>6} {:>10} {:>9} {:>18}  mix", "cores", "STP", "fairness", "slowdowns");
    for (i, (n, benches, slowdowns)) in rows.iter().enumerate() {
        let _ = writeln!(
            text,
            "{:>6} {:>10.3} {:>9.3} {:>18}  {}",
            n, stp_pts[i], fair_pts[i], slowdowns, benches
        );
    }

    let chart = Chart {
        title: "Mix: throughput & fairness vs core count (DVR)".into(),
        y_label: "STP (x) / h-mean slowdown".into(),
        categories: MIX_CORES.iter().map(|n| n.to_string()).collect(),
        series: vec![
            Series::new("throughput (STP)", stp_pts),
            Series::new("fairness (hmean slowdown)", fair_pts),
        ],
        kind: ChartKind::Lines,
        baseline: Some(1.0),
        slug: "mix_scaling".into(),
        failed: vec![],
    };
    Experiment { text, charts: vec![chart] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmean_math() {
        assert!((hmean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((hmean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((hmean(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
        assert_eq!(hmean(&[]), 0.0);
    }

    #[test]
    fn combo_sets_have_expected_sizes() {
        assert_eq!(fig7_combos().len(), 5 * 5 + 8);
        assert_eq!(combos_kr().len(), 13);
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let t = table1();
        assert!(t.contains("350"));
        assert!(t.contains("MSHRs"));
        assert!(t.contains("TAGE"));
    }

    #[test]
    fn small_experiment_runs_and_charts_validate() {
        let mut ctx = Ctx::new(SizeClass::Test, 20_000, 7);
        let e = run_experiment_full("fig9", &mut ctx);
        assert!(e.text.contains("bfs_KR"));
        assert!(e.text.contains("MEAN"));
        assert_eq!(e.charts.len(), 1);
        for c in &e.charts {
            c.validate().expect("chart consistent");
            let svg = c.to_svg();
            assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        }
    }

    #[test]
    fn fig8_text_is_identical_across_thread_counts() {
        let serial = {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7).with_threads(1);
            run_experiment_full("fig8", &mut ctx)
        };
        let parallel = {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7).with_threads(4);
            run_experiment_full("fig8", &mut ctx)
        };
        assert_eq!(serial.text, parallel.text, "experiment text must not depend on threads");
        assert_eq!(
            serial.charts.iter().map(Chart::to_svg).collect::<Vec<_>>(),
            parallel.charts.iter().map(Chart::to_svg).collect::<Vec<_>>(),
            "rendered charts must not depend on threads"
        );
    }

    #[test]
    fn keep_going_replaces_failed_cells_and_records_them() {
        let mut ctx = Ctx::new(SizeClass::Test, 5_000, 7)
            .with_threads(2)
            .with_keep_going(true)
            .with_force_fail("NAS-IS/VR");
        let cells: Vec<Cell> = [Technique::Baseline, Technique::Vr, Technique::Dvr]
            .map(|t| Cell::new(Benchmark::NasIs, None, ctx.tcfg(t)))
            .to_vec();
        let reports = ctx.run_batch(&cells);
        assert_eq!(reports.len(), 3, "failed cell must still occupy its slot");
        assert!(reports[0].outcome.is_complete());
        assert_eq!(reports[1].outcome.kind(), "panic");
        assert_eq!(reports[1].ipc, 0.0);
        assert!(reports[2].outcome.is_complete());
        assert_eq!(ctx.failures().len(), 1);
        assert_eq!(ctx.failures()[0].label, "NAS-IS/VR");
        assert!(ctx.failures()[0].message.contains("forced failure"));
    }

    #[test]
    #[should_panic(expected = "NAS-IS/VR")]
    fn fail_fast_batch_names_the_failed_cell() {
        let mut ctx = Ctx::new(SizeClass::Test, 5_000, 7).with_force_fail("NAS-IS/VR");
        let cells = vec![Cell::new(Benchmark::NasIs, None, ctx.tcfg(Technique::Vr))];
        let _ = ctx.run_batch(&cells);
    }

    #[test]
    fn keep_going_experiment_marks_failures_in_text_and_chart() {
        let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7)
            .with_keep_going(true)
            .with_force_fail("bfs_KR/DVR");
        let e = run_experiment_full("fig9", &mut ctx);
        assert!(e.text.contains("FAILED cell(s)"), "{}", e.text);
        assert!(e.text.contains("bfs_KR/DVR"), "{}", e.text);
        let chart = &e.charts[0];
        assert_eq!(chart.failed.len(), 1, "one category marked: {:?}", chart.failed);
        assert_eq!(chart.categories[chart.failed[0]], "bfs_KR");
        chart.validate().expect("chart with failure markers stays consistent");
        assert!(chart.to_svg().contains("&#x2715;"), "cross marker rendered");
    }

    #[test]
    fn keep_going_output_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7)
                .with_threads(threads)
                .with_keep_going(true)
                .with_force_fail("NAS-IS/VR");
            run_experiment_full("fig8", &mut ctx)
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(serial.text.contains("FAILED cell(s)"));
        assert_eq!(serial.text, parallel.text, "failure paths must stay deterministic");
    }

    #[test]
    fn batch_reports_come_back_in_cell_order() {
        let mut ctx = Ctx::new(SizeClass::Test, 5_000, 7).with_threads(3);
        let cells: Vec<Cell> = [Technique::Baseline, Technique::Vr, Technique::Dvr]
            .map(|t| Cell::new(Benchmark::NasIs, None, ctx.tcfg(t)))
            .to_vec();
        let reports = ctx.run_batch(&cells);
        let techs: Vec<Technique> = reports.iter().map(|r| r.technique).collect();
        assert_eq!(techs, vec![Technique::Baseline, Technique::Vr, Technique::Dvr]);
        let (runs, instrs, secs) = ctx.throughput_totals();
        assert_eq!(runs, 3);
        assert!(instrs > 0 && secs > 0.0);
        assert!(ctx.throughput_summary().contains("3 runs"));
    }

    #[test]
    fn stacked_timeliness_fractions_are_sane() {
        let mut ctx = Ctx::new(SizeClass::Test, 20_000, 7);
        let e = run_experiment_full("fig11", &mut ctx);
        let chart = &e.charts[0];
        for k in 0..chart.categories.len() {
            let sum: f64 = chart.series.iter().map(|s| s.values[k]).sum();
            assert!(sum <= 1.0 + 1e-9, "fractions exceed 1 at {k}: {sum}");
        }
    }

    #[test]
    fn sanitized_experiment_is_clean_and_text_identical() {
        let plain = {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7);
            run_experiment("fig9", &mut ctx)
        };
        let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7).with_sanitize(true);
        let sane = run_experiment("fig9", &mut ctx);
        let (checks, violations) = ctx.sanitize_totals();
        assert!(checks > 0, "sanitizer must have run");
        assert_eq!(violations, 0, "cycle-model invariants must hold");
        assert_eq!(plain, sane, "sanitizer must not perturb experiment text");
    }

    #[test]
    fn sampled_figure_text_is_identical_across_measure_threads() {
        let run = |sample_threads: usize| {
            let mut ctx = Ctx::new(SizeClass::Test, 60_000, 7)
                .with_sample(SampleConfig::default())
                .with_sample_threads(sample_threads);
            run_experiment("fig9", &mut ctx)
        };
        assert_eq!(run(1), run(4), "measure-phase fan-out must not perturb figure text");
    }

    #[test]
    fn speedup_probe_reports_positive_wall_clock() {
        let mut ctx = Ctx::new(SizeClass::Test, 60_000, 7).with_sample(SampleConfig::default());
        let p = sample_speedup_probe(&mut ctx, 2);
        assert!(p.sequential_seconds > 0.0 && p.parallel_seconds > 0.0);
        assert!(p.speedup > 0.0);
        assert_eq!(p.threads, 2);
        assert_eq!(p.instrs, 60_000);
    }

    #[test]
    fn result_cache_round_trip_preserves_figure_text() {
        let dir = std::env::temp_dir().join(format!("bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7);
            run_experiment("fig9", &mut ctx)
        };
        let cold = {
            let mut ctx =
                Ctx::new(SizeClass::Test, 10_000, 7).with_result_cache(&dir).expect("cache opens");
            let text = run_experiment("fig9", &mut ctx);
            let (hits, misses, stores, corrupt) = ctx.cache_totals();
            assert_eq!(hits, 0, "cold cache cannot hit");
            assert_eq!(misses, stores, "every miss must be stored");
            assert!(misses > 0 && corrupt == 0);
            text
        };
        let warm = {
            let mut ctx =
                Ctx::new(SizeClass::Test, 10_000, 7).with_result_cache(&dir).expect("cache opens");
            let text = run_experiment("fig9", &mut ctx);
            let (hits, misses, _, _) = ctx.cache_totals();
            assert!(hits > 0, "warm cache must hit");
            assert_eq!(misses, 0, "warm run must not resimulate");
            text
        };
        assert_eq!(plain, cold, "attaching a cache must not perturb figure text");
        assert_eq!(plain, warm, "cache-served figures must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitized_runs_bypass_the_result_cache() {
        let dir = std::env::temp_dir().join(format!("bench-cache-san-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ctx = Ctx::new(SizeClass::Test, 5_000, 7)
            .with_sanitize(true)
            .with_result_cache(&dir)
            .expect("cache opens");
        let r = ctx.run(Benchmark::NasIs, None, Technique::Baseline);
        assert!(r.sanitizer.is_some(), "sanitizer output must survive");
        assert_eq!(ctx.cache_totals(), (0, 0, 0, 0), "sanitized cells must not touch the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mix_experiment_anchors_at_one_core_and_charts_validate() {
        let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7);
        let e = run_experiment_full("mix", &mut ctx);
        // The 1-core mix is byte-identical to the solo run, so its row is
        // the exact identity: STP 1.000, fairness 1.000.
        let one = e.text.lines().find(|l| l.trim_start().starts_with("1 ")).expect("1-core row");
        assert!(one.contains("1.000"), "identity anchor missing: {one}");
        assert!(e.text.contains("bc+bfs+cc+pr"), "{}", e.text);
        assert_eq!(e.charts.len(), 1);
        e.charts[0].validate().expect("chart consistent");
        assert!(e.charts[0].to_svg().starts_with("<svg"));
    }

    #[test]
    fn mix_experiment_text_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7).with_threads(threads);
            run_experiment("mix", &mut ctx)
        };
        assert_eq!(run(1), run(4), "mix figure must not depend on --threads");
    }

    #[test]
    fn sampled_context_still_runs_mixes_exactly() {
        // Mixes have no sampled mode; the experiment suspends sampling so
        // solos stay comparable, then restores it for later figures.
        let plain = {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7);
            run_experiment("mix", &mut ctx)
        };
        let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7).with_sample(SampleConfig::default());
        let sampled = run_experiment("mix", &mut ctx);
        assert_eq!(plain, sampled, "sampling must not perturb the mix figure");
        assert!(ctx.sample.is_some(), "sampling knob must be restored");
    }

    #[test]
    fn sanitized_mix_experiment_is_clean_and_text_identical() {
        let plain = {
            let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7);
            run_experiment("mix", &mut ctx)
        };
        let mut ctx = Ctx::new(SizeClass::Test, 10_000, 7).with_sanitize(true);
        let sane = run_experiment("mix", &mut ctx);
        let (checks, violations) = ctx.sanitize_totals();
        assert!(checks > 0, "sanitizer must have run (shared ledger included)");
        assert_eq!(violations, 0, "shared-LLC provenance invariants must hold");
        assert_eq!(plain, sane, "sanitizer must not perturb the mix figure");
    }

    #[test]
    fn unknown_experiment_reports() {
        let mut ctx = Ctx::new(SizeClass::Test, 1000, 7);
        assert!(run_experiment("nope", &mut ctx).contains("unknown"));
    }
}
