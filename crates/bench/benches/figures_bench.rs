//! Criterion microbenchmarks: one per paper table/figure, on reduced
//! inputs, measuring the end-to-end simulation cost of regenerating each
//! experiment, plus per-technique simulator-throughput benches and the
//! design-choice ablations called out in DESIGN.md.
//!
//! The *full-scale* reproduction lives in the `figures` binary
//! (`cargo run -p bench --release --bin figures -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{run_experiment, Ctx};
use dvr_sim::{simulate, SimConfig, Technique};
use workloads::{Benchmark, GraphInput, SizeClass};

fn bench_ctx() -> Ctx {
    Ctx::new(SizeClass::Test, 20_000, 42)
}

fn experiment_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for exp in ["table2", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation"] {
        group.bench_function(format!("{exp}_reduced"), |b| {
            b.iter(|| {
                let mut ctx = bench_ctx();
                black_box(run_experiment(exp, &mut ctx))
            })
        });
    }
    group.finish();
}

/// The parallel experiment engine: the same reduced fig8 serial vs fanned
/// out over worker threads (identical output, lower wall-clock on
/// multi-core hosts).
fn parallel_engine_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);
    for threads in [1usize, 0] {
        let label =
            if threads == 1 { "fig8_threads1".to_string() } else { "fig8_threads_all".to_string() };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ctx = bench_ctx().with_threads(threads);
                black_box(run_experiment("fig8", &mut ctx))
            })
        });
    }
    group.finish();
}

fn technique_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_bfs_kr");
    group.sample_size(10);
    let wl = Benchmark::Bfs.build(Some(GraphInput::Kr), SizeClass::Test, 42);
    for t in [
        Technique::Baseline,
        Technique::Pre,
        Technique::Imp,
        Technique::Vr,
        Technique::Dvr,
        Technique::Oracle,
    ] {
        group.bench_function(t.name(), |b| {
            let cfg = SimConfig::new(t).with_max_instructions(20_000);
            b.iter(|| black_box(simulate(&wl, &cfg)))
        });
    }
    group.finish();
}

fn ablation_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let wl = Benchmark::Camel.build(None, SizeClass::Test, 42);
    // Lane-count sensitivity (Section 6.1's 128-vs-256 discussion is about
    // lookahead capacity; here we sweep the per-invocation lane cap).
    for lanes in [32usize, 64, 128] {
        group.bench_function(format!("dvr_lanes_{lanes}"), |b| {
            b.iter(|| {
                let mut engine = dvr_sim::DvrEngine::new(dvr_sim::DvrConfig {
                    max_lanes: lanes,
                    ..dvr_sim::DvrConfig::default()
                });
                let mut core = dvr_sim::OooCore::new(dvr_sim::CoreConfig::default());
                let mut hier = dvr_sim::MemoryHierarchy::new(dvr_sim::HierarchyConfig::default());
                let mut mem = wl.mem.clone();
                core.run(&wl.prog, &mut mem, &mut hier, &mut engine, 20_000).expect("run failed");
                black_box(core.stats().ipc())
            })
        });
    }
    // MSHR sensitivity.
    for mshrs in [12usize, 24, 48] {
        group.bench_function(format!("dvr_mshrs_{mshrs}"), |b| {
            let cfg =
                SimConfig::new(Technique::Dvr).with_mshrs(mshrs).with_max_instructions(20_000);
            b.iter(|| black_box(simulate(&wl, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    experiment_benches,
    parallel_engine_benches,
    technique_benches,
    ablation_benches
);
criterion_main!(benches);
