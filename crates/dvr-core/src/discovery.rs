//! Discovery Mode (paper Section 4.1).
//!
//! Once the stride detector reports a confident striding load, DVR follows
//! the main thread's dispatch stream through one loop iteration to:
//!
//! 1. check the trigger is the *innermost* striding load (Section 4.1.1),
//! 2. find dependent loads via the Vector Taint Tracker, latching the last
//!    one into the Final-Load Register (Section 4.1.2), and
//! 3. infer the loop bound from the compare feeding the backward branch
//!    (Last-Compare Register + Seen-Branch Bit) and two register-file
//!    checkpoints (Section 4.1.3).
//!
//! Discovery exits when the striding load dispatches again, yielding a
//! [`DiscoveredChain`] the subthread is spawned from.

use sim_isa::{Instr, Reg, NUM_REGS};
use sim_ooo::DynInst;

use crate::detector::StrideDetector;

/// A dispatch-stream replica of the architectural register file.
///
/// Engines reconstruct main-thread register values in program order from
/// the dispatched instructions' operand/result values — this is what lets
/// Discovery Mode take its two "checkpoints of the architectural register
/// file" without access to the rename hardware.
#[derive(Clone, Copy, Debug)]
pub struct ShadowRegs {
    regs: [u64; NUM_REGS],
}

impl Default for ShadowRegs {
    fn default() -> Self {
        ShadowRegs::new()
    }
}

impl ShadowRegs {
    /// Creates an all-zero shadow file.
    pub fn new() -> Self {
        ShadowRegs { regs: [0; NUM_REGS] }
    }

    /// Updates the shadow with one dispatched instruction.
    pub fn update(&mut self, di: &DynInst) {
        for (k, r) in di.instr.srcs().enumerate() {
            self.regs[r.index()] = di.src_values[k];
        }
        if let (Some(dst), Some(v)) = (di.instr.dst(), di.dst_value) {
            self.regs[dst.index()] = v;
        }
    }

    /// The reconstructed register values.
    pub fn regs(&self) -> [u64; NUM_REGS] {
        self.regs
    }

    /// One register's value.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }
}

/// The loop bound's source operand in the latched compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundSrc {
    /// The bound lives in a register that stayed constant across discovery.
    Reg(Reg),
    /// The compare used an immediate bound.
    Imm(i64),
}

/// Compare/induction info for loop-bound recomputation (used per-lane by
/// Nested Vector Runahead).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CmpInfo {
    /// The induction register (changed across discovery).
    pub ind_reg: Reg,
    /// Where the loop bound comes from.
    pub bound: BoundSrc,
    /// Per-iteration induction increment.
    pub increment: i64,
}

impl CmpInfo {
    /// Remaining iterations given current induction/bound values.
    pub fn remaining(&self, ind: u64, bound: u64) -> u64 {
        let inc = self.increment;
        if inc == 0 {
            return 0;
        }
        let diff = if inc > 0 {
            (bound as i64).wrapping_sub(ind as i64)
        } else {
            (ind as i64).wrapping_sub(bound as i64)
        };
        if diff <= 0 {
            0
        } else {
            (diff as u64).div_ceil(inc.unsigned_abs())
        }
    }
}

/// Everything Discovery Mode learned about one indirect chain.
#[derive(Clone, Copy, Debug)]
pub struct DiscoveredChain {
    /// PC of the (innermost) striding load.
    pub stride_pc: usize,
    /// Its stride in bytes.
    pub stride: i64,
    /// A dependent-load chain exists (non-zero FLR at exit) — the
    /// precondition for spawning the subthread at all.
    pub has_dependent_load: bool,
    /// The FLR termination PC, or `None` when intervening branches mean
    /// each lane should run to the next stride iteration (footnote 1).
    pub flr_pc: Option<usize>,
    /// Remaining loop iterations inferred (capped at 128).
    pub lanes: usize,
    /// Whether the bound inference matched (else `lanes` is the 128 cap).
    pub bound_known: bool,
    /// PC of the backward loop branch, if identified.
    pub loop_branch_pc: Option<usize>,
    /// Compare/induction info for NDM, if identified.
    pub cmp: Option<CmpInfo>,
}

/// Result of feeding one dispatched instruction to Discovery Mode.
#[derive(Clone, Copy, Debug)]
pub enum DiscoveryEvent {
    /// Still following the iteration.
    Continue,
    /// Switched to a more-inner striding load and restarted.
    Switched,
    /// The striding load came around again: discovery complete. The
    /// instruction that triggered this is the striding load's re-dispatch
    /// (its address is the spawn point).
    Finished(DiscoveredChain),
    /// Discovery gave up (ran too long without closing the loop).
    Aborted,
}

#[derive(Clone, Copy, Debug)]
struct Lcr {
    /// Compare source registers (second may be an immediate).
    a: Reg,
    b: Option<Reg>,
    imm: Option<i64>,
    dst: Reg,
}

/// Maximum instructions discovery will follow before giving up.
const DISCOVERY_BUDGET: usize = 512;

/// Cap on recorded dependent loads per discovery pass (hardware analogue:
/// a small observation buffer next to the taint tracker).
const MAX_DEP_RECORDS: usize = 32;

/// Saturation depth for the taint-depth counters, matching the static
/// analyzer's chase-depth cap.
const MAX_DEP_DEPTH: u8 = 8;

/// The Discovery Mode state machine.
#[derive(Clone, Debug)]
pub struct Discovery {
    trigger_pc: usize,
    stride: i64,
    vtt: u16,
    flr: Option<usize>,
    had_flr: bool,
    branch_after_flr: bool,
    lcr: Option<Lcr>,
    sbb: bool,
    loop_branch: Option<usize>,
    entry_regs: [u64; NUM_REGS],
    /// One bit per detector slot: striding loads seen once already.
    seen_strides: u64,
    instrs: usize,
    /// Per-register taint depth: loads deep from the trigger's value (the
    /// trigger's own destination is depth 0). Meaningful only where the
    /// corresponding `vtt` bit is set.
    taint_depth: [u8; NUM_REGS],
    /// Dependent loads observed this pass: `(pc, depth)`, depth 1 = address
    /// uses the trigger's value directly. First-seen order, deduplicated by
    /// pc keeping the deepest observation, capped at [`MAX_DEP_RECORDS`].
    dep_loads: Vec<(usize, u8)>,
}

impl Discovery {
    /// Starts discovery on a confident striding load whose destination
    /// register seeds the taint tracker.
    pub fn begin(trigger_pc: usize, stride: i64, trigger_dst: Reg, entry: &ShadowRegs) -> Self {
        Discovery {
            trigger_pc,
            stride,
            vtt: trigger_dst.bit(),
            flr: None,
            had_flr: false,
            branch_after_flr: false,
            lcr: None,
            sbb: false,
            loop_branch: None,
            entry_regs: entry.regs(),
            seen_strides: 0,
            instrs: 0,
            taint_depth: [0; NUM_REGS],
            dep_loads: Vec::new(),
        }
    }

    /// The dependent loads observed so far (see `dep_loads` field docs).
    pub fn dep_loads(&self) -> &[(usize, u8)] {
        &self.dep_loads
    }

    /// Moves the dependent-load observations out (used by the engine when
    /// a pass finishes, before the state machine resets).
    pub fn take_dep_loads(&mut self) -> Vec<(usize, u8)> {
        std::mem::take(&mut self.dep_loads)
    }

    fn record_dep(&mut self, pc: usize, depth: u8) {
        if let Some(e) = self.dep_loads.iter_mut().find(|e| e.0 == pc) {
            e.1 = e.1.max(depth);
        } else if self.dep_loads.len() < MAX_DEP_RECORDS {
            self.dep_loads.push((pc, depth));
        }
    }

    /// The PC being targeted.
    pub fn trigger_pc(&self) -> usize {
        self.trigger_pc
    }

    /// Feeds one dispatched instruction.
    pub fn observe(
        &mut self,
        di: &DynInst,
        detector: &StrideDetector,
        shadow: &ShadowRegs,
    ) -> DiscoveryEvent {
        // Loop closed: the striding load dispatches again.
        if di.pc == self.trigger_pc && self.instrs > 0 {
            return DiscoveryEvent::Finished(self.finish(shadow));
        }
        self.instrs += 1;
        if self.instrs > DISCOVERY_BUDGET {
            return DiscoveryEvent::Aborted;
        }

        // Innermost-striding-load detection: a *different* confident
        // striding load seen twice before the trigger returns is more inner
        // — switch to it.
        if di.is_load() && di.pc != self.trigger_pc {
            if let Some(e) = detector.lookup(di.pc) {
                if e.is_confident() {
                    let bit = 1u64 << (detector.slot(di.pc) % 64);
                    if self.seen_strides & bit != 0 {
                        let dst = di.instr.dst().expect("loads have destinations");
                        *self = Discovery::begin(di.pc, e.stride, dst, shadow);
                        return DiscoveryEvent::Switched;
                    }
                    self.seen_strides |= bit;
                }
            }
        }

        // Vector Taint Tracker propagation, with a depth counter riding
        // along each taint bit (observation only — depths never feed a
        // spawn or timing decision).
        let instr = di.instr;
        let tainted_input = instr.srcs().any(|r| self.vtt & r.bit() != 0);
        let mut dst_depth = instr
            .srcs()
            .filter(|r| self.vtt & r.bit() != 0)
            .map(|r| self.taint_depth[r.index()])
            .max()
            .unwrap_or(0);
        if let Instr::Load { addr, .. } = instr {
            let addr_tainted = addr.regs().any(|r| self.vtt & r.bit() != 0);
            if addr_tainted {
                // Dependent load: latch the FLR, zero LCR and SBB.
                let depth = dst_depth.saturating_add(1).min(MAX_DEP_DEPTH);
                self.record_dep(di.pc, depth);
                dst_depth = depth;
                self.flr = Some(di.pc);
                self.had_flr = true;
                self.branch_after_flr = false;
                self.lcr = None;
                self.sbb = false;
            }
        }
        if let Some(dst) = instr.dst() {
            if tainted_input {
                self.vtt |= dst.bit();
                self.taint_depth[dst.index()] = dst_depth;
            } else {
                self.vtt &= !dst.bit();
            }
        }

        // Last-Compare Register.
        if instr.is_compare() && !self.sbb {
            self.lcr = match instr {
                Instr::Alu { rd, ra, rb, .. } => {
                    Some(Lcr { a: ra, b: Some(rb), imm: None, dst: rd })
                }
                Instr::AluImm { rd, ra, imm, .. } => {
                    Some(Lcr { a: ra, b: None, imm: Some(imm), dst: rd })
                }
                _ => self.lcr,
            };
        }

        // Seen-Branch Bit: a backward branch fed by the LCR closes the loop.
        if let Instr::Branch { rs, target, .. } = instr {
            let is_loop_back =
                self.lcr.is_some_and(|l| l.dst == rs) && target <= self.trigger_pc && !self.sbb;
            if is_loop_back {
                self.sbb = true;
                self.loop_branch = Some(di.pc);
            } else if self.flr.is_some() {
                // Footnote 1: other branches between the FLR and the loop
                // branch mean divergent paths — suppress the FLR and let
                // each lane run to the next stride iteration.
                self.branch_after_flr = true;
            }
        }

        DiscoveryEvent::Continue
    }

    fn finish(&self, shadow: &ShadowRegs) -> DiscoveredChain {
        let mut lanes = crate::walker::ABSOLUTE_MAX_LANES;
        let mut bound_known = false;
        let mut cmp_info = None;

        if let Some(lcr) = self.lcr {
            // Checkpoint comparison: which compare input stayed constant?
            let exit = shadow.regs();
            let entry = self.entry_regs;
            let candidate = match (lcr.b, lcr.imm) {
                (Some(b), _) => {
                    let (va0, va1) = (entry[lcr.a.index()], exit[lcr.a.index()]);
                    let (vb0, vb1) = (entry[b.index()], exit[b.index()]);
                    if va0 == va1 && vb0 != vb1 {
                        Some((b, BoundSrc::Reg(lcr.a), va1, vb1, vb1.wrapping_sub(vb0) as i64))
                    } else if vb0 == vb1 && va0 != va1 {
                        Some((lcr.a, BoundSrc::Reg(b), vb1, va1, va1.wrapping_sub(va0) as i64))
                    } else {
                        None
                    }
                }
                (None, Some(imm)) => {
                    let (va0, va1) = (entry[lcr.a.index()], exit[lcr.a.index()]);
                    if va0 != va1 {
                        Some((
                            lcr.a,
                            BoundSrc::Imm(imm),
                            imm as u64,
                            va1,
                            va1.wrapping_sub(va0) as i64,
                        ))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some((ind_reg, bound_src, bound_val, ind_val, increment)) = candidate {
                if increment != 0 {
                    let info = CmpInfo { ind_reg, bound: bound_src, increment };
                    lanes = info
                        .remaining(ind_val, bound_val)
                        .min(crate::walker::ABSOLUTE_MAX_LANES as u64)
                        as usize;
                    bound_known = true;
                    cmp_info = Some(info);
                }
            }
        }

        DiscoveredChain {
            stride_pc: self.trigger_pc,
            stride: self.stride,
            has_dependent_load: self.had_flr,
            flr_pc: if self.branch_after_flr { None } else { self.flr },
            lanes,
            bound_known,
            loop_branch_pc: self.loop_branch,
            cmp: cmp_info,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Asm, SparseMemory};
    use sim_mem::{HierarchyConfig, MemoryHierarchy};
    use sim_ooo::{CoreConfig, DynInst, EngineCtx, OooCore, RunaheadEngine};

    /// Captures the dispatch stream of a program by running the real core
    /// with a recording engine.
    struct Recorder {
        dis: Vec<DynInst>,
    }

    impl RunaheadEngine for Recorder {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn on_dispatch(&mut self, _ctx: &mut EngineCtx<'_>, di: &DynInst) {
            self.dis.push(*di);
        }
    }

    /// for (i = 5; i < 500; i++) { v = A[i]; w = B[v]; sum += w; }
    fn loop_program() -> (sim_isa::Program, usize, usize) {
        let mut asm = Asm::new();
        let (a, b, i, n, v, w, sum, c) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8);
        asm.li(a, 0x10_0000);
        asm.li(b, 0x20_0000);
        asm.li(i, 5);
        asm.li(n, 500);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3);
        let flr_pc = asm.pc();
        asm.ld8_idx(w, b, v, 3);
        asm.add(sum, sum, w);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        (asm.finish().unwrap(), stride_pc, flr_pc)
    }

    fn record(prog: &sim_isa::Program, max: u64) -> Vec<DynInst> {
        let mut mem = SparseMemory::new();
        for k in 0..4096u64 {
            mem.write_u64(0x10_0000 + 8 * k, (k * 13) % 1024);
        }
        let mut core = OooCore::new(CoreConfig::default());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let mut rec = Recorder { dis: vec![] };
        core.run(prog, &mut mem, &mut hier, &mut rec, max).expect("run failed");
        rec.dis
    }

    fn drive_discovery(prog: &sim_isa::Program, stride_pc: usize) -> (DiscoveredChain, Discovery) {
        let dis = record(prog, 200);
        let mut detector = StrideDetector::new(32);
        let mut shadow = ShadowRegs::new();
        let mut disc: Option<Discovery> = None;
        for di in &dis {
            shadow.update(di);
            if di.is_load() {
                detector.observe(di.pc, di.mem.unwrap().addr);
            }
            match &mut disc {
                None => {
                    if di.pc == stride_pc
                        && detector.lookup(stride_pc).is_some_and(|e| e.is_confident())
                    {
                        disc = Some(Discovery::begin(
                            stride_pc,
                            detector.lookup(stride_pc).unwrap().stride,
                            di.instr.dst().unwrap(),
                            &shadow,
                        ));
                    }
                }
                Some(d) => match d.observe(di, &detector, &shadow) {
                    DiscoveryEvent::Finished(chain) => return (chain, d.clone()),
                    DiscoveryEvent::Aborted => panic!("discovery aborted"),
                    _ => {}
                },
            }
        }
        panic!("discovery never finished");
    }

    #[test]
    fn discovers_chain_and_loop_bound() {
        let (prog, stride_pc, flr_pc) = loop_program();
        let (chain, _) = drive_discovery(&prog, stride_pc);
        assert_eq!(chain.stride_pc, stride_pc);
        assert_eq!(chain.stride, 8);
        assert!(chain.has_dependent_load);
        assert_eq!(chain.flr_pc, Some(flr_pc));
        assert!(chain.bound_known, "bound must be inferred from slt i, n");
        // 500 total iterations; discovery starts after stride confidence
        // (a few iterations in), so plenty remain: capped at the walker's
        // absolute maximum (the engine clamps to its configured 128).
        assert!(chain.lanes >= 128);
        assert!(chain.loop_branch_pc.is_some());
        let cmp = chain.cmp.expect("cmp info");
        assert_eq!(cmp.increment, 1);
    }

    #[test]
    fn short_loop_bound_is_exact() {
        // for (i = 0; i < 12; i++) { v=A[i]; w=B[v]; }
        let mut asm = Asm::new();
        let (a, b, i, n, v, w, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7);
        asm.li(a, 0x10_0000);
        asm.li(b, 0x20_0000);
        asm.li(i, 0);
        asm.li(n, 12);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3);
        asm.ld8_idx(w, b, v, 3);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let (chain, _) = drive_discovery(&prog, stride_pc);
        assert!(chain.bound_known);
        // Discovery needs ~3 iterations for stride confidence + 1 iteration
        // of following; the remaining count must be < 12 and exact.
        assert!(chain.lanes > 0 && chain.lanes < 12, "lanes {}", chain.lanes);
    }

    #[test]
    fn no_dependent_load_means_no_chain() {
        // for (i..) { v = A[i]; sum += i; }  — nothing depends on v.
        let mut asm = Asm::new();
        let (a, i, n, v, sum, c) = (Reg::R1, Reg::R3, Reg::R4, Reg::R5, Reg::R7, Reg::R8);
        asm.li(a, 0x10_0000);
        asm.li(i, 0);
        asm.li(n, 100);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3);
        asm.add(sum, sum, i);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let (chain, _) = drive_discovery(&prog, stride_pc);
        assert!(!chain.has_dependent_load);
    }

    #[test]
    fn branch_between_flr_and_loop_suppresses_flr() {
        // if (w & 1) { x = C[w]; }  between dependent load and loop branch.
        let mut asm = Asm::new();
        let (a, b, cc, i, n, v, w, f, c) =
            (Reg::R1, Reg::R2, Reg::R9, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R10, Reg::R7);
        asm.li(a, 0x10_0000);
        asm.li(b, 0x20_0000);
        asm.li(cc, 0x30_0000);
        asm.li(i, 0);
        asm.li(n, 400);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3);
        asm.ld8_idx(w, b, v, 3);
        asm.andi(f, w, 1);
        let skip = asm.label();
        asm.bez(f, skip);
        asm.ld8_idx(Reg::R11, cc, w, 3);
        asm.bind(skip);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let (chain, _) = drive_discovery(&prog, stride_pc);
        assert!(chain.has_dependent_load);
        assert_eq!(chain.flr_pc, None, "divergent chain must suppress the FLR");
    }

    #[test]
    fn shadow_regs_track_dispatch_values() {
        let (prog, _, _) = loop_program();
        let dis = record(&prog, 50);
        let mut shadow = ShadowRegs::new();
        for di in &dis {
            shadow.update(di);
            if let (Some(dst), Some(v)) = (di.instr.dst(), di.dst_value) {
                assert_eq!(shadow.reg(dst), v);
            }
        }
    }

    #[test]
    fn cmp_remaining_math() {
        let up = CmpInfo { ind_reg: Reg::R1, bound: BoundSrc::Imm(100), increment: 2 };
        assert_eq!(up.remaining(90, 100), 5);
        assert_eq!(up.remaining(100, 100), 0);
        assert_eq!(up.remaining(101, 100), 0);
        let down = CmpInfo { ind_reg: Reg::R1, bound: BoundSrc::Imm(0), increment: -1 };
        assert_eq!(down.remaining(7, 0), 7);
        let zero = CmpInfo { ind_reg: Reg::R1, bound: BoundSrc::Imm(0), increment: 0 };
        assert_eq!(zero.remaining(5, 10), 0);
    }
}
