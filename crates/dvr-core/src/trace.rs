//! Gated DVR event tracing for the static-vs-dynamic Discovery audit.
//!
//! When enabled (see [`DvrEngine::enable_trace`](crate::DvrEngine)), the
//! engine records one [`TraceEvent`] per Discovery/spawn decision. Tracing
//! is an observer only: events are *emitted* solely when the trace buffer
//! exists, and nothing the engine computes for an event feeds back into a
//! timing decision, so a traced run's `SimReport` is byte-identical to an
//! untraced one (test-enforced by the audit suite).

use sim_isa::FxHashMap;

/// One dynamic Discovery/spawn decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// Discovery Mode entered on a confident striding load.
    DiscoveryBegin {
        /// Trigger load pc.
        pc: usize,
        /// Detector stride at entry, in bytes.
        stride: i64,
    },
    /// Discovery switched to a more-inner striding load.
    DiscoverySwitch {
        /// The trigger being abandoned.
        from_pc: usize,
        /// The inner striding load taking over.
        to_pc: usize,
    },
    /// Discovery ran out of budget without closing the loop.
    DiscoveryAbort {
        /// The trigger that never came around.
        pc: usize,
    },
    /// Discovery closed the loop but found no dependent load; no spawn.
    NoDependentChain {
        /// The trigger load pc.
        pc: usize,
    },
    /// Discovery closed the loop with a dependent chain.
    DiscoveryEnd {
        /// The trigger load pc.
        pc: usize,
        /// Its stride in bytes.
        stride: i64,
        /// Final-Load Register at exit (`None` = suppressed by divergence).
        flr_pc: Option<usize>,
        /// Inferred remaining iterations (capped).
        lanes: usize,
        /// Whether the loop-bound inference matched.
        bound_known: bool,
        /// Dependent loads the Vector Taint Tracker saw: `(pc, depth)`,
        /// depth 1 = addressed directly off the trigger's value.
        dep_loads: Vec<(usize, u8)>,
    },
    /// A vector-runahead subthread was spawned.
    Spawn {
        /// The striding load the lanes are seeded from.
        pc: usize,
        /// Scalar-equivalent lanes requested.
        lanes: usize,
        /// Whether Nested Vector Runahead handled the episode.
        nested: bool,
    },
    /// A spawn was skipped because a prior episode already covered the
    /// lanes.
    CoveredSkip {
        /// The striding load pc.
        pc: usize,
    },
}

/// Per-trigger-pc aggregation of a trace, for the audit diff.
#[derive(Clone, Debug, Default)]
pub struct PcSummary {
    /// Discovery entries targeting this pc.
    pub discoveries: u64,
    /// Discoveries abandoned by a switch to an inner load.
    pub switched_away: u64,
    /// Discoveries that switched *to* this pc.
    pub switched_to: u64,
    /// Budget-exhaustion aborts.
    pub aborts: u64,
    /// Loop closures with no dependent load.
    pub no_dep_chain: u64,
    /// Loop closures with a dependent chain.
    pub chains: u64,
    /// Subthread spawns.
    pub spawns: u64,
    /// Nested (NDM) spawns among them.
    pub nested_spawns: u64,
    /// Covered-frontier spawn skips.
    pub covered_skips: u64,
    /// Strides observed at `DiscoveryBegin`/`DiscoveryEnd` (deduplicated).
    pub strides: Vec<i64>,
    /// Deepest observed taint depth per dependent-load pc.
    pub dep_loads: FxHashMap<usize, u8>,
}

/// The event buffer the engine fills when tracing is enabled.
#[derive(Clone, Debug, Default)]
pub struct DvrTrace {
    /// Every event, in dispatch order.
    pub events: Vec<TraceEvent>,
}

impl DvrTrace {
    /// Aggregates the event stream per trigger pc. Keys are every pc that
    /// appears as a Discovery trigger or spawn root.
    pub fn summarize(&self) -> FxHashMap<usize, PcSummary> {
        let mut out: FxHashMap<usize, PcSummary> = FxHashMap::default();
        let note_stride = |s: &mut PcSummary, stride: i64| {
            if !s.strides.contains(&stride) {
                s.strides.push(stride);
            }
        };
        for ev in &self.events {
            match ev {
                TraceEvent::DiscoveryBegin { pc, stride } => {
                    let s = out.entry(*pc).or_default();
                    s.discoveries += 1;
                    note_stride(s, *stride);
                }
                TraceEvent::DiscoverySwitch { from_pc, to_pc } => {
                    out.entry(*from_pc).or_default().switched_away += 1;
                    out.entry(*to_pc).or_default().switched_to += 1;
                }
                TraceEvent::DiscoveryAbort { pc } => {
                    out.entry(*pc).or_default().aborts += 1;
                }
                TraceEvent::NoDependentChain { pc } => {
                    out.entry(*pc).or_default().no_dep_chain += 1;
                }
                TraceEvent::DiscoveryEnd { pc, stride, dep_loads, .. } => {
                    let s = out.entry(*pc).or_default();
                    s.chains += 1;
                    note_stride(s, *stride);
                    for &(dpc, depth) in dep_loads {
                        let slot = s.dep_loads.entry(dpc).or_insert(0);
                        *slot = (*slot).max(depth);
                    }
                }
                TraceEvent::Spawn { pc, nested, .. } => {
                    let s = out.entry(*pc).or_default();
                    s.spawns += 1;
                    if *nested {
                        s.nested_spawns += 1;
                    }
                }
                TraceEvent::CoveredSkip { pc } => {
                    out.entry(*pc).or_default().covered_skips += 1;
                }
            }
        }
        for s in out.values_mut() {
            s.strides.sort_unstable();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_aggregates_per_pc() {
        let tr = DvrTrace {
            events: vec![
                TraceEvent::DiscoveryBegin { pc: 5, stride: 8 },
                TraceEvent::DiscoverySwitch { from_pc: 5, to_pc: 9 },
                TraceEvent::DiscoveryBegin { pc: 9, stride: 8 },
                TraceEvent::DiscoveryEnd {
                    pc: 9,
                    stride: 8,
                    flr_pc: Some(10),
                    lanes: 64,
                    bound_known: true,
                    dep_loads: vec![(10, 1), (11, 2)],
                },
                TraceEvent::Spawn { pc: 9, lanes: 64, nested: false },
                TraceEvent::DiscoveryBegin { pc: 9, stride: 8 },
                TraceEvent::NoDependentChain { pc: 9 },
                TraceEvent::CoveredSkip { pc: 9 },
            ],
        };
        let sum = tr.summarize();
        assert_eq!(sum[&5].switched_away, 1);
        assert_eq!(sum[&9].switched_to, 1);
        assert_eq!(sum[&9].discoveries, 2);
        assert_eq!(sum[&9].chains, 1);
        assert_eq!(sum[&9].spawns, 1);
        assert_eq!(sum[&9].no_dep_chain, 1);
        assert_eq!(sum[&9].covered_skips, 1);
        assert_eq!(sum[&9].dep_loads[&11], 2);
        assert_eq!(sum[&9].strides, vec![8]);
    }
}
