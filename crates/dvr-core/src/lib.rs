//! # dvr-core — Decoupled Vector Runahead and its baselines
//!
//! The primary contribution of *"Decoupled Vector Runahead"* (MICRO 2023)
//! plus every runahead technique the paper evaluates against, implemented
//! as [`sim_ooo::RunaheadEngine`]s that plug into the cycle-level core:
//!
//! | Engine | Paper role |
//! |---|---|
//! | [`DvrEngine`] | the contribution: decoupled, in-order, SIMT vector-runahead subthread with Discovery Mode and Nested Vector Runahead |
//! | [`VrEngine`] | Vector Runahead (ISCA '21) baseline: full-ROB-trigger, lane-0 control flow, delayed termination |
//! | [`PreEngine`] | Precise Runahead Execution (HPCA '20) baseline: INV-poisoned future-stream pre-execution |
//! | [`OracleEngine`] | the perfect-knowledge upper bound |
//!
//! The shared machinery — the 32-entry [`StrideDetector`], Discovery Mode
//! ([`Discovery`], taint tracker, FLR/LCR/SBB, loop-bound inference), and
//! the vectorized lane [`walker`](walk_vectorized) with its reconvergence
//! stack — maps one-to-one onto the paper's Section 4 hardware structures.
//!
//! ## Example
//!
//! ```
//! use dvr_core::{DvrConfig, DvrEngine};
//! use sim_isa::{Asm, Reg, SparseMemory};
//! use sim_mem::{HierarchyConfig, MemoryHierarchy};
//! use sim_ooo::{CoreConfig, OooCore};
//!
//! // B[A[i]] over a large array: DVR should spawn subthreads.
//! let mut asm = Asm::new();
//! let (a, b, i, n, v, w, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7);
//! asm.li(a, 0x100000); asm.li(b, 0x200000); asm.li(i, 0); asm.li(n, 5000);
//! let top = asm.here();
//! asm.ld8_idx(v, a, i, 3);
//! asm.ld8_idx(w, b, v, 3);
//! asm.addi(i, i, 1);
//! asm.slt(c, i, n);
//! asm.bnz(c, top);
//! asm.halt();
//! let prog = asm.finish()?;
//!
//! let mut mem = SparseMemory::new();
//! for k in 0..5000u64 { mem.write_u64(0x100000 + 8 * k, (k * 7919) % 65536); }
//!
//! let mut engine = DvrEngine::new(DvrConfig::default());
//! let mut core = OooCore::new(CoreConfig::default());
//! let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
//! core.run(&prog, &mut mem, &mut hier, &mut engine, 200_000)?;
//! assert!(engine.stats().episodes > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod discovery;
mod dvr;
mod hardware;
mod oracle;
mod pre;
mod trace;
mod vr;
mod walker;

pub use detector::{DetectorEntry, StrideDetector};
pub use discovery::{BoundSrc, CmpInfo, DiscoveredChain, Discovery, DiscoveryEvent, ShadowRegs};
pub use dvr::{DvrConfig, DvrEngine, DvrStats};
pub use hardware::{BudgetEntry, HardwareBudget};
pub use oracle::{OracleEngine, OracleStats};
pub use pre::{PreConfig, PreEngine, PreStats};
pub use trace::{DvrTrace, PcSummary, TraceEvent};
pub use vr::{VrConfig, VrEngine, VrStats};
pub use walker::{
    fixup_address_regs, stride_seeds, stride_seeds_from, walk_scalar_until, walk_vectorized,
    DivergenceMode, LaneSeed, Termination, WalkOutcome, WalkPolicy, ABSOLUTE_MAX_LANES, MAX_LANES,
    VECTOR_WIDTH,
};
