//! Vector Runahead (Naithani et al., ISCA 2021) — the paper's main
//! baseline (Section 2.3).
//!
//! VR triggers only on a full-ROB stall with a load miss at the head. It
//! scans the future instruction stream for a striding load, vectorizes 128
//! scalar-equivalent lanes of the dependent chain, and follows lane 0's
//! control flow (diverging lanes are invalidated). It has no loop-bound
//! analysis, so it over-fetches past short loops, and its *delayed
//! termination* keeps commit blocked until the whole chain has issued —
//! the two behaviours DVR's Discovery Mode and decoupling remove.

use sim_isa::Instr;
use sim_ooo::{DynInst, EngineCtx, RunaheadEngine};

use crate::detector::StrideDetector;
use crate::discovery::ShadowRegs;
use crate::walker::{stride_seeds, walk_vectorized, Termination, WalkPolicy, MAX_LANES};

/// VR configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VrConfig {
    /// Lanes vectorized per runahead episode (always, bounds unknown).
    pub lanes: usize,
    /// Instructions scanned ahead for a striding load.
    pub scan_budget: usize,
    /// Chain instruction timeout.
    pub timeout: usize,
}

impl Default for VrConfig {
    fn default() -> Self {
        VrConfig { lanes: MAX_LANES, scan_budget: 200, timeout: 200 }
    }
}

/// Counters exposed for the harness and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct VrStats {
    /// Runahead episodes entered.
    pub episodes: u64,
    /// Stalls where no striding load was found (no runahead).
    pub no_stride_found: u64,
    /// Scalar-equivalent lane loads issued.
    pub lane_loads: u64,
    /// Lanes invalidated by control-flow divergence.
    pub lanes_lost: u64,
    /// Total cycles commit stayed blocked past the stalling load's return
    /// (delayed termination).
    pub delayed_termination_cycles: u64,
}

/// The Vector Runahead engine.
#[derive(Clone, Debug)]
pub struct VrEngine {
    cfg: VrConfig,
    detector: StrideDetector,
    shadow: ShadowRegs,
    stats: VrStats,
}

impl Default for VrEngine {
    fn default() -> Self {
        VrEngine::new(VrConfig::default())
    }
}

impl VrEngine {
    /// Creates a VR engine.
    pub fn new(cfg: VrConfig) -> Self {
        VrEngine {
            cfg,
            detector: StrideDetector::new(32),
            shadow: ShadowRegs::new(),
            stats: VrStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &VrStats {
        &self.stats
    }
}

impl RunaheadEngine for VrEngine {
    fn name(&self) -> &'static str {
        "vr"
    }

    fn on_dispatch(&mut self, _ctx: &mut EngineCtx<'_>, di: &DynInst) {
        self.shadow.update(di);
        if let (true, Some(m)) = (di.is_load(), di.mem) {
            self.detector.observe(di.pc, m.addr);
        }
    }

    fn on_full_rob_stall(&mut self, ctx: &mut EngineCtx<'_>, head_complete_at: u64) -> u64 {
        // Scan the future stream (from the fetch frontier) for a confident
        // striding load to vectorize from.
        let mut regs = ctx.frontier.regs;
        let detector = &self.detector;
        let found = crate::walker::walk_scalar_until(
            ctx.prog,
            ctx.mem,
            &mut regs,
            ctx.frontier.pc,
            self.cfg.scan_budget,
            None,
            |pc, instr, _| instr.is_load() && detector.lookup(pc).is_some_and(|e| e.is_confident()),
        );
        let Some(stride_pc) = found else {
            self.stats.no_stride_found += 1;
            return ctx.cycle;
        };
        let entry = *self.detector.lookup(stride_pc).expect("matched in scan");
        let Some(Instr::Load { addr, .. }) = ctx.prog.fetch(stride_pc) else {
            return ctx.cycle;
        };
        let trigger_addr = addr.effective(|r| regs[r.index()]);

        // Vectorize 128 lanes blindly — VR has no loop-bound inference.
        let seeds = stride_seeds(regs, trigger_addr, entry.stride, self.cfg.lanes);
        let policy = WalkPolicy { timeout: self.cfg.timeout, ..WalkPolicy::vr() };
        let out = walk_vectorized(
            ctx.prog,
            ctx.mem,
            ctx.hier,
            ctx.cycle,
            &seeds,
            Termination { flr_pc: None, stride_pc },
            &policy,
        );
        self.stats.episodes += 1;
        self.stats.lane_loads += out.lane_loads;
        self.stats.lanes_lost += out.lanes_lost as u64;
        if out.issue_done > head_complete_at {
            self.stats.delayed_termination_cycles += out.issue_done - head_complete_at;
        }
        // Delayed termination: commit stays blocked until the prefetches
        // for the entire chain have been *generated* (not filled).
        out.issue_done
    }
}
