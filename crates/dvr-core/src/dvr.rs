//! The Decoupled Vector Runahead engine (paper Section 4).
//!
//! DVR's lifecycle, all driven from the main thread's dispatch stream:
//!
//! 1. **Idle** — train the stride detector on demand loads.
//! 2. **Discovery Mode** — on a confident stride, follow one loop iteration
//!    (taint tracking, FLR, loop-bound inference; Section 4.1).
//! 3. **Spawn** — when the striding load dispatches again, seed up to 128
//!    scalar-equivalent lanes and run the in-order, SIMT subthread
//!    decoupled from the main pipeline (Section 4.2). The subthread's
//!    gathers contend for the same MSHRs and DRAM bandwidth as the main
//!    thread; its issue rate models spare-slot stealing.
//! 4. **Nested Vector Runahead** — when the inferred bound is too small to
//!    saturate the memory system, skip the inner loop, vectorize the outer
//!    striding load by 16, and gather up to 128 inner-loop iterations from
//!    multiple future invocations (Section 4.3).
//!
//! Unlike VR, nothing here waits for a full-ROB stall, and the main thread
//! keeps committing while the subthread prefetches — the two properties the
//! paper's Figure 8 attributes most of the speedup to.

use sim_isa::{exec_lane, lane_taint_step, FxHashMap, Instr, NUM_REGS};
use sim_mem::{AccessClass, PrefetchSource};
use sim_ooo::{DynInst, EngineCtx, RunaheadEngine};

use crate::detector::StrideDetector;
use crate::discovery::{BoundSrc, DiscoveredChain, Discovery, DiscoveryEvent, ShadowRegs};
use crate::trace::{DvrTrace, TraceEvent};
use crate::walker::{
    fixup_address_regs, stride_seeds, stride_seeds_from, walk_vectorized, LaneSeed, Termination,
    WalkPolicy, MAX_LANES, VECTOR_WIDTH,
};

/// DVR configuration, including the ablation knobs of Figure 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DvrConfig {
    /// Run Discovery Mode (loop bounds, FLR). `false` = the "Offload"
    /// ablation: vectorize 128 lanes blindly on every confident stride.
    pub discovery: bool,
    /// Enable Nested Vector Runahead for short inner loops.
    pub nested: bool,
    /// Maximum scalar-equivalent lanes per invocation (paper: 128).
    pub max_lanes: usize,
    /// Vector uops the subthread may issue per cycle (spare main-thread
    /// slots).
    pub issue_rate: u32,
    /// Subthread instruction timeout (paper: 200).
    pub timeout: usize,
    /// Bound below which NDM engages (paper: 64).
    pub nested_threshold: usize,
}

impl Default for DvrConfig {
    fn default() -> Self {
        DvrConfig {
            discovery: true,
            nested: true,
            max_lanes: MAX_LANES,
            issue_rate: 2,
            timeout: 200,
            nested_threshold: 64,
        }
    }
}

impl DvrConfig {
    /// The "Offload" ablation of Figure 8: subthread on every stride, no
    /// Discovery Mode, no NDM.
    pub fn offload_only() -> Self {
        DvrConfig { discovery: false, nested: false, ..DvrConfig::default() }
    }

    /// The "+ Discovery Mode" ablation of Figure 8 (no NDM).
    pub fn with_discovery_only() -> Self {
        DvrConfig { nested: false, ..DvrConfig::default() }
    }
}

/// Counters exposed for the harness and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct DvrStats {
    /// Subthread invocations.
    pub episodes: u64,
    /// Invocations that used Nested Vector Runahead.
    pub ndm_episodes: u64,
    /// Total lanes spawned.
    pub lanes_spawned: u64,
    /// Scalar-equivalent lane loads issued.
    pub lane_loads: u64,
    /// Episodes in which lanes diverged.
    pub diverged_episodes: u64,
    /// Discovery passes that gave up.
    pub discovery_aborts: u64,
    /// Discovery passes that found no dependent load (no spawn).
    pub no_dependent_chain: u64,
    /// Discovery passes that switched to a more-inner stride.
    pub innermost_switches: u64,
    /// Spawns skipped because the lanes were already covered by an earlier
    /// episode of the same striding load.
    pub covered_skips: u64,
}

#[derive(Clone, Debug)]
enum Phase {
    Idle,
    Discovering(Box<Discovery>),
}

/// The DVR runahead engine. Attach to [`sim_ooo::OooCore::run`].
#[derive(Clone, Debug)]
pub struct DvrEngine {
    cfg: DvrConfig,
    detector: StrideDetector,
    shadow: ShadowRegs,
    phase: Phase,
    busy_until: u64,
    /// Per-striding-load prefetch frontier: the next *iteration index
    /// offset* is derived from this next-uncovered address, so back-to-back
    /// episodes extend coverage instead of re-prefetching it.
    covered: FxHashMap<usize, u64>,
    stats: DvrStats,
    /// Event buffer for the static-vs-dynamic audit; `None` (the default)
    /// emits nothing. Tracing is an observer: no event computation feeds a
    /// timing decision, so reports are identical with or without it.
    trace: Option<Box<DvrTrace>>,
}

impl Default for DvrEngine {
    fn default() -> Self {
        DvrEngine::new(DvrConfig::default())
    }
}

impl DvrEngine {
    /// Creates a DVR engine.
    pub fn new(cfg: DvrConfig) -> Self {
        DvrEngine {
            cfg,
            detector: StrideDetector::new(32),
            shadow: ShadowRegs::new(),
            phase: Phase::Idle,
            busy_until: 0,
            covered: FxHashMap::default(),
            stats: DvrStats::default(),
            trace: None,
        }
    }

    /// Starts recording Discovery/spawn events into an audit trace.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Box::default());
    }

    /// Takes the recorded trace, leaving tracing enabled with an empty
    /// buffer. `None` if tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<DvrTrace> {
        self.trace.as_mut().map(|t| std::mem::take(&mut **t))
    }

    /// The recorded trace so far, when tracing is enabled.
    pub fn trace(&self) -> Option<&DvrTrace> {
        self.trace.as_deref()
    }

    fn emit(&mut self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.events.push(ev());
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &DvrStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> DvrConfig {
        self.cfg
    }

    fn policy(&self) -> WalkPolicy {
        WalkPolicy {
            issue_rate: self.cfg.issue_rate,
            timeout: self.cfg.timeout,
            ..WalkPolicy::dvr()
        }
    }

    /// First future-iteration offset not yet covered by a prior episode of
    /// this striding load (1 = the next iteration).
    fn first_uncovered(&self, stride_pc: usize, trigger_addr: u64, stride: i64) -> u64 {
        let Some(&cov) = self.covered.get(&stride_pc) else { return 1 };
        let delta = cov.wrapping_sub(trigger_addr) as i64;
        if stride == 0 || delta % stride != 0 {
            return 1;
        }
        let iters = delta / stride;
        // Stale or regressed coverage (new loop invocation, re-scan):
        // restart from the next iteration.
        if iters <= 0 || iters > 4 * self.cfg.max_lanes as i64 {
            1
        } else {
            iters as u64
        }
    }

    fn spawn(&mut self, ctx: &mut EngineCtx<'_>, trigger_addr: u64, chain: &DiscoveredChain) {
        let lanes = chain.lanes.min(self.cfg.max_lanes);
        let use_ndm = self.cfg.nested
            && chain.bound_known
            && lanes < self.cfg.nested_threshold
            && chain.cmp.is_some()
            && chain.loop_branch_pc.is_some();

        let end = if use_ndm {
            self.stats.ndm_episodes += 1;
            self.emit(|| TraceEvent::Spawn { pc: chain.stride_pc, lanes, nested: true });
            self.nested_spawn(ctx, trigger_addr, chain)
        } else {
            if lanes == 0 {
                return;
            }
            // Extend the prefetch frontier instead of re-covering it.
            let first = self.first_uncovered(chain.stride_pc, trigger_addr, chain.stride);
            if first > lanes as u64 {
                self.stats.covered_skips += 1;
                self.emit(|| TraceEvent::CoveredSkip { pc: chain.stride_pc });
                return;
            }
            self.emit(|| TraceEvent::Spawn { pc: chain.stride_pc, lanes, nested: false });
            let count = lanes - (first as usize - 1);
            let mut regs = self.shadow.regs();
            if let Some(instr) = ctx.prog.fetch(chain.stride_pc) {
                fixup_address_regs(instr, &mut regs, trigger_addr);
            }
            let seeds = stride_seeds_from(regs, trigger_addr, chain.stride, first, count);
            self.covered.insert(
                chain.stride_pc,
                trigger_addr.wrapping_add(
                    (chain.stride.wrapping_mul((first + count as u64) as i64)) as u64,
                ),
            );
            let out = walk_vectorized(
                ctx.prog,
                ctx.mem,
                ctx.hier,
                ctx.cycle,
                &seeds,
                Termination { flr_pc: chain.flr_pc, stride_pc: chain.stride_pc },
                &self.policy(),
            );
            self.stats.lanes_spawned += seeds.len() as u64;
            self.stats.lane_loads += out.lane_loads;
            if out.diverged {
                self.stats.diverged_episodes += 1;
            }
            // The subthread is free once it has *generated* its prefetches.
            out.issue_done
        };
        self.stats.episodes += 1;
        self.busy_until = end;
    }

    /// Nested Vector Runahead (Section 4.3): find future invocations of the
    /// inner loop by skipping it, vectorizing the outer striding load, and
    /// collecting inner-iteration seeds from many outer iterations.
    fn nested_spawn(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        trigger_addr: u64,
        chain: &DiscoveredChain,
    ) -> u64 {
        let prog = ctx.prog;
        let mem = ctx.mem;
        let inner_pc = chain.stride_pc;
        // Callers only hand over bound-known chains, but a malformed chain
        // must degrade to "no spawn", not bring down a whole sweep.
        let (Some(loop_b), Some(cmp)) = (chain.loop_branch_pc, chain.cmp) else {
            return ctx.cycle;
        };
        let mut t = ctx.cycle;
        // Secret-taint shadow for the leak-audit oracle (observer; active
        // only while the hierarchy's taint log is armed).
        let taint_on = ctx.hier.taint_log_enabled();
        // Bounds-audit extents (observer; armed the same way).
        let bounds_on = ctx.hier.spec_extents_enabled();
        let mut st: u16 = 0;

        // --- NDM phase 1: scalar walk with the loop branch forced
        // not-taken, looking for an outer striding load (pc < inner). ----
        let mut regs = self.shadow.regs();
        if let Some(instr) = prog.fetch(inner_pc) {
            fixup_address_regs(instr, &mut regs, trigger_addr);
        }
        let mut pc = inner_pc;
        let mut outer: Option<(usize, u64, i64)> = None;
        for step in 0..self.cfg.timeout {
            let Some(instr) = prog.fetch(pc) else { break };
            if matches!(instr, Instr::Halt) {
                break;
            }
            if let Instr::Load { addr, .. } = instr {
                if pc < inner_pc {
                    if let Some(e) = self.detector.lookup(pc) {
                        if e.is_confident() {
                            let a = addr.effective(|r| regs[r.index()]);
                            outer = Some((pc, a, e.stride));
                            t += (step as u64) / 2;
                            break;
                        }
                    }
                }
            }
            if pc == loop_b && instr.is_cond_branch() {
                pc += 1; // altered branch direction: skip the inner loop
                continue;
            }
            let eff = exec_lane(prog, pc, &mut regs, mem);
            if let Some((a, w)) = eff.load {
                let acc = ctx.hier.load(t, a, AccessClass::Prefetch(PrefetchSource::Dvr));
                self.stats.lane_loads += 1;
                // Scalar chain: the subthread waits for its own loads.
                t = t.max(acc.complete_at);
                if bounds_on {
                    ctx.hier.note_spec_access(pc, a, w);
                }
            }
            if taint_on {
                let a = eff.load.map(|(a, _)| a);
                if lane_taint_step(prog, instr, &mut st, a) {
                    ctx.hier.note_secret_fill(
                        pc,
                        a.expect("transmitters load"),
                        PrefetchSource::Dvr,
                    );
                }
            }
            if eff.halted {
                break;
            }
            pc = eff.next_pc;
        }

        let Some((outer_pc, outer_addr, outer_stride)) = outer else {
            // No outer stride within the budget: resort to the discovered
            // inner bound (paper Section 4.3.1, last paragraph).
            let lanes = chain.lanes.min(self.cfg.max_lanes);
            if lanes == 0 {
                return t;
            }
            let mut regs = self.shadow.regs();
            if let Some(instr) = prog.fetch(inner_pc) {
                fixup_address_regs(instr, &mut regs, trigger_addr);
            }
            let seeds = stride_seeds(regs, trigger_addr, chain.stride, lanes);
            let out = walk_vectorized(
                prog,
                mem,
                ctx.hier,
                t,
                &seeds,
                Termination { flr_pc: chain.flr_pc, stride_pc: inner_pc },
                &self.policy(),
            );
            self.stats.lanes_spawned += seeds.len() as u64;
            self.stats.lane_loads += out.lane_loads;
            return out.issue_done;
        };

        // --- NDM phase 2: vectorize the outer striding load by 16 and run
        // each outer lane's dependents down to the inner striding load. ---
        let Some(outer_instr) = prog.fetch(outer_pc).copied() else {
            return t;
        };
        let Instr::Load { rd: outer_rd, width: outer_w, .. } = outer_instr else {
            return t;
        };
        const OUTER_LANES: usize = 16;

        // Issue the outer gather.
        let mut outer_done = t + (OUTER_LANES / VECTOR_WIDTH) as u64;
        let mut outer_ctxs: Vec<([u64; NUM_REGS], u16)> = Vec::with_capacity(OUTER_LANES);
        for j in 0..OUTER_LANES {
            let addr_j = outer_addr.wrapping_add((outer_stride.wrapping_mul(j as i64)) as u64);
            let acc = ctx.hier.load(t, addr_j, AccessClass::Prefetch(PrefetchSource::Dvr));
            outer_done = outer_done.max(acc.complete_at);
            self.stats.lane_loads += 1;
            if bounds_on {
                ctx.hier.note_spec_access(outer_pc, addr_j, outer_w.bytes());
            }
            let mut lr = regs;
            lr[outer_rd.index()] = mem.read(addr_j, outer_w.bytes());
            fixup_address_regs(&outer_instr, &mut lr, addr_j);
            let mut lt = st;
            if taint_on && prog.is_secret_addr(addr_j) {
                lt |= outer_rd.bit();
            }
            outer_ctxs.push((lr, lt));
        }
        t = outer_done;

        // Walk each outer lane to the inner striding load, collecting
        // inner-loop iteration seeds.
        let mut inner_seeds: Vec<LaneSeed> = Vec::new();
        let mut dep_done = t;
        for (mut lr, mut lt) in outer_ctxs {
            let mut pc = outer_pc + 1;
            let mut reached = false;
            for _ in 0..self.cfg.timeout {
                if pc == inner_pc {
                    reached = true;
                    break;
                }
                let Some(instr) = prog.fetch(pc) else { break };
                if matches!(instr, Instr::Halt) {
                    break;
                }
                let eff = exec_lane(prog, pc, &mut lr, mem);
                if let Some((a, w)) = eff.load {
                    let acc = ctx.hier.load(t, a, AccessClass::Prefetch(PrefetchSource::Dvr));
                    dep_done = dep_done.max(acc.complete_at);
                    self.stats.lane_loads += 1;
                    if bounds_on {
                        ctx.hier.note_spec_access(pc, a, w);
                    }
                }
                if taint_on {
                    let a = eff.load.map(|(a, _)| a);
                    if lane_taint_step(prog, instr, &mut lt, a) {
                        ctx.hier.note_secret_fill(
                            pc,
                            a.expect("transmitters load"),
                            PrefetchSource::Dvr,
                        );
                    }
                }
                if eff.halted {
                    break;
                }
                pc = eff.next_pc;
            }
            if !reached || inner_seeds.len() >= self.cfg.max_lanes {
                continue;
            }
            // Per-invocation inner trip count from the LCR-derived compare.
            let bound_val = match cmp.bound {
                BoundSrc::Reg(r) => lr[r.index()],
                BoundSrc::Imm(i) => i as u64,
            };
            let count = cmp.remaining(lr[cmp.ind_reg.index()], bound_val).min(MAX_LANES as u64);
            let Some(Instr::Load { addr, .. }) = prog.fetch(inner_pc) else { continue };
            let addr0 = addr.effective(|r| lr[r.index()]);
            for k in 0..count {
                if inner_seeds.len() >= self.cfg.max_lanes {
                    break;
                }
                let mut sr = lr;
                sr[cmp.ind_reg.index()] = sr[cmp.ind_reg.index()]
                    .wrapping_add((cmp.increment.wrapping_mul(k as i64)) as u64);
                inner_seeds.push(LaneSeed {
                    regs: sr,
                    stride_addr: addr0.wrapping_add((chain.stride.wrapping_mul(k as i64)) as u64),
                });
            }
        }
        t = t.max(dep_done);

        // --- NDM phase 3: full vectorized runahead over the collected
        // inner iterations. --------------------------------------------
        if inner_seeds.is_empty() {
            return t;
        }
        self.stats.lanes_spawned += inner_seeds.len() as u64;
        let out = walk_vectorized(
            prog,
            mem,
            ctx.hier,
            t,
            &inner_seeds,
            Termination { flr_pc: chain.flr_pc, stride_pc: inner_pc },
            &self.policy(),
        );
        self.stats.lane_loads += out.lane_loads;
        if out.diverged {
            self.stats.diverged_episodes += 1;
        }
        out.issue_done
    }
}

impl RunaheadEngine for DvrEngine {
    fn name(&self) -> &'static str {
        "dvr"
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCtx<'_>, di: &DynInst) {
        self.shadow.update(di);
        let confident = match (di.is_load(), di.mem) {
            (true, Some(m)) => self.detector.observe(di.pc, m.addr),
            _ => false,
        };

        // The subthread is busy: keep training but do not re-trigger
        // (Section 4.2.4 — the main thread becomes eligible again after
        // termination).
        if ctx.cycle < self.busy_until {
            return;
        }

        match &mut self.phase {
            Phase::Idle => {
                if confident {
                    // A confident trigger always comes from an observed load
                    // with a destination; if any of that is missing the
                    // trigger degrades to "no spawn" rather than crashing a
                    // whole sweep.
                    let Some(m) = di.mem else { return };
                    let Some(stride) = self.detector.lookup(di.pc).map(|e| e.stride) else {
                        return;
                    };
                    if self.cfg.discovery {
                        let Some(dst) = di.instr.dst() else { return };
                        self.phase = Phase::Discovering(Box::new(Discovery::begin(
                            di.pc,
                            stride,
                            dst,
                            &self.shadow,
                        )));
                        self.emit(|| TraceEvent::DiscoveryBegin { pc: di.pc, stride });
                    } else {
                        // Offload ablation: vectorize immediately, blindly.
                        let chain = DiscoveredChain {
                            stride_pc: di.pc,
                            stride,
                            has_dependent_load: true,
                            flr_pc: None,
                            lanes: self.cfg.max_lanes,
                            bound_known: false,
                            loop_branch_pc: None,
                            cmp: None,
                        };
                        self.spawn(ctx, m.addr, &chain);
                    }
                }
            }
            Phase::Discovering(d) => {
                let from_pc = d.trigger_pc();
                match d.observe(di, &self.detector, &self.shadow) {
                    DiscoveryEvent::Continue => {}
                    DiscoveryEvent::Switched => {
                        self.stats.innermost_switches += 1;
                        let to_pc = d.trigger_pc();
                        if let Some(t) = self.trace.as_mut() {
                            t.events.push(TraceEvent::DiscoverySwitch { from_pc, to_pc });
                        }
                    }
                    DiscoveryEvent::Aborted => {
                        self.stats.discovery_aborts += 1;
                        self.phase = Phase::Idle;
                        self.emit(|| TraceEvent::DiscoveryAbort { pc: from_pc });
                    }
                    DiscoveryEvent::Finished(chain) => {
                        let dep_loads = d.take_dep_loads();
                        self.phase = Phase::Idle;
                        if chain.has_dependent_load {
                            self.emit(|| TraceEvent::DiscoveryEnd {
                                pc: chain.stride_pc,
                                stride: chain.stride,
                                flr_pc: chain.flr_pc,
                                lanes: chain.lanes,
                                bound_known: chain.bound_known,
                                dep_loads,
                            });
                            // Finish fires on the stride load; without its
                            // access there is nothing to seed lanes from, so
                            // skip.
                            let Some(m) = di.mem else { return };
                            self.spawn(ctx, m.addr, &chain);
                            // Mark in the detector for diagnostics.
                            self.detector.set_innermost(chain.stride_pc, true);
                        } else {
                            self.stats.no_dependent_chain += 1;
                            self.emit(|| TraceEvent::NoDependentChain { pc: chain.stride_pc });
                        }
                    }
                }
            }
        }
    }
}
