//! The vectorized lane walker: speculative, in-order execution of an
//! indirect chain across many scalar-equivalent lanes.
//!
//! This is the machinery shared by Vector Runahead and the DVR subthread
//! (Sections 2.3 and 4.2): up to 128 lanes execute the same instruction
//! sequence in lockstep, loads become gathers split into scalar cache
//! accesses (each allocating an MSHR), and control flow either masks
//! diverging lanes off (VR) or runs them later via a GPU-style
//! reconvergence stack (DVR, Section 4.2.3). Taint from the striding load
//! decides which instructions are vectorized (16 vector uops) versus scalar
//! (1 uop) for Vector-Issue-Register timing.

use sim_isa::{exec_lane, lane_taint_step, Instr, Program, SparseMemory, NUM_REGS};
use sim_mem::{AccessClass, MemoryHierarchy, PrefetchSource};

/// Lanes per invocation in the paper's configuration (Section 4.2:
/// 16 AVX-512 vectors × 8 scalar-equivalent lanes).
pub const MAX_LANES: usize = 128;

/// Hard ceiling on lanes the walker supports — twice the paper's setup,
/// for the Section 6.1 "wider 256-element DVR" extension (a larger VRAT
/// and more physical vector registers).
pub const ABSOLUTE_MAX_LANES: usize = 256;

/// Scalar-equivalent lanes per vector uop (8 × 64-bit in AVX-512).
pub const VECTOR_WIDTH: usize = 8;

/// How diverging lanes are handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivergenceMode {
    /// Vector Runahead: follow lane 0's control flow; lanes that diverge
    /// are invalidated (Section 3, observation 5).
    MaskOff,
    /// DVR: GPU-style divergence with an 8-entry reconvergence stack
    /// (Section 4.2.3).
    Reconverge,
}

/// Walker policy knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalkPolicy {
    /// Divergence handling.
    pub divergence: DivergenceMode,
    /// Vector uops issued per cycle (spare-slot budget for the subthread;
    /// VR runs during a stall and gets more).
    pub issue_rate: u32,
    /// Instruction timeout per invocation (paper: 200).
    pub timeout: usize,
    /// Provenance for prefetched lines.
    pub source: PrefetchSource,
    /// Reconvergence-stack entries (paper: 8).
    pub stack_depth: usize,
}

impl WalkPolicy {
    /// The DVR subthread policy.
    pub fn dvr() -> Self {
        WalkPolicy {
            divergence: DivergenceMode::Reconverge,
            issue_rate: 2,
            timeout: 200,
            source: PrefetchSource::Dvr,
            stack_depth: 8,
        }
    }

    /// The VR runahead policy.
    pub fn vr() -> Self {
        WalkPolicy {
            divergence: DivergenceMode::MaskOff,
            issue_rate: 4,
            timeout: 200,
            source: PrefetchSource::Vr,
            stack_depth: 0,
        }
    }
}

/// When a lane group stops walking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Termination {
    /// The Final-Load-Register PC: terminate after executing this load.
    /// `None` when Discovery Mode suppressed the FLR (divergent paths,
    /// footnote 1) or never found one.
    pub flr_pc: Option<usize>,
    /// The striding load's PC: reaching it again means the next iteration
    /// started — the chain for this lane is complete.
    pub stride_pc: usize,
}

/// The starting state of one lane.
#[derive(Clone, Copy, Debug)]
pub struct LaneSeed {
    /// Initial architectural registers for the lane.
    pub regs: [u64; NUM_REGS],
    /// Overridden address for the lane's copy of the striding load.
    pub stride_addr: u64,
}

/// Builds lane seeds for `count` future iterations of a striding load:
/// lane *i* covers `trigger_addr + (i+1)·stride` (Section 4.2's Vectorizer).
pub fn stride_seeds(
    regs: [u64; NUM_REGS],
    trigger_addr: u64,
    stride: i64,
    count: usize,
) -> Vec<LaneSeed> {
    stride_seeds_from(regs, trigger_addr, stride, 1, count)
}

/// Like [`stride_seeds`], but starting `first` iterations ahead: lane *i*
/// covers `trigger_addr + (first + i)·stride`. Used by DVR's coverage
/// tracking so consecutive episodes extend the prefetch frontier rather
/// than re-covering it.
pub fn stride_seeds_from(
    regs: [u64; NUM_REGS],
    trigger_addr: u64,
    stride: i64,
    first: u64,
    count: usize,
) -> Vec<LaneSeed> {
    (0..count.min(ABSOLUTE_MAX_LANES) as u64)
        .map(|i| LaneSeed {
            regs,
            stride_addr: trigger_addr
                .wrapping_add((stride.wrapping_mul((first + i) as i64)) as u64),
        })
        .collect()
}

/// Outcome of one walker invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalkOutcome {
    /// Cycle the last memory data returned (full chain completion).
    pub end_cycle: u64,
    /// Cycle the last vector uop *issued*. Runahead terminates once the
    /// final prefetches have been generated (paper Section 2.3 "delayed
    /// termination" ends at generation, and the DVR subthread frees at
    /// termination, not at fill): use this for commit-unblock / re-arm.
    pub issue_done: u64,
    /// Lockstep instructions executed.
    pub instructions: usize,
    /// Scalar-equivalent lane loads issued to the hierarchy.
    pub lane_loads: u64,
    /// Whether any control-flow divergence occurred.
    pub diverged: bool,
    /// Lanes invalidated by divergence (MaskOff mode) or stack overflow.
    pub lanes_lost: usize,
}

#[derive(Clone, Debug)]
struct Group {
    pc: usize,
    /// Active lane indices (ordered).
    lanes: Vec<usize>,
}

/// Walks a vectorized indirect chain.
///
/// `t0` is the spawn cycle; the walker issues gathers through `hier`
/// (contending for MSHRs and DRAM bandwidth with the main thread) and
/// returns when every lane has terminated, timed out, or been invalidated.
///
/// The walker is purely speculative: it reads the live memory image and
/// never writes it (stores are suppressed, matching transient runahead
/// semantics).
pub fn walk_vectorized(
    prog: &Program,
    mem: &SparseMemory,
    hier: &mut MemoryHierarchy,
    t0: u64,
    seeds: &[LaneSeed],
    term: Termination,
    policy: &WalkPolicy,
) -> WalkOutcome {
    let mut out = WalkOutcome { end_cycle: t0, issue_done: t0, ..WalkOutcome::default() };
    if seeds.is_empty() {
        return out;
    }
    let n = seeds.len().min(ABSOLUTE_MAX_LANES);
    let mut lanes: Vec<[u64; NUM_REGS]> = seeds[..n].iter().map(|s| s.regs).collect();

    let stride_instr = match prog.fetch(term.stride_pc) {
        Some(i) => *i,
        None => return out,
    };

    let mut vtt: u16 = 0;
    // Scoreboard: cycle at which each architectural register's (vectorized)
    // value is available. The subthread issues in order, but completes out
    // of order — the Vector Issue Register overlaps vector copies
    // (Section 4.2.2), so only *true dependences* wait on memory.
    let mut reg_ready = [t0; NUM_REGS];
    let mut issue_cursor = t0;

    // --- Execute the vectorized striding load itself. -------------------
    let (rd, width) = match stride_instr {
        Instr::Load { rd, width, .. } => (rd, width),
        _ => return out,
    };
    // Bounds-audit shadow: while the hierarchy's spec-extent map is armed,
    // every lane-issued access is reported with its static pc. Same gated
    // observer discipline as the taint shadow below — never feeds timing.
    let bounds_on = hier.spec_extents_enabled();
    let uops = n.div_ceil(VECTOR_WIDTH) as u64;
    let span = uops.div_ceil(policy.issue_rate as u64);
    let mut done_at = issue_cursor + span;
    for (i, seed) in seeds[..n].iter().enumerate() {
        let t_issue = issue_cursor + (i / VECTOR_WIDTH) as u64 / policy.issue_rate as u64;
        let acc = hier.load(t_issue, seed.stride_addr, AccessClass::Prefetch(policy.source));
        done_at = done_at.max(acc.complete_at);
        out.lane_loads += 1;
        if bounds_on {
            hier.note_spec_access(term.stride_pc, seed.stride_addr, width.bytes());
        }
        // Functional effect: load the value and fix up the address registers
        // so dependent instructions compute lane-correct values.
        lanes[i][rd.index()] = mem.read(seed.stride_addr, width.bytes());
        fixup_address_regs(&stride_instr, &mut lanes[i], seed.stride_addr);
    }
    issue_cursor += span;
    reg_ready[rd.index()] = done_at;
    out.issue_done = issue_cursor;
    out.end_cycle = done_at;
    vtt |= rd.bit();
    out.instructions += 1;

    // Secret-taint shadow for the leak-audit oracle: one register taint
    // mask per lane, seeded when a lane's striding load reads declared
    // secret memory. Maintained only while the hierarchy's taint log is
    // armed — the common path allocates and computes nothing — and purely
    // an observer: no taint bit ever feeds a timing decision.
    let taint_on = hier.taint_log_enabled();
    let mut secret_taint: Vec<u16> = if taint_on { vec![0u16; n] } else { Vec::new() };
    if taint_on {
        for (i, seed) in seeds[..n].iter().enumerate() {
            if prog.is_secret_addr(seed.stride_addr) {
                secret_taint[i] = rd.bit();
            }
        }
    }

    // --- Lockstep walk of the dependent chain. --------------------------
    let mut current = Group { pc: term.stride_pc + 1, lanes: (0..n).collect() };
    let mut stack: Vec<Group> = Vec::new();
    let mut budget = policy.timeout;

    'walk: loop {
        if budget == 0 {
            break;
        }
        budget -= 1;

        let pc = current.pc;
        // Coming back around to the striding load = next iteration: the
        // chain is complete for this group.
        if pc == term.stride_pc {
            if !next_group(&mut current, &mut stack) {
                break;
            }
            continue;
        }
        let Some(instr) = prog.fetch(pc).copied() else {
            if !next_group(&mut current, &mut stack) {
                break;
            }
            continue;
        };
        if matches!(instr, Instr::Halt) {
            if !next_group(&mut current, &mut stack) {
                break;
            }
            continue;
        }

        // Taint: does this instruction depend (transitively) on the stride?
        let tainted = instr.srcs().any(|r| vtt & r.bit() != 0);
        if let Some(dst) = instr.dst() {
            if tainted {
                vtt |= dst.bit();
            } else {
                vtt &= !dst.bit();
            }
        }

        // Timing: vectorized instructions issue one uop per VECTOR_WIDTH
        // lanes; scalar (untainted) work is a single uop. Issue waits for
        // in-order slots and for the instruction's *sources* (scoreboard);
        // independent loads overlap.
        let uops = if tainted { (n.div_ceil(VECTOR_WIDTH)) as u64 } else { 1 };
        let issue_span = uops.div_ceil(policy.issue_rate as u64).max(1);
        let srcs_ready = instr.srcs().map(|r| reg_ready[r.index()]).max().unwrap_or(issue_cursor);
        let start = issue_cursor.max(srcs_ready);

        // Execute per lane.
        let mut next_pcs: Vec<(usize, usize)> = Vec::with_capacity(current.lanes.len());
        let mut load_done = start + issue_span;
        for (k, &lane) in current.lanes.iter().enumerate() {
            let eff = exec_lane(prog, pc, &mut lanes[lane], mem);
            if let Some((addr, w)) = eff.load {
                let t_issue = start + (k / VECTOR_WIDTH) as u64 / policy.issue_rate as u64;
                let acc = hier.load(t_issue, addr, AccessClass::Prefetch(policy.source));
                load_done = load_done.max(acc.complete_at);
                out.lane_loads += 1;
                if bounds_on {
                    hier.note_spec_access(pc, addr, w);
                }
            }
            if taint_on {
                let addr = eff.load.map(|(a, _)| a);
                if lane_taint_step(prog, &instr, &mut secret_taint[lane], addr) {
                    // This lane gathered through a secret-derived address:
                    // the fill it triggers is the speculative leak.
                    hier.note_secret_fill(pc, addr.expect("transmitters load"), policy.source);
                }
            }
            next_pcs.push((lane, eff.next_pc));
        }
        out.instructions += 1;
        issue_cursor = start + issue_span;
        out.issue_done = out.issue_done.max(issue_cursor);
        if let Some(dst) = instr.dst() {
            reg_ready[dst.index()] = if instr.is_load() { load_done } else { start + issue_span };
        }
        out.end_cycle = out.end_cycle.max(load_done);

        // FLR termination: the final dependent load has executed.
        if Some(pc) == term.flr_pc {
            if !next_group(&mut current, &mut stack) {
                break;
            }
            continue;
        }

        // Control flow.
        let first_pc = next_pcs[0].1;
        if next_pcs.iter().all(|(_, p)| *p == first_pc) {
            current.pc = first_pc;
            continue;
        }
        out.diverged = true;
        match policy.divergence {
            DivergenceMode::MaskOff => {
                // Keep only lanes agreeing with the group's first lane.
                let keep: Vec<usize> =
                    next_pcs.iter().filter(|(_, p)| *p == first_pc).map(|(l, _)| *l).collect();
                out.lanes_lost += current.lanes.len() - keep.len();
                current = Group { pc: first_pc, lanes: keep };
            }
            DivergenceMode::Reconverge => {
                // Partition lanes by target; follow the first group, stack
                // the rest (dropping overflow beyond the stack depth).
                let mut targets: Vec<(usize, Vec<usize>)> = Vec::new();
                for (lane, p) in &next_pcs {
                    match targets.iter_mut().find(|(tp, _)| tp == p) {
                        Some((_, v)) => v.push(*lane),
                        None => targets.push((*p, vec![*lane])),
                    }
                }
                let mut iter = targets.into_iter();
                let (tp, tl) = iter.next().expect("divergence implies lanes");
                current = Group { pc: tp, lanes: tl };
                for (tp, tl) in iter {
                    if stack.len() < policy.stack_depth {
                        stack.push(Group { pc: tp, lanes: tl });
                    } else {
                        out.lanes_lost += tl.len();
                    }
                }
            }
        }
        if current.lanes.is_empty() && !next_group(&mut current, &mut stack) {
            break 'walk;
        }
    }

    out.end_cycle = out.end_cycle.max(out.issue_done);
    out
}

/// Pops the next divergent group off the reconvergence stack into
/// `current`; returns `false` when the stack is empty (walk complete).
fn next_group(current: &mut Group, stack: &mut Vec<Group>) -> bool {
    match stack.pop() {
        Some(g) => {
            *current = g;
            true
        }
        None => false,
    }
}

/// After overriding a striding load's address for a lane, make the lane's
/// address registers consistent so later uses of the index (or bumped
/// pointer) compute lane-correct values.
pub fn fixup_address_regs(instr: &Instr, regs: &mut [u64; NUM_REGS], actual_addr: u64) {
    if let Instr::Load { addr, .. } = instr {
        match addr.index {
            Some(ix) => {
                // base + (index << scale) + offset = actual
                let base = regs[addr.base.index()].wrapping_add(addr.offset as u64);
                regs[ix.index()] = actual_addr.wrapping_sub(base) >> addr.scale;
            }
            None => {
                // Pointer-bump style: adjust the base.
                regs[addr.base.index()] = actual_addr.wrapping_sub(addr.offset as u64);
            }
        }
    }
}

/// Scalar forward walk used to locate a striding load ahead of the frontier
/// (VR's pre-vectorization scan) or to skip an inner loop (Nested Discovery
/// Mode, with `force_not_taken` set to the loop-back branch PC).
///
/// Returns the PC where `stop` matched, with `regs` updated in place, or
/// `None` if the budget expired first.
pub fn walk_scalar_until(
    prog: &Program,
    mem: &SparseMemory,
    regs: &mut [u64; NUM_REGS],
    start_pc: usize,
    budget: usize,
    force_not_taken: Option<usize>,
    mut stop: impl FnMut(usize, &Instr, &[u64; NUM_REGS]) -> bool,
) -> Option<usize> {
    let mut pc = start_pc;
    for _ in 0..budget {
        let instr = prog.fetch(pc)?;
        if stop(pc, instr, regs) {
            return Some(pc);
        }
        if matches!(instr, Instr::Halt) {
            return None;
        }
        if force_not_taken == Some(pc) && instr.is_cond_branch() {
            pc += 1;
            continue;
        }
        let eff = exec_lane(prog, pc, regs, mem);
        if eff.halted {
            return None;
        }
        pc = eff.next_pc;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Reg;
    use sim_isa::{Asm, MemWidth};
    use sim_mem::{HierarchyConfig, HitLevel};

    /// Program: for i { v = A[i]; w = B[v]; C_flag = w&1; if flag { x = D[w] } }
    fn chain_program() -> (Program, usize, usize) {
        chain_program_with(false)
    }

    fn chain_program_with(secret_a: bool) -> (Program, usize, usize) {
        let mut asm = Asm::new();
        if secret_a {
            asm.secret(0x10_0000, 8 * 2048);
        }
        let (a, b, d, i, n, v, w, c, f) =
            (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9);
        asm.li(a, 0x10_0000);
        asm.li(b, 0x20_0000);
        asm.li(d, 0x30_0000);
        asm.li(i, 0);
        asm.li(n, 1000);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3); // striding load
        let dep_pc = asm.pc();
        asm.ld8_idx(w, b, v, 3); // dependent load (FLR candidate)
        asm.andi(f, w, 1);
        let skip = asm.label();
        asm.bez(f, skip);
        asm.ld8_idx(c, d, w, 3); // conditional dependent load
        asm.bind(skip);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        (asm.finish().unwrap(), stride_pc, dep_pc)
    }

    fn setup_mem() -> SparseMemory {
        let mut mem = SparseMemory::new();
        let mut x: u64 = 42;
        for k in 0..2048u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            mem.write_u64(0x10_0000 + 8 * k, (x >> 33) % 1024);
            mem.write_u64(0x20_0000 + 8 * k, (x >> 21) % 1024);
        }
        mem
    }

    fn seeds_for(prog: &Program, _stride_pc: usize, count: usize) -> Vec<LaneSeed> {
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::R1.index()] = 0x10_0000;
        regs[Reg::R2.index()] = 0x20_0000;
        regs[Reg::R3.index()] = 0x30_0000;
        regs[Reg::R5.index()] = 1000;
        let _ = prog;
        stride_seeds(regs, 0x10_0000, 8, count)
    }

    #[test]
    fn walker_prefetches_all_levels_of_the_chain() {
        let (prog, stride_pc, _dep) = chain_program();
        let mem = setup_mem();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let seeds = seeds_for(&prog, stride_pc, 32);
        let out = walk_vectorized(
            &prog,
            &mem,
            &mut hier,
            0,
            &seeds,
            Termination { flr_pc: None, stride_pc },
            &WalkPolicy::dvr(),
        );
        // 32 stride loads + 32 dependent loads + conditional D loads.
        assert!(out.lane_loads >= 64, "lane loads {}", out.lane_loads);
        assert!(out.end_cycle > 200, "must have waited for memory");
        // The lines for A[1..33] must now be resident/prefetched.
        for i in 1..=32u64 {
            let addr = 0x10_0000 + 8 * i;
            let acc = hier.load(out.end_cycle + 10_000, addr, AccessClass::Demand);
            assert_ne!(acc.level, HitLevel::Mem, "A[{i}] should be on chip");
        }
    }

    /// Program with loads down *both* branch arms:
    /// for i { v=A[i]; w=B[v]; if (w&1) x=D[w]; else x=E[w]; }
    fn ifelse_program() -> (Program, usize) {
        let mut asm = Asm::new();
        let (a, b, d, e) = (Reg::R1, Reg::R2, Reg::R3, Reg::R10);
        let (i, n, v, w, c, f, x) =
            (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R11);
        asm.li(a, 0x10_0000);
        asm.li(b, 0x20_0000);
        asm.li(d, 0x30_0000);
        asm.li(e, 0x40_0000);
        asm.li(i, 0);
        asm.li(n, 1000);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3);
        asm.ld8_idx(w, b, v, 3);
        asm.andi(f, w, 1);
        let else_arm = asm.label();
        let join = asm.label();
        asm.bez(f, else_arm);
        asm.ld8_idx(x, d, w, 3);
        asm.jmp(join);
        asm.bind(else_arm);
        asm.ld8_idx(x, e, w, 3);
        asm.bind(join);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        (asm.finish().unwrap(), stride_pc)
    }

    #[test]
    fn secret_fills_logged_only_when_armed_and_timing_neutral() {
        let (prog, stride_pc, dep_pc) = chain_program_with(true);
        let mem = setup_mem();
        let run = |armed: bool| {
            let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
            if armed {
                hier.enable_taint_log();
            }
            let seeds = seeds_for(&prog, stride_pc, 32);
            let out = walk_vectorized(
                &prog,
                &mem,
                &mut hier,
                0,
                &seeds,
                Termination { flr_pc: None, stride_pc },
                &WalkPolicy::dvr(),
            );
            (out, hier)
        };
        let (armed, mut hier) = run(true);
        let (plain, _) = run(false);
        assert_eq!(armed.end_cycle, plain.end_cycle, "shadow must not change timing");
        assert_eq!(armed.lane_loads, plain.lane_loads);
        let log = hier.take_taint_log().expect("armed log");
        // Every lane's B[v] gather (and conditional D[w]) has a
        // secret-derived address: at least the 32 dependent loads transmit.
        assert!(log.len() >= 32, "fills {}", log.len());
        assert!(log.iter().all(|f| f.source == PrefetchSource::Dvr));
        assert!(log.iter().all(|f| f.pc == dep_pc || f.pc == dep_pc + 3), "{log:?}");
        // Without the secret declaration nothing transmits.
        let (prog2, stride2, _) = chain_program();
        let mut hier2 = MemoryHierarchy::new(HierarchyConfig::default());
        hier2.enable_taint_log();
        let seeds = seeds_for(&prog2, stride2, 32);
        walk_vectorized(
            &prog2,
            &mem,
            &mut hier2,
            0,
            &seeds,
            Termination { flr_pc: None, stride_pc: stride2 },
            &WalkPolicy::dvr(),
        );
        assert_eq!(hier2.take_taint_log().unwrap(), vec![]);
    }

    #[test]
    fn reconvergence_covers_divergent_lanes() {
        let (prog, stride_pc) = ifelse_program();
        let mem = setup_mem();

        let run = |mode| {
            let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
            let seeds = seeds_for(&prog, stride_pc, 64);
            let mut policy = WalkPolicy::dvr();
            policy.divergence = mode;
            walk_vectorized(
                &prog,
                &mem,
                &mut hier,
                0,
                &seeds,
                Termination { flr_pc: None, stride_pc },
                &policy,
            )
        };
        let reconv = run(DivergenceMode::Reconverge);
        let maskoff = run(DivergenceMode::MaskOff);
        assert!(reconv.diverged && maskoff.diverged);
        // Every lane loads A, B, and exactly one of D/E: reconvergence
        // covers all 64x3; mask-off loses the lanes on the other arm.
        assert_eq!(reconv.lane_loads, 64 * 3);
        assert!(
            reconv.lane_loads > maskoff.lane_loads,
            "reconvergence ({}) must cover more lanes than mask-off ({})",
            reconv.lane_loads,
            maskoff.lane_loads
        );
        assert!(maskoff.lanes_lost > 0);
        assert_eq!(reconv.lanes_lost, 0, "8-deep stack suffices for one if/else");
    }

    #[test]
    fn walker_respects_timeout() {
        // An infinite inner loop the walker cannot leave.
        let mut asm = Asm::new();
        asm.li(Reg::R1, 0x1000);
        let stride_pc = asm.pc();
        asm.ld8(Reg::R2, Reg::R1, 0);
        let spin = asm.here();
        asm.addi(Reg::R3, Reg::R3, 1);
        asm.jmp(spin);
        let prog = asm.finish().unwrap();
        let mem = SparseMemory::new();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let seeds = stride_seeds([0; NUM_REGS], 0x1000, 8, 16);
        let mut policy = WalkPolicy::dvr();
        policy.timeout = 50;
        let out = walk_vectorized(
            &prog,
            &mem,
            &mut hier,
            0,
            &seeds,
            Termination { flr_pc: None, stride_pc },
            &policy,
        );
        assert!(out.instructions <= 52, "instructions {}", out.instructions);
    }

    #[test]
    fn flr_terminates_early() {
        let (prog, stride_pc, dep_pc) = chain_program();
        let mem = setup_mem();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let seeds = seeds_for(&prog, stride_pc, 16);
        let out = walk_vectorized(
            &prog,
            &mem,
            &mut hier,
            0,
            &seeds,
            Termination { flr_pc: Some(dep_pc), stride_pc },
            &WalkPolicy::dvr(),
        );
        // Stride + the one dependent load; no conditional D loads, no loop
        // tail.
        assert_eq!(out.instructions, 2);
        assert_eq!(out.lane_loads, 32);
    }

    #[test]
    fn fixup_keeps_index_register_consistent() {
        let (prog, stride_pc, _) = chain_program();
        let instr = *prog.fetch(stride_pc).unwrap();
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::R1.index()] = 0x10_0000;
        regs[Reg::R4.index()] = 5;
        fixup_address_regs(&instr, &mut regs, 0x10_0000 + 8 * 77);
        assert_eq!(regs[Reg::R4.index()], 77);
    }

    #[test]
    fn scalar_walk_stops_at_predicate() {
        let (prog, stride_pc, _) = chain_program();
        let mem = setup_mem();
        let mut regs = [0u64; NUM_REGS];
        let hit = walk_scalar_until(&prog, &mem, &mut regs, 0, 300, None, |pc, i, _| {
            i.is_load() && pc == stride_pc
        });
        assert_eq!(hit, Some(stride_pc));
    }

    #[test]
    fn scalar_walk_budget_expires() {
        let (prog, _, _) = chain_program();
        let mem = setup_mem();
        let mut regs = [0u64; NUM_REGS];
        let hit = walk_scalar_until(&prog, &mem, &mut regs, 0, 10, None, |_, _, _| false);
        assert_eq!(hit, None);
    }

    #[test]
    fn stride_seeds_cover_future_iterations() {
        let seeds = stride_seeds([7; NUM_REGS], 1000, 16, 4);
        let addrs: Vec<u64> = seeds.iter().map(|s| s.stride_addr).collect();
        assert_eq!(addrs, vec![1016, 1032, 1048, 1064]);
        assert!(stride_seeds([0; NUM_REGS], 0, 8, 1000).len() <= ABSOLUTE_MAX_LANES);
    }

    #[test]
    fn empty_seeds_is_a_noop() {
        let (prog, stride_pc, _) = chain_program();
        let mem = SparseMemory::new();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let out = walk_vectorized(
            &prog,
            &mem,
            &mut hier,
            99,
            &[],
            Termination { flr_pc: None, stride_pc },
            &WalkPolicy::dvr(),
        );
        assert_eq!(out.end_cycle, 99);
        assert_eq!(out.lane_loads, 0);
    }

    #[test]
    fn loads_use_memwidth() {
        // 4-byte striding loads work too.
        let mut asm = Asm::new();
        asm.li(Reg::R1, 0x5000);
        let stride_pc = asm.pc();
        asm.load(Reg::R2, sim_isa::MemAddr::indexed(Reg::R1, Reg::R3, 2), MemWidth::B4);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        mem.write_u32(0x5004, 0xDEAD);
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::R1.index()] = 0x5000;
        let seeds = stride_seeds(regs, 0x5000, 4, 1);
        let out = walk_vectorized(
            &prog,
            &mem,
            &mut hier,
            0,
            &seeds,
            Termination { flr_pc: None, stride_pc },
            &WalkPolicy::dvr(),
        );
        assert_eq!(out.lane_loads, 1);
    }
}
