//! The 32-entry stride detector (Section 4.4).
//!
//! Structurally the same table as the L1-D Reference Prediction Table, but
//! owned by the runahead engines: each entry tracks a load PC, its previous
//! address, the stride, a 2-bit saturating counter, and the *innermost* bit
//! used by Discovery Mode's innermost-striding-load detection
//! (Section 4.1.1).

/// One stride-detector entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DetectorEntry {
    /// Load PC.
    pub pc: usize,
    /// Previous address observed.
    pub last_addr: u64,
    /// Stride in bytes.
    pub stride: i64,
    /// 2-bit saturating confidence.
    pub confidence: u8,
    /// Innermost-candidate bit (set by Discovery Mode).
    pub innermost: bool,
}

impl DetectorEntry {
    /// Whether the entry has a confident non-zero stride.
    pub fn is_confident(&self) -> bool {
        self.confidence >= 2 && self.stride != 0
    }
}

/// The stride detector: a 32-entry, direct-mapped table of striding loads.
///
/// # Example
///
/// ```
/// use dvr_core::StrideDetector;
/// let mut d = StrideDetector::new(32);
/// d.observe(5, 0x100);
/// d.observe(5, 0x108);
/// assert!(d.observe(5, 0x110)); // confident from the third access
/// assert_eq!(d.lookup(5).unwrap().stride, 8);
/// ```
#[derive(Clone, Debug)]
pub struct StrideDetector {
    table: Vec<Option<DetectorEntry>>,
}

impl StrideDetector {
    /// Creates a detector with `entries` slots (the paper uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "detector must have at least one entry");
        StrideDetector { table: vec![None; entries] }
    }

    /// Slot index for a PC (used as the innermost-bit register index).
    pub fn slot(&self, pc: usize) -> usize {
        pc % self.table.len()
    }

    /// Observes a load; returns whether the PC now has a confident stride.
    pub fn observe(&mut self, pc: usize, addr: u64) -> bool {
        let slot = self.slot(pc);
        match &mut self.table[slot] {
            Some(e) if e.pc == pc => {
                let stride = addr.wrapping_sub(e.last_addr) as i64;
                if stride == e.stride && stride != 0 {
                    e.confidence = (e.confidence + 1).min(3);
                } else {
                    if e.confidence > 0 {
                        e.confidence -= 1;
                    }
                    if e.confidence == 0 {
                        e.stride = stride;
                        e.confidence = 1;
                    }
                }
                e.last_addr = addr;
                e.is_confident()
            }
            slot_entry => {
                *slot_entry = Some(DetectorEntry {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                    innermost: false,
                });
                false
            }
        }
    }

    /// Looks up the entry for `pc`.
    pub fn lookup(&self, pc: usize) -> Option<&DetectorEntry> {
        self.table[self.slot(pc)].as_ref().filter(|e| e.pc == pc)
    }

    /// Marks/clears the innermost bit for `pc` (no-op if absent).
    pub fn set_innermost(&mut self, pc: usize, innermost: bool) {
        let slot = self.slot(pc);
        if let Some(e) = &mut self.table[slot] {
            if e.pc == pc {
                e.innermost = innermost;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_after_three() {
        let mut d = StrideDetector::new(32);
        assert!(!d.observe(1, 0));
        assert!(!d.observe(1, 64));
        assert!(d.observe(1, 128));
        let e = d.lookup(1).unwrap();
        assert_eq!(e.stride, 64);
        assert!(e.is_confident());
    }

    #[test]
    fn irregular_never_confident() {
        let mut d = StrideDetector::new(32);
        for a in [3u64, 999, 17, 123_456, 42, 7] {
            assert!(!d.observe(2, a));
        }
    }

    #[test]
    fn innermost_bit_round_trips() {
        let mut d = StrideDetector::new(32);
        d.observe(3, 0);
        d.set_innermost(3, true);
        assert!(d.lookup(3).unwrap().innermost);
        d.set_innermost(3, false);
        assert!(!d.lookup(3).unwrap().innermost);
    }

    #[test]
    fn conflict_replaces() {
        let mut d = StrideDetector::new(4);
        d.observe(1, 0);
        d.observe(5, 0); // same slot
        assert!(d.lookup(1).is_none());
        assert!(d.lookup(5).is_some());
    }
}
