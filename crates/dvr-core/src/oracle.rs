//! The Oracle upper bound (paper Section 6): a hypothetical technique that
//! knows every memory access in advance and prefetches it just in time.
//!
//! Modelled as a latency override: every demand load observes (at most) the
//! L1 hit latency beyond unavoidable DRAM *bandwidth* queueing — the Oracle
//! can start fetches arbitrarily early, but it cannot create bandwidth. All
//! hierarchy state and traffic accounting still happen, so Figures 9–11
//! remain meaningful for the Oracle column.

use sim_mem::{AccessClass, HitLevel};
use sim_ooo::{EngineCtx, RunaheadEngine};

/// Counters exposed for the harness and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleStats {
    /// Loads whose latency the oracle hid.
    pub hidden_misses: u64,
    /// Loads that were natural L1 hits anyway.
    pub natural_hits: u64,
}

/// The Oracle engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleEngine {
    stats: OracleStats,
}

impl OracleEngine {
    /// Creates an Oracle engine.
    pub fn new() -> Self {
        OracleEngine::default()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }
}

impl RunaheadEngine for OracleEngine {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn override_load(&mut self, ctx: &mut EngineCtx<'_>, addr: u64) -> Option<u64> {
        let l1_latency = ctx.hier.config().l1.latency;
        let dram_min = ctx.hier.config().dram.min_latency;
        // Perform the access (full accounting: cache fills, DRAM bandwidth,
        // demand-traffic counters)...
        let acc = ctx.hier.load(ctx.cycle, addr, AccessClass::Demand);
        // ...then hide the *latency* the oracle would have prefetched away:
        // everything except bandwidth-queueing beyond the fixed DRAM delay.
        match acc.level {
            HitLevel::L1 => {
                self.stats.natural_hits += 1;
                Some(l1_latency)
            }
            _ => {
                self.stats.hidden_misses += 1;
                let raw = acc.complete_at.saturating_sub(ctx.cycle);
                Some(raw.saturating_sub(dram_min).max(l1_latency))
            }
        }
    }
}
