//! Precise Runahead Execution (Naithani et al., HPCA 2020) — baseline.
//!
//! On a full-ROB stall, PRE pre-executes the future instruction stream at
//! front-end width for the duration of the runahead interval (until the
//! blocking load returns), without flushing the pipeline afterwards.
//! Crucially, runahead values are *invalid* until their loads return: a
//! load whose data does not come back within the interval poisons its
//! destination, so PRE cannot prefetch past the first level of indirection
//! (paper Section 2.2) — modelled here with per-register validity bits.

use sim_isa::{Instr, NUM_REGS};
use sim_mem::{AccessClass, PrefetchSource};
use sim_ooo::{DynInst, EngineCtx, RunaheadEngine};

use crate::discovery::ShadowRegs;

/// PRE configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PreConfig {
    /// Instructions pre-executed per runahead cycle (front-end width).
    pub width: u64,
    /// Hard cap on instructions per runahead interval.
    pub max_instructions: u64,
}

impl Default for PreConfig {
    fn default() -> Self {
        // PRE pre-executes using *recycled* back-end resources (free
        // physical registers and issue-queue entries), which bounds how far
        // one interval can reach — roughly the free-register count of the
        // paper's 256-integer-register file.
        PreConfig { width: 5, max_instructions: 320 }
    }
}

/// Counters exposed for the harness and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct PreStats {
    /// Runahead intervals entered.
    pub episodes: u64,
    /// Instructions pre-executed in runahead mode.
    pub instructions: u64,
    /// Prefetches issued from runahead.
    pub prefetches: u64,
    /// Loads skipped because their address was poisoned (INV) — the
    /// indirect accesses PRE cannot reach.
    pub poisoned_loads: u64,
}

/// The PRE engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct PreEngine {
    cfg: PreConfig,
    stats: PreStats,
    shadow: ShadowRegs,
}

impl PreEngine {
    /// Creates a PRE engine.
    pub fn new(cfg: PreConfig) -> Self {
        PreEngine { cfg, stats: PreStats::default(), shadow: ShadowRegs::new() }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &PreStats {
        &self.stats
    }
}

impl RunaheadEngine for PreEngine {
    fn name(&self) -> &'static str {
        "pre"
    }

    fn on_dispatch(&mut self, _ctx: &mut EngineCtx<'_>, di: &DynInst) {
        self.shadow.update(di);
    }

    fn on_full_rob_stall(&mut self, ctx: &mut EngineCtx<'_>, head_complete_at: u64) -> u64 {
        self.stats.episodes += 1;
        let interval_end = head_complete_at;
        let mut regs = ctx.frontier.regs;
        let mut valid = [true; NUM_REGS];
        let mut pc = ctx.frontier.pc;
        let mut count: u64 = 0;

        loop {
            let t = ctx.cycle + count / self.cfg.width;
            if t >= interval_end || count >= self.cfg.max_instructions {
                break;
            }
            let Some(instr) = ctx.prog.fetch(pc).copied() else { break };
            count += 1;
            let mut next_pc = pc + 1;
            match instr {
                Instr::Imm { rd, value } => {
                    regs[rd.index()] = value as u64;
                    valid[rd.index()] = true;
                }
                Instr::Alu { op, rd, ra, rb } => {
                    valid[rd.index()] = valid[ra.index()] && valid[rb.index()];
                    if valid[rd.index()] {
                        regs[rd.index()] = op.eval(regs[ra.index()], regs[rb.index()]);
                    }
                }
                Instr::AluImm { op, rd, ra, imm } => {
                    valid[rd.index()] = valid[ra.index()];
                    if valid[rd.index()] {
                        regs[rd.index()] = op.eval(regs[ra.index()], imm as u64);
                    }
                }
                Instr::Load { rd, addr, width } => {
                    let addr_valid = addr.regs().all(|r| valid[r.index()]);
                    if addr_valid {
                        let a = addr.effective(|r| regs[r.index()]);
                        let acc = ctx.hier.load(t, a, AccessClass::Prefetch(PrefetchSource::Pre));
                        self.stats.prefetches += 1;
                        if acc.complete_at <= interval_end {
                            // The data returns within the interval: the
                            // value is usable by dependents.
                            regs[rd.index()] = ctx.mem.read(a, width.bytes());
                            valid[rd.index()] = true;
                        } else {
                            valid[rd.index()] = false; // INV
                        }
                    } else {
                        self.stats.poisoned_loads += 1;
                        valid[rd.index()] = false;
                    }
                }
                Instr::Store { .. } => {
                    // Stores are dropped in runahead mode.
                }
                Instr::Branch { cond, rs, target } => {
                    // Poisoned predicate: predict fall-through.
                    if valid[rs.index()] && cond.taken(regs[rs.index()]) {
                        next_pc = target;
                    }
                }
                Instr::Jump { target } => next_pc = target,
                Instr::Nop => {}
                Instr::Halt => break,
            }
            pc = next_pc;
        }
        self.stats.instructions += count;
        // PRE does not block commit (no pipeline flush on exit either).
        ctx.cycle
    }
}
