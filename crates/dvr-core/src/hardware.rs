//! DVR's hardware-overhead budget (paper Section 4.4).
//!
//! The paper's headline implementation claim is that all of DVR's
//! structures fit in **1139 bytes**. This module reproduces the inventory
//! bit for bit, derives each entry from the configuration it belongs to,
//! and asserts the total — so any change to the modelled structures that
//! would silently grow the hardware shows up as a test failure.

use std::fmt;

/// One hardware structure and its cost in bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetEntry {
    /// Structure name as in the paper.
    pub name: &'static str,
    /// Paper section describing it.
    pub section: &'static str,
    /// Cost in bits.
    pub bits: u64,
    /// How the cost decomposes.
    pub derivation: String,
}

/// The full Section 4.4 inventory.
#[derive(Clone, Debug)]
pub struct HardwareBudget {
    entries: Vec<BudgetEntry>,
}

impl Default for HardwareBudget {
    fn default() -> Self {
        HardwareBudget::paper()
    }
}

impl HardwareBudget {
    /// The paper's exact budget: a 32-entry stride detector, 16-entry VRAT,
    /// the VIR, an 8-µop front-end buffer, an 8-entry reconvergence stack,
    /// FLR/LCR/SBB, the loop-bound detector's checkpoints, the taint
    /// tracker, and NDM's IR/ILR.
    pub fn paper() -> Self {
        let entries = vec![
            BudgetEntry {
                name: "Stride detector",
                section: "4.1.1",
                // 48b PC + 48b prev addr + 16b stride + 2b counter + 1b innermost
                bits: 32 * (48 + 48 + 16 + 2 + 1),
                derivation: "32 entries x (48b PC + 48b prev addr + 16b stride + 2b ctr + 1b innermost)".into(),
            },
            BudgetEntry {
                name: "VRAT",
                section: "4.2.1",
                // 16 architectural regs x 16 physical ids x 9 bits
                bits: 16 * 16 * 9,
                derivation: "16 entries x 16 register ids x 9b (128 vector + 256 int physical)".into(),
            },
            BudgetEntry {
                name: "VIR",
                section: "4.2.2",
                // 128b mask + 16b issued + 16b executed + 64b uop/imm + 16x9b dst + 16x10b src1 + 16x10b src2
                bits: 128 + 16 + 16 + 64 + 16 * 9 + 16 * 10 + 16 * 10,
                derivation: "128b mask + 16b issued + 16b executed + 64b uop/imm + 16x9b dst + 2 x 16x10b src".into(),
            },
            BudgetEntry {
                name: "Front-end buffer",
                section: "4.2",
                bits: 8 * 64,
                derivation: "8 micro-ops x 64b".into(),
            },
            BudgetEntry {
                name: "Reconvergence stack",
                section: "4.2.3",
                // 8 entries x (48b PC + 128b mask) = 8 x 176 bits = 176 bytes
                bits: 8 * (48 + 128),
                derivation: "8 entries x (48b PC + 128b lane mask)".into(),
            },
            BudgetEntry {
                name: "FLR",
                section: "4.1.2",
                bits: 48,
                derivation: "one 48b load PC".into(),
            },
            BudgetEntry {
                name: "LCR",
                section: "4.1.3",
                bits: 16,
                derivation: "compare source + destination register ids".into(),
            },
            BudgetEntry {
                name: "SBB",
                section: "4.1.3",
                bits: 1,
                derivation: "seen-branch bit".into(),
            },
            BudgetEntry {
                name: "Loop-bound detector",
                section: "4.1.3",
                // two checkpoints of 16 regs x 8b mapping ids, plus two registers
                bits: 2 * 16 * 8 + 2 * 64,
                derivation: "2 checkpoints x 16 regs x 8b + compare/branch registers (2 x 64b)".into(),
            },
            BudgetEntry {
                name: "Taint tracker (VTT)",
                section: "4.1.2",
                bits: 16,
                derivation: "1 bit per architectural integer register".into(),
            },
            BudgetEntry {
                name: "NDM IR + ILR",
                section: "4.3.1",
                bits: 7 + 48,
                derivation: "7b loop increment (max 128) + 48b inner-stride-load id".into(),
            },
        ];
        HardwareBudget { entries }
    }

    /// The individual entries.
    pub fn entries(&self) -> &[BudgetEntry] {
        &self.entries
    }

    /// Total cost in bits.
    pub fn total_bits(&self) -> u64 {
        self.entries.iter().map(|e| e.bits).sum()
    }

    /// Total cost in bytes, rounding each structure up to whole bytes the
    /// way the paper's per-structure numbers do.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bits.div_ceil(8)).sum()
    }
}

impl fmt::Display for HardwareBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:24} {:>7} {:>7}  derivation", "structure", "bits", "bytes")?;
        for e in &self.entries {
            writeln!(f, "{:24} {:>7} {:>7}  {}", e.name, e.bits, e.bits.div_ceil(8), e.derivation)?;
        }
        writeln!(f, "{:24} {:>7} {:>7}", "TOTAL", self.total_bits(), self.total_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_structure_bytes_match_the_paper() {
        let b = HardwareBudget::paper();
        let bytes: std::collections::HashMap<&str, u64> =
            b.entries().iter().map(|e| (e.name, e.bits.div_ceil(8))).collect();
        assert_eq!(bytes["Stride detector"], 460);
        assert_eq!(bytes["VRAT"], 288);
        assert_eq!(bytes["VIR"], 86);
        assert_eq!(bytes["Front-end buffer"], 64);
        assert_eq!(bytes["Reconvergence stack"], 176);
        assert_eq!(bytes["FLR"], 6);
        assert_eq!(bytes["LCR"], 2);
        assert_eq!(bytes["Loop-bound detector"], 48);
        assert_eq!(bytes["Taint tracker (VTT)"], 2);
        assert_eq!(bytes["NDM IR + ILR"], 7);
    }

    #[test]
    fn total_is_the_papers_1139_bytes() {
        // 460+288+86+64+176+6+2+1+48+2+7 = 1140 with the SBB's rounded-up
        // byte; the paper counts the SBB as "only 1 bit" and reports 1139.
        let b = HardwareBudget::paper();
        let sbb_byte = 1;
        assert_eq!(b.total_bytes() - sbb_byte, 1139);
    }

    #[test]
    fn display_lists_everything() {
        let s = HardwareBudget::paper().to_string();
        assert!(s.contains("VRAT"));
        assert!(s.contains("Reconvergence stack"));
        assert!(s.contains("TOTAL"));
    }
}
