//! Property-based tests on DVR's core data structures and invariants.

use proptest::prelude::*;

use dvr_core::{
    stride_seeds, stride_seeds_from, walk_vectorized, BoundSrc, CmpInfo, DivergenceMode, DvrEngine,
    PreEngine, StrideDetector, Termination, VrEngine, WalkPolicy,
};
use sim_isa::{Asm, Cpu, Reg, SparseMemory, NUM_REGS};
use sim_mem::{HierarchyConfig, MemoryHierarchy};
use sim_ooo::{CoreConfig, OooCore, RunaheadEngine};

proptest! {
    /// The stride detector becomes confident on any regular stride and
    /// never on sufficiently irregular sequences.
    #[test]
    fn detector_confidence_tracks_regularity(
        base in 0u64..1u64<<40,
        stride in prop::sample::select(vec![1i64, 2, 4, 8, 64, 4096, -8, -64]),
        n in 3usize..20,
    ) {
        let mut d = StrideDetector::new(32);
        let mut addr = base;
        let mut confident = false;
        for _ in 0..n {
            confident = d.observe(7, addr);
            addr = addr.wrapping_add(stride as u64);
        }
        prop_assert!(confident, "regular stride must train");
        prop_assert_eq!(d.lookup(7).unwrap().stride, stride);
    }

    #[test]
    fn detector_rejects_random(addrs in prop::collection::vec(any::<u64>(), 4..24)) {
        let mut d = StrideDetector::new(32);
        let mut last_conf = false;
        for a in &addrs {
            last_conf = d.observe(3, *a);
        }
        // Random u64 addresses virtually never repeat a stride twice.
        prop_assert!(!last_conf);
    }

    /// Lane seeds enumerate exactly the arithmetic sequence they promise.
    #[test]
    fn seeds_form_arithmetic_sequence(
        trigger in 0u64..1u64<<40,
        stride in prop::sample::select(vec![4i64, 8, 16, -8]),
        first in 1u64..64,
        count in 0usize..128,
    ) {
        let seeds = stride_seeds_from([0; NUM_REGS], trigger, stride, first, count);
        prop_assert_eq!(seeds.len(), count.min(128));
        for (i, s) in seeds.iter().enumerate() {
            let want = trigger.wrapping_add(
                (stride.wrapping_mul((first + i as u64) as i64)) as u64);
            prop_assert_eq!(s.stride_addr, want);
        }
        // stride_seeds == stride_seeds_from with first = 1.
        let a = stride_seeds([0; NUM_REGS], trigger, stride, count);
        let b = stride_seeds_from([0; NUM_REGS], trigger, stride, 1, count);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.stride_addr, y.stride_addr);
        }
    }

    /// Remaining-iteration math never underflows/overflows and is exact
    /// for clean increments.
    #[test]
    fn cmp_remaining_is_safe(
        ind in any::<u64>(),
        bound in any::<u64>(),
        inc in prop::sample::select(vec![-8i64, -1, 0, 1, 2, 8]),
    ) {
        let cmp = CmpInfo { ind_reg: Reg::R1, bound: BoundSrc::Imm(0), increment: inc };
        let r = cmp.remaining(ind, bound);
        prop_assert!(r <= u64::MAX / 2); // no wrap-around garbage
        if inc == 1 && bound >= ind && bound - ind < 1 << 40 {
            prop_assert_eq!(r, bound - ind);
        }
        if inc == 0 {
            prop_assert_eq!(r, 0);
        }
    }

    /// Walker invariants hold for arbitrary lane counts and timeouts:
    /// issue_done <= end_cycle, both >= start, lane loads bounded by
    /// lanes × instructions.
    #[test]
    fn walker_timing_invariants(
        lanes in 1usize..128,
        timeout in 1usize..64,
        t0 in 0u64..1_000_000,
        mode in prop::sample::select(vec![DivergenceMode::MaskOff, DivergenceMode::Reconverge]),
    ) {
        // for i { v = A[i]; w = B[v & 1023]; if w&1 { x = C[w & 1023] } }
        let mut asm = Asm::new();
        let (a, b, c_) = (Reg::R1, Reg::R2, Reg::R3);
        let (i, v, w, f, x) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8);
        asm.li(a, 0x10_0000);
        asm.li(b, 0x20_0000);
        asm.li(c_, 0x30_0000);
        let top = asm.here();
        let stride_pc = asm.pc();
        asm.ld8_idx(v, a, i, 3);
        asm.andi(v, v, 1023);
        asm.ld8_idx(w, b, v, 3);
        asm.andi(f, w, 1);
        let skip = asm.label();
        asm.bez(f, skip);
        asm.andi(w, w, 1023);
        asm.ld8_idx(x, c_, w, 3);
        asm.bind(skip);
        asm.addi(i, i, 1);
        asm.jmp(top);
        let prog = asm.finish().unwrap();

        let mut mem = SparseMemory::new();
        for k in 0..1024u64 {
            mem.write_u64(0x10_0000 + 8 * k, k.wrapping_mul(2654435761) >> 13);
            mem.write_u64(0x20_0000 + 8 * k, k.wrapping_mul(40503) >> 3);
        }
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let seeds = stride_seeds([0; NUM_REGS], 0x10_0000, 8, lanes);
        let policy = WalkPolicy { timeout, divergence: mode, ..WalkPolicy::dvr() };
        let out = walk_vectorized(
            &prog,
            &mem,
            &mut hier,
            t0,
            &seeds,
            Termination { flr_pc: None, stride_pc },
            &policy,
        );
        prop_assert!(out.issue_done >= t0);
        prop_assert!(out.end_cycle >= out.issue_done);
        prop_assert!(out.instructions <= timeout + 2);
        prop_assert!(out.lane_loads <= (lanes * (timeout + 2)) as u64);
        if mode == DivergenceMode::Reconverge {
            // With an 8-deep stack and a single if, nothing is lost.
            prop_assert_eq!(out.lanes_lost, 0);
        }
    }
}

/// Builds a two-level indirect loop whose parameters vary per proptest
/// case, plus its memory image.
fn indirect_loop(
    table_bits: u32,
    extra_ops: usize,
    with_branch: bool,
    iters: i64,
) -> (sim_isa::Program, SparseMemory) {
    let mask = (1i64 << table_bits) - 1;
    let mut asm = Asm::new();
    let (a, b, i, n, v, w, f, c) =
        (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8);
    asm.li(a, 0x10_0000);
    asm.li(b, 0x100_0000);
    asm.li(i, 0);
    asm.li(n, iters);
    let top = asm.here();
    asm.ld8_idx(v, a, i, 3);
    asm.andi(v, v, mask);
    asm.ld8_idx(w, b, v, 3);
    if with_branch {
        let skip = asm.label();
        asm.andi(f, w, 1);
        asm.bez(f, skip);
        asm.st8_idx(w, b, v, 3);
        asm.bind(skip);
    }
    for k in 0..extra_ops {
        asm.alui(sim_isa::AluOp::Add, Reg::R9, Reg::R9, k as i64 + 1);
    }
    asm.addi(i, i, 1);
    asm.slt(c, i, n);
    asm.bnz(c, top);
    asm.halt();
    let prog = asm.finish().unwrap();

    let mut mem = SparseMemory::new();
    let mut x: u64 = 7;
    for k in 0..20_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        mem.write_u64(0x10_0000 + 8 * k, x >> 17);
        mem.write_u64(0x100_0000 + 8 * (k & ((1 << table_bits) - 1)), x >> 23);
    }
    (prog, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential check: with ANY engine attached, the timed run commits
    /// the same instruction count and leaves memory identical to the pure
    /// functional execution — runahead is transparent to architecture.
    #[test]
    fn engines_are_architecturally_transparent(
        table_bits in 8u32..14,
        extra_ops in 0usize..12,
        with_branch: bool,
        iters in 300i64..1_500,
    ) {
        // Programs run to completion so fetch-time and commit-time memory
        // states coincide at the end; then memory must equal the pure
        // functional execution exactly, whatever engine was attached.
        let (prog, mem0) = indirect_loop(table_bits, extra_ops, with_branch, iters);

        let run_engine = |engine: &mut dyn RunaheadEngine| {
            let mut mem = mem0.clone();
            let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
            let mut core = OooCore::new(CoreConfig::default());
            let stats = *core.run(&prog, &mut mem, &mut hier, engine, u64::MAX).expect("run failed");
            (stats.committed, mem)
        };

        let mut fmem = mem0.clone();
        let mut cpu = Cpu::new();
        let fsteps = cpu.run(&prog, &mut fmem, u64::MAX).unwrap();
        prop_assert!(cpu.is_halted());

        let mut dvr = DvrEngine::default();
        let mut vr = VrEngine::default();
        let mut pre = PreEngine::default();
        let mut null = sim_ooo::NullEngine;
        let engines: [(&str, &mut dyn RunaheadEngine); 4] =
            [("ooo", &mut null), ("dvr", &mut dvr), ("vr", &mut vr), ("pre", &mut pre)];
        for (name, engine) in engines {
            let (committed, mem) = run_engine(engine);
            prop_assert_eq!(committed, fsteps, "{} retired a different count", name);
            for k in 0..(1u64 << table_bits) {
                let addr = 0x100_0000 + 8 * k;
                prop_assert_eq!(
                    mem.read_u64(addr),
                    fmem.read_u64(addr),
                    "{} diverged from functional at {:#x}", name, addr
                );
            }
        }
    }
}
