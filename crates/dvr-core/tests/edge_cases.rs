//! Edge-case tests: behaviours off the happy path — descending loops,
//! NDM fallbacks, discovery aborts, store pressure, and degenerate
//! configurations.

use dvr_core::{DvrConfig, DvrEngine, VrEngine};
use sim_isa::{Asm, Reg, SparseMemory};
use sim_mem::{HierarchyConfig, MemoryHierarchy};
use sim_ooo::{CoreConfig, OooCore, RunaheadEngine};

fn run<E: RunaheadEngine>(
    prog: &sim_isa::Program,
    mem: &mut SparseMemory,
    engine: &mut E,
    max: u64,
) -> sim_ooo::CoreStats {
    let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
    let mut core = OooCore::new(CoreConfig::default());
    *core.run(prog, mem, &mut hier, engine, max).expect("run failed")
}

/// A descending loop: `for (i = n-1; i != 0; i--) { v=A[i]; w=B[v]; }`.
/// The stride is negative; DVR must still vectorize and prefetch.
#[test]
fn dvr_handles_negative_strides() {
    let mut asm = Asm::new();
    let (a, b, i, v, w) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    asm.li(a, 0x10_0000);
    asm.li(b, 0x80_0000);
    asm.li(i, 40_000);
    let top = asm.here();
    asm.ld8_idx(v, a, i, 3); // striding, stride -8
    asm.andi(v, v, 0xFFFF);
    asm.ld8_idx(w, b, v, 3); // dependent
    asm.addi(i, i, -1);
    asm.bnz(i, top);
    asm.halt();
    let prog = asm.finish().unwrap();

    let mut mem = SparseMemory::new();
    let mut x: u64 = 99;
    for k in 0..40_001u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
        mem.write_u64(0x10_0000 + 8 * k, x >> 30);
    }
    let mut e = DvrEngine::default();
    let stats = run(&prog, &mut mem, &mut e, 100_000);
    assert!(stats.committed >= 100_000);
    assert!(e.stats().episodes > 0, "DVR must trigger on a descending stride");
    assert!(e.stats().lane_loads > 500, "lanes must issue: {:?}", e.stats());
}

/// A loop body longer than the 512-instruction discovery budget: discovery
/// must abort cleanly (and keep aborting) without wedging the engine.
#[test]
fn discovery_aborts_on_giant_loop_bodies() {
    let mut asm = Asm::new();
    let (a, i, v) = (Reg::R1, Reg::R2, Reg::R3);
    asm.li(a, 0x10_0000);
    asm.li(i, 0);
    let top = asm.here();
    asm.ld8_idx(v, a, i, 3); // striding trigger
    asm.ld8_idx(v, a, v, 3); // dependent (so discovery stays interested)
    for _ in 0..600 {
        asm.addi(Reg::R5, Reg::R5, 1); // body far beyond the budget
    }
    asm.addi(i, i, 1);
    asm.jmp(top);
    let prog = asm.finish().unwrap();

    let mut mem = SparseMemory::new();
    for k in 0..4096u64 {
        mem.write_u64(0x10_0000 + 8 * k, k % 256);
    }
    let mut e = DvrEngine::default();
    let stats = run(&prog, &mut mem, &mut e, 50_000);
    assert!(stats.committed >= 50_000);
    assert!(e.stats().discovery_aborts > 0, "giant bodies must abort discovery");
    assert_eq!(e.stats().episodes, 0, "no spawn without completed discovery");
}

/// NDM with *no* outer striding load in range: falls back to the inner
/// bound instead of spawning nothing.
#[test]
fn ndm_falls_back_without_outer_stride() {
    // A short inner loop (bound 8) whose outer "loop" is irregular
    // (pointer-chased), so NDM's scan finds no outer striding load.
    let mut asm = Asm::new();
    let (ptr, a, b, i, n, v, w, c) =
        (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8);
    asm.li(ptr, 0x50_0000);
    asm.li(b, 0x80_0000);
    asm.li(n, 8);
    let outer = asm.here();
    asm.ld8(a, ptr, 0); // pointer chase: *not* a striding load
    asm.li(i, 0);
    let inner = asm.here();
    asm.ld8_idx(v, a, i, 3); // inner striding load (bound 8 < 64)
    asm.andi(v, v, 0xFFF);
    asm.ld8_idx(w, b, v, 3); // dependent
    asm.addi(i, i, 1);
    asm.slt(c, i, n);
    asm.bnz(c, inner);
    asm.ld8(ptr, ptr, 8); // next node
    asm.bnz(ptr, outer);
    asm.halt();
    let prog = asm.finish().unwrap();

    // Build a linked list of blocks, each with an 8-element array.
    let mut mem = SparseMemory::new();
    let mut node = 0x50_0000u64;
    let mut x: u64 = 5;
    for k in 0..2000u64 {
        let arr = 0x60_0000 + k * 64;
        for j in 0..8 {
            x = x.wrapping_mul(25214903917).wrapping_add(11);
            mem.write_u64(arr + 8 * j, x >> 40);
        }
        mem.write_u64(node, arr);
        let next = if k == 1999 { 0 } else { 0x50_0000 + (k + 1) * 16 };
        mem.write_u64(node + 8, next);
        node = next;
        if next == 0 {
            break;
        }
    }
    let mut e = DvrEngine::default();
    let stats = run(&prog, &mut mem, &mut e, 60_000);
    assert!(stats.committed >= 60_000);
    let s = e.stats();
    assert!(s.ndm_episodes > 0, "short inner loop must attempt NDM: {s:?}");
    // Fallback still prefetches the inner iterations it knows about.
    assert!(s.lane_loads > 0, "fallback must issue lanes: {s:?}");
}

/// A store-dominated kernel saturates the store queue; the engines must
/// not deadlock or corrupt results.
#[test]
fn store_pressure_is_survivable() {
    let mut asm = Asm::new();
    let (a, i, n, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    asm.li(a, 0x10_0000);
    asm.li(i, 0);
    asm.li(n, 50_000);
    let top = asm.here();
    for k in 0..8 {
        asm.st8_idx(i, a, i, 3);
        asm.addi(Reg::R5, Reg::R5, k);
    }
    asm.addi(i, i, 1);
    asm.slt(c, i, n);
    asm.bnz(c, top);
    asm.halt();
    let prog = asm.finish().unwrap();
    let mut mem = SparseMemory::new();
    let mut e = DvrEngine::default();
    let stats = run(&prog, &mut mem, &mut e, 40_000);
    assert!(stats.committed >= 40_000);
    assert!(stats.stores > 10_000);
}

/// Tiny instruction budgets are honored exactly by every engine.
#[test]
fn tiny_budgets_are_exact() {
    let mut asm = Asm::new();
    asm.li(Reg::R1, 0x10_0000);
    asm.li(Reg::R2, 0);
    let top = asm.here();
    asm.ld8_idx(Reg::R3, Reg::R1, Reg::R2, 3);
    asm.addi(Reg::R2, Reg::R2, 1);
    asm.jmp(top);
    let prog = asm.finish().unwrap();
    for budget in [1u64, 2, 7, 23] {
        let mut mem = SparseMemory::new();
        let mut e = VrEngine::default();
        let stats = run(&prog, &mut mem, &mut e, budget);
        assert!(
            stats.committed >= budget && stats.committed < budget + 5,
            "budget {budget} gave {}",
            stats.committed
        );
    }
}

/// 256-lane DVR issues roughly twice the per-episode coverage of 128-lane
/// on a long flat loop.
#[test]
fn wide_lanes_increase_per_episode_coverage() {
    let mut asm = Asm::new();
    let (a, b, i, n, v, w, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7);
    asm.li(a, 0x10_0000);
    asm.li(b, 0x100_0000);
    asm.li(i, 0);
    asm.li(n, 1 << 20);
    let top = asm.here();
    asm.ld8_idx(v, a, i, 3);
    asm.andi(v, v, 0xFFFFF);
    asm.ld8_idx(w, b, v, 3);
    asm.addi(i, i, 1);
    asm.slt(c, i, n);
    asm.bnz(c, top);
    asm.halt();
    let prog = asm.finish().unwrap();
    let mut mem = SparseMemory::new();
    let mut x: u64 = 3;
    for k in 0..100_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        mem.write_u64(0x10_0000 + 8 * k, x >> 20);
    }

    let lanes_per_episode = |max_lanes: usize| {
        let mut e = DvrEngine::new(DvrConfig { max_lanes, ..DvrConfig::default() });
        let mut m = mem.clone();
        run(&prog, &mut m, &mut e, 60_000);
        let s = e.stats();
        assert!(s.episodes > 0);
        s.lanes_spawned as f64 / s.episodes as f64
    };
    let narrow = lanes_per_episode(128);
    let wide = lanes_per_episode(256);
    assert!(
        wide > 1.5 * narrow,
        "256-lane episodes must cover much more: {wide:.0} vs {narrow:.0}"
    );
}
