//! Engine-level integration tests: each runahead technique attached to the
//! real core on real workloads, checking the paper's mechanism-level
//! behaviours (not just end speedups).

use dvr_core::{DvrConfig, DvrEngine, OracleEngine, PreEngine, VrEngine};
use sim_mem::{HierarchyConfig, MemoryHierarchy, PrefetchSource};
use sim_ooo::{CoreConfig, OooCore, RunaheadEngine};
use workloads::{Benchmark, GraphInput, SizeClass};

fn run_engine<E: RunaheadEngine>(
    b: Benchmark,
    g: Option<GraphInput>,
    engine: &mut E,
    instrs: u64,
) -> (sim_ooo::CoreStats, sim_mem::MemStats) {
    let wl = b.build(g, SizeClass::Small, 42);
    let mut mem = wl.mem.clone();
    let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
    let mut core = OooCore::new(CoreConfig::default());
    let stats = *core.run(&wl.prog, &mut mem, &mut hier, engine, instrs).expect("run failed");
    (stats, hier.stats().clone())
}

#[test]
fn dvr_discovery_finds_dependent_chains_on_camel() {
    let mut e = DvrEngine::new(DvrConfig::default());
    run_engine(Benchmark::Camel, None, &mut e, 60_000);
    let s = e.stats();
    assert!(s.episodes > 10, "expected steady episodes, got {}", s.episodes);
    assert_eq!(s.ndm_episodes, 0, "Camel's flat loop must not use NDM");
    assert_eq!(s.no_dependent_chain, 0, "Camel always has a dependent chain");
    assert!(s.lanes_spawned > 1000);
}

#[test]
fn dvr_coverage_prevents_refetch_floods() {
    let mut e = DvrEngine::new(DvrConfig::default());
    let (core, _) = run_engine(Benchmark::Camel, None, &mut e, 60_000);
    let s = e.stats();
    // Lane loads should be within a small factor of the demand loads the
    // main thread actually performs (3 per 35-instr iteration).
    let approx_demand_loads = core.committed / 35 * 3;
    assert!(
        s.lane_loads < 4 * approx_demand_loads,
        "coverage tracking failed: {} lane loads for ~{} demand loads",
        s.lane_loads,
        approx_demand_loads
    );
}

#[test]
fn dvr_innermost_switch_happens_on_nested_loops() {
    // bfs has an outer striding load (the worklist) and an inner one (the
    // edge list): when discovery starts from the outer one, it must switch
    // to the more-inner stride at least sometimes.
    let mut e = DvrEngine::new(DvrConfig::default());
    run_engine(Benchmark::Bfs, Some(GraphInput::Kr), &mut e, 80_000);
    assert!(
        e.stats().innermost_switches > 0,
        "nested loops must exercise innermost detection: {:?}",
        e.stats()
    );
}

#[test]
fn ndm_gathers_iterations_across_outer_loops() {
    // UR graphs have uniformly short inner loops: NDM must engage and must
    // spawn more lanes than the inner bound alone would allow.
    let mut e = DvrEngine::new(DvrConfig::default());
    run_engine(Benchmark::Pr, Some(GraphInput::Ur), &mut e, 80_000);
    let s = e.stats();
    assert!(s.ndm_episodes > 0, "NDM must engage on UR: {s:?}");
    assert!(
        s.lanes_spawned / s.episodes.max(1) > 16,
        "NDM should gather many lanes per episode: {s:?}"
    );
}

#[test]
fn offload_ablation_overfetches_relative_to_full_dvr() {
    let mut full = DvrEngine::new(DvrConfig::default());
    let (_, mem_full) = run_engine(Benchmark::Bfs, Some(GraphInput::Ur), &mut full, 80_000);
    let mut off = DvrEngine::new(DvrConfig::offload_only());
    let (_, mem_off) = run_engine(Benchmark::Bfs, Some(GraphInput::Ur), &mut off, 80_000);
    let acc_full = mem_full.accuracy(PrefetchSource::Dvr).unwrap_or(1.0);
    let acc_off = mem_off.accuracy(PrefetchSource::Dvr).unwrap_or(1.0);
    assert!(
        acc_full > acc_off,
        "Discovery Mode must improve accuracy on short loops: full {acc_full:.2} vs offload {acc_off:.2}"
    );
}

#[test]
fn vr_only_runs_on_full_window_stalls() {
    let mut e = VrEngine::default();
    let (core, _) = run_engine(Benchmark::Hj8, None, &mut e, 60_000);
    let s = *e.stats();
    assert!(s.episodes > 0, "HJ8 must stall and trigger VR");
    assert!(
        s.episodes <= core.full_rob_stall_events,
        "VR can only trigger on stall episodes ({} > {})",
        s.episodes,
        core.full_rob_stall_events
    );
    assert!(s.delayed_termination_cycles > 0);
}

#[test]
fn vr_loses_divergent_lanes_dvr_does_not() {
    let mut vr = VrEngine::default();
    run_engine(Benchmark::Kangaroo, None, &mut vr, 60_000);
    let mut dvr = DvrEngine::new(DvrConfig::default());
    run_engine(Benchmark::Kangaroo, None, &mut dvr, 60_000);
    // Kangaroo branches on random data: VR episodes (if any) mask lanes
    // off; DVR reconverges. When VR never triggers (mispredict-bound), DVR
    // must still diverge and cover.
    if vr.stats().episodes > 0 {
        assert!(vr.stats().lanes_lost > 0, "VR must lose lanes on Kangaroo");
    }
    assert!(dvr.stats().diverged_episodes > 0, "DVR must observe divergence");
}

#[test]
fn pre_respects_interval_and_width() {
    let mut e = PreEngine::default();
    run_engine(Benchmark::Camel, None, &mut e, 60_000);
    let s = *e.stats();
    assert!(s.episodes > 0);
    // Per-episode instruction count is bounded by the configured budget.
    assert!(
        s.instructions <= s.episodes * 320,
        "{} instructions over {} episodes exceeds the resource bound",
        s.instructions,
        s.episodes
    );
}

#[test]
fn oracle_hides_misses_only() {
    let mut e = OracleEngine::new();
    let (_, mem) = run_engine(Benchmark::RandomAccess, None, &mut e, 60_000);
    let s = *e.stats();
    assert!(s.hidden_misses > 0);
    assert!(s.natural_hits > 0);
    // The Oracle performs normal accounting: demand loads recorded.
    assert!(mem.demand_loads > 0);
}

#[test]
fn engines_do_not_break_short_programs() {
    // Degenerate program: no loops, no strides — every engine must be a
    // no-op and the program must still complete.
    let mut asm = sim_isa::Asm::new();
    asm.li(sim_isa::Reg::R1, 5);
    asm.addi(sim_isa::Reg::R1, sim_isa::Reg::R1, 1);
    asm.halt();
    let prog = asm.finish().unwrap();

    fn drive<E: RunaheadEngine>(prog: &sim_isa::Program, e: &mut E) -> u64 {
        let mut mem = sim_isa::SparseMemory::new();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let mut core = OooCore::new(CoreConfig::default());
        core.run(prog, &mut mem, &mut hier, e, 1000).expect("run failed").committed
    }
    assert_eq!(drive(&prog, &mut DvrEngine::default()), 3);
    assert_eq!(drive(&prog, &mut VrEngine::default()), 3);
    assert_eq!(drive(&prog, &mut PreEngine::default()), 3);
    assert_eq!(drive(&prog, &mut OracleEngine::new()), 3);
}
