//! `dvrsim` — run a benchmark (or your own `.s` kernel) on the simulator.
//!
//! ```text
//! dvrsim --bench bfs --input kr --technique dvr
//! dvrsim --bench camel --technique all --instrs 300000 --size paper
//! dvrsim --asm kernel.s --technique dvr
//! dvrsim --bench bfs --sanitize
//! dvrsim lint --all
//! dvrsim lint --asm kernel.s
//! dvrsim --list
//! ```

use std::process::ExitCode;

use dvr_sim::{
    evaluate_mix, measure_emitted, measure_periods_via_workers, parallel_map, sample_emit,
    sampled_report_from, simulate, simulate_mix, FaultConfig, MixSpec, Placement, SampleConfig,
    SimConfig, SimReport, Technique,
};
use sim_sample::merge_periods;
use workloads::{gather_attack, Benchmark, GraphInput, SizeClass, Workload};

struct Options {
    bench: Option<Benchmark>,
    asm_path: Option<String>,
    input: Option<GraphInput>,
    techniques: Vec<Technique>,
    size: SizeClass,
    instrs: u64,
    seed: u64,
    rob: Option<usize>,
    inject: Option<FaultConfig>,
    watchdog: Option<u64>,
    sanitize: bool,
    verbose: bool,
    json: bool,
}

const USAGE: &str = "\
usage: dvrsim [--list] (--bench NAME | --asm FILE.s) [options]
       dvrsim lint (--all | --bench NAME | --asm FILE.s) [--bounds] [--size S] [--seed N]
                     [--verbose] [--json]
       dvrsim audit (--all | --bench NAME) [--size S] [--seed N] [--instrs N] [--json]
       dvrsim lint-taint (--all | --bench NAME | --attack | --asm FILE.s) [--size S]
                     [--seed N] [--json]
       dvrsim leak-audit (--all | --bench NAME | --attack) [--size S] [--seed N]
                     [--instrs N] [--json]
       dvrsim bounds-audit (--all | --bench NAME | --attack | --oob) [--size S] [--seed N]
                     [--instrs N] [--json]
       dvrsim sample (--all | --bench NAME) [--technique T] [--size S] [--instrs N]
                     [--interval N] [--warmup N] [--period N] [--placement systematic|random]
                     [--sample-seed N] [--no-exact] [--threads N] [--jobs N] [--json]
       dvrsim sample-worker --bench NAME --technique T --checkpoint FILE.ckpt
                     [--input G] [--size S] [--seed N] [--instrs N] [--interval N]
                     [--warmup N] [--period N] [--placement P] [--sample-seed N] [--json]
       dvrsim mix (--spec LIST | --cores N) [--technique T] [--size S] [--seed N]
                  [--instrs N] [--threads N] [--solo] [--sanitize] [--json]
       dvrsim sweep [--bench LIST|all|gap|hpcdb] [--input LIST|all] [--technique T]
                    [--size S] [--seed N] [--instrs N] [--out DIR] [--cache DIR]
                    [--no-cache] [--jobs N] [--timeout-ms N] [--retries N]
                    [--backoff-ms N] [--backoff-seed N] [--keep-going] [--gc]
                    [--inject-sweep SPEC] [--json]
       dvrsim sweep-worker CELL-KEY
       dvrsim serve --socket PATH [--cache DIR | --no-cache]

options:
  --bench NAME          benchmark (see --list)
  --asm FILE.s          run a textual-assembly kernel instead
  --input kr|ljn|ork|tw|ur   GAP graph input        (default: kr)
  --technique NAME      ooo|pre|imp|vr|dvr|dvr-offload|dvr-discovery|oracle|all
                                                    (default: all)
  --size test|small|paper    input scale            (default: small)
  --instrs N            ROI length                  (default: 200000)
  --seed N              synthetic-input seed        (default: 42)
  --rob N               override ROB size
  --inject SPEC         deterministic fault injection; SPEC is comma-separated
                        key=value pairs: seed=N, drop=N (1-in-N demand misses
                        never complete), delay=N (1-in-N DRAM reads delayed),
                        delay-cycles=N, poison=N (1-in-N prefetches dropped),
                        fatal=N (fail on the Nth demand access)
  --watchdog N          cycles without a commit before the run is declared
                        deadlocked (0 disables; default 2000000)
  --sanitize            run the cycle-model invariant sanitizer (summary on
                        stderr; stdout/JSON output is byte-identical)
  --verbose             per-run engine detail
  --json                emit one JSON object per run (stdout)

the `lint` subcommand statically analyzes assembled programs (CFG, dataflow,
loop classification) instead of simulating; `lint --all` checks every
benchmark in the suite. With --bounds it instead runs the interval-based
bounds verifier: every reachable load and store is checked against the
program's declared `.region` footprint, and unprovable or out-of-bounds
accesses are reported (workload memory feeds read-only content bounds).

the `audit` subcommand diffs the static DVR coverage prediction against a
traced simulation's actual Discovery decisions and classifies every
divergence; unexplained divergences fail the audit.

the `lint-taint` subcommand runs the secret-taint information-flow pass:
programs declare secret ranges with the `.secret ADDR LEN` directive, and
every secret-dependent branch, secret-addressed load, and speculative
gather gadget (a secret-addressed dependent load the DVR coverage
predictor expects to vectorize) is reported. --attack lints the bundled
secret-dependent-gather attack kernel.

the `leak-audit` subcommand diffs those static leak predictions against
the dynamic taint oracle: simulations under OoO/VR/DVR with the
hierarchy's secret-taint fill log armed, plus an architectural replay.
`--all` audits every benchmark plus the attack kernel; a PASS means the
static and dynamic sides agree (for the attack kernel both sides agree it
*leaks*), and unexplained divergences fail the audit.

the `bounds-audit` subcommand diffs the static bounds claims against two
dynamic observers: an architectural replay with a per-pc extent tracker
(any access escaping its inferred interval is a soundness bug), and
simulations under OoO/VR/DVR with the hierarchy's speculative-extent map
armed. `--all` audits every benchmark plus the attack kernel; `--oob`
audits the bundled out-of-bounds gather kernel, whose static errors the
dynamic side confirms. Unexplained divergences and static errors fail the
command.

the `sample` subcommand runs checkpoint-parallel sampled simulation: one
functional fast-forward pass per benchmark emits a checkpoint at every
period (shared across techniques), then each (warmup + measured) interval
is measured independently — fanned across --threads in-process workers,
or across --jobs spawned `dvrsim sample-worker` processes when --jobs > 0.
Results merge deterministically, so output is byte-identical (modulo
wall-clock fields) for every --threads/--jobs combination. Unless
--no-exact, an exact run of the same region is compared; a sampled mean
whose 95% confidence interval misses the exact IPC fails the command.

the `sample-worker` subcommand is the internal worker of `sample --jobs`:
it measures one period from a checkpoint file and prints one integer-JSON
result line on stdout.

the `mix` subcommand runs a multi-programmed multi-core simulation: one
out-of-order core per mix entry, private L1/L2 each, one shared L3 and one
shared DRAM bandwidth calendar, all driven by the deterministic event
scheduler. --spec takes comma-separated `bench[/input][:technique]`
entries (e.g. `bfs/UR:dvr,NAS-IS:ooo`); --cores N instead rotates the
13-benchmark suite. --solo also runs each program alone on a private
hierarchy and reports system throughput (STP, sum of normalized progress)
and fairness (harmonic-mean slowdown); --threads parallelizes only those
solo baselines — the mix itself is single-threaded and byte-identical for
every --threads value. --sanitize extends the invariant sweeps to the
shared L3's prefetch-provenance state (summary on stderr; stdout stays
byte-identical).

the `sweep` subcommand runs a crash-safe grid of (benchmark, input,
technique) cells: every settled cell is appended to a write-ahead journal
(`<out>/journal.dvrj`), so a killed sweep rerun with the same flags resumes
exactly where it stopped and produces a byte-identical `summary.json`.
Results are also stored in a content-addressed cache (`--cache`, default
`.dvr-cache`) keyed by program bytes, canonical config, and code version;
corrupt entries are quarantined and recomputed, never served. With
--jobs > 0 cells run in supervised `sweep-worker` processes with per-cell
--timeout-ms, --retries, and exponential backoff seeded by --backoff-seed.
Without --keep-going the first failed cell stops the sweep (after
journaling it); with it, failures land in summary.json as typed outcomes.
--gc removes cache entries not reachable from the selected grid.
--inject-sweep takes kill=N,hang=N,flip=N,trunc=N,trunc-bytes=N,abort=N
to deterministically injure the Nth worker/cache-write/journal-append.

the `serve` subcommand keeps one process resident on a Unix socket; each
line `run CELL-KEY` replies with one JSON result (served from the cache
when possible), `stats`/`ping`/`shutdown` manage the service.

exit status: 0 if every run completed (lint: no errors; lint-taint: no
gather gadgets; audit/leak-audit: no unexplained divergences;
bounds-audit: no unexplained divergences and no static bounds errors;
sample: every CI contains the exact IPC), 1 otherwise.
";

/// Shared rejection for an unrecognized flag in any subcommand's argument
/// loop: one message shape, one exit code.
fn unknown_flag(cmd: &str, flag: &str) -> ExitCode {
    eprintln!("error: unknown {cmd} option '{flag}' (see 'dvrsim --help')");
    ExitCode::from(2)
}

fn parse_inject(spec: &str) -> Result<FaultConfig, String> {
    let mut f = FaultConfig::default();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) =
            part.split_once('=').ok_or(format!("bad --inject entry '{part}' (want key=value)"))?;
        let n: u64 = v.parse().map_err(|e| format!("--inject {k}: {e}"))?;
        match k {
            "seed" => f.seed = n,
            "drop" => f.drop_demand_1_in = n,
            "delay" => f.delay_dram_1_in = n,
            "delay-cycles" => f.delay_cycles = n,
            "poison" => f.poison_prefetch_1_in = n,
            "fatal" => f.fatal_at_demand_access = n,
            _ => {
                return Err(format!(
                    "unknown --inject key '{k}' (seed, drop, delay, delay-cycles, poison, fatal)"
                ))
            }
        }
    }
    Ok(f)
}

fn parse_technique(s: &str) -> Option<Vec<Technique>> {
    Some(match s {
        "ooo" | "baseline" => vec![Technique::Baseline],
        "pre" => vec![Technique::Pre],
        "imp" => vec![Technique::Imp],
        "vr" => vec![Technique::Vr],
        "dvr" => vec![Technique::Dvr],
        "dvr-offload" => vec![Technique::DvrOffload],
        "dvr-discovery" => vec![Technique::DvrDiscovery],
        "oracle" => vec![Technique::Oracle],
        "all" => {
            let mut v = vec![Technique::Baseline];
            v.extend(Technique::FIG7);
            v
        }
        _ => return None,
    })
}

/// The CLI spelling of a technique — the inverse of [`parse_technique`]
/// for single techniques, used to build `sample-worker` command lines.
fn technique_flag(t: Technique) -> &'static str {
    match t {
        Technique::Baseline => "ooo",
        Technique::Pre => "pre",
        Technique::Imp => "imp",
        Technique::Vr => "vr",
        Technique::Dvr => "dvr",
        Technique::DvrOffload => "dvr-offload",
        Technique::DvrDiscovery => "dvr-discovery",
        Technique::Oracle => "oracle",
    }
}

fn size_flag(s: SizeClass) -> &'static str {
    match s {
        SizeClass::Test => "test",
        SizeClass::Small => "small",
        SizeClass::Paper => "paper",
    }
}

fn parse_bench(s: &str) -> Option<Benchmark> {
    Benchmark::ALL.iter().copied().find(|b| b.name().eq_ignore_ascii_case(s))
}

fn parse_input(s: &str) -> Option<GraphInput> {
    GraphInput::ALL.iter().copied().find(|g| g.name().eq_ignore_ascii_case(s))
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        bench: None,
        asm_path: None,
        input: None,
        techniques: parse_technique("all").expect("static"),
        size: SizeClass::Small,
        instrs: 200_000,
        seed: 42,
        rob: None,
        inject: None,
        watchdog: None,
        sanitize: false,
        verbose: false,
        json: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("benchmarks:");
                for b in Benchmark::ALL {
                    let inputs = if b.is_gap() { "  (takes --input)" } else { "" };
                    println!("  {}{}", b.name(), inputs);
                }
                std::process::exit(0);
            }
            "--bench" => {
                let v = value(&mut i)?;
                o.bench = Some(parse_bench(&v).ok_or(format!("unknown benchmark '{v}'"))?);
            }
            "--asm" => o.asm_path = Some(value(&mut i)?),
            "--input" => {
                let v = value(&mut i)?;
                o.input = Some(parse_input(&v).ok_or(format!("unknown input '{v}'"))?);
            }
            "--technique" => {
                let v = value(&mut i)?;
                o.techniques = parse_technique(&v).ok_or(format!("unknown technique '{v}'"))?;
            }
            "--size" => {
                o.size = match value(&mut i)?.as_str() {
                    "test" => SizeClass::Test,
                    "small" => SizeClass::Small,
                    "paper" => SizeClass::Paper,
                    v => return Err(format!("unknown size '{v}'")),
                };
            }
            "--instrs" => o.instrs = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => o.seed = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--rob" => o.rob = Some(value(&mut i)?.parse().map_err(|e| format!("{e}"))?),
            "--inject" => o.inject = Some(parse_inject(&value(&mut i)?)?),
            "--watchdog" => o.watchdog = Some(value(&mut i)?.parse().map_err(|e| format!("{e}"))?),
            "--sanitize" => o.sanitize = true,
            "--verbose" => o.verbose = true,
            "--json" => o.json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if o.bench.is_none() && o.asm_path.is_none() {
        return Err("one of --bench or --asm is required (try --list)".to_string());
    }
    Ok(o)
}

fn load_workload(o: &Options) -> Result<Workload, String> {
    if let Some(path) = &o.asm_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let prog = sim_isa::parse_program(&text).map_err(|e| format!("{path}: {e}"))?;
        return Ok(Workload {
            name: path.clone(),
            prog,
            mem: sim_isa::SparseMemory::new(),
            description: "user kernel (zero-initialized memory)".to_string(),
            regions: vec![],
        });
    }
    let b = o.bench.expect("validated in parse_args");
    Ok(b.build(o.input, o.size, o.seed))
}

fn print_report(r: &SimReport, base_ipc: Option<f64>, verbose: bool) {
    let speedup = base_ipc.map(|b| format!("{:>7.2}x", r.ipc / b)).unwrap_or_default();
    println!(
        "{:14} IPC {:>7.3}{} | MLP {:>5.2} | {:>5.1} MPKI | DRAM {:>8} | stall {:>4.0}% | {:>5.2} Mi/s",
        r.technique.name(),
        r.ipc,
        speedup,
        r.mlp,
        r.llc_mpki(),
        r.mem.dram_reads(),
        100.0 * r.core.rob_full_stall_fraction(),
        r.host_minstr_per_sec(),
    );
    if verbose && !r.engine.detail.is_empty() {
        println!("               {}", r.engine.detail);
    }
    if verbose {
        if let Some(t) = r.timeliness() {
            println!(
                "               timeliness L1 {:.0}% / L2 {:.0}% / L3 {:.0}% / off-chip {:.0}%",
                100.0 * t[0],
                100.0 * t[1],
                100.0 * t[2],
                100.0 * t[3]
            );
        }
    }
}

/// `dvrsim lint`: static analysis of assembled programs — CFG + dataflow
/// diagnostics plus the Discovery-Mode loop-classification report.
fn lint_main(args: &[String]) -> ExitCode {
    let mut all = false;
    let mut bench: Option<Benchmark> = None;
    let mut asm: Option<String> = None;
    let mut size = SizeClass::Test;
    let mut seed = 42u64;
    let mut bounds = false;
    let mut verbose = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--bounds" => bounds = true,
            "--verbose" => verbose = true,
            "--json" => json = true,
            "--bench" | "--asm" | "--size" | "--seed" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--asm" => asm = Some(v),
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    _ => match v.parse() {
                        Ok(n) => seed = n,
                        Err(e) => {
                            eprintln!("error: --seed: {e}");
                            return ExitCode::from(2);
                        }
                    },
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("lint", other),
        }
        i += 1;
    }

    // Programs carry their initial memory image when built from the suite:
    // the bounds verifier scans read-only regions for content bounds. A
    // user .s kernel lints without an image (sound, less precise).
    let programs: Vec<(String, sim_isa::Program, Option<sim_isa::SparseMemory>)> = if all {
        Benchmark::ALL
            .iter()
            .map(|b| {
                let wl = b.build(None, size, seed);
                (wl.name, wl.prog, Some(wl.mem))
            })
            .collect()
    } else if let Some(b) = bench {
        let wl = b.build(None, size, seed);
        vec![(wl.name, wl.prog, Some(wl.mem))]
    } else if let Some(path) = asm {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match sim_isa::parse_program(&text) {
            Ok(prog) => vec![(path, prog, None)],
            Err(e) => {
                eprintln!("{path}: error[parse]: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("error: lint needs --all, --bench NAME, or --asm FILE.s\n\n{USAGE}");
        return ExitCode::from(2);
    };

    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for (name, prog, mem) in &programs {
        if bounds {
            let report = sim_lint::check_bounds(prog, mem.as_ref());
            if json {
                println!("{}", report.to_json(name, Some(prog)));
            } else {
                println!(
                    "{name}: {} memory ops, {} proven, {} errors, {} warnings",
                    report.ops.len(),
                    report.proven(),
                    report.errors(),
                    report.warnings()
                );
                for d in &report.diags {
                    println!("  {}", d.render(Some(prog)));
                }
                if verbose {
                    for o in &report.ops {
                        println!(
                            "  pc={} {} w={} addr={} {}",
                            o.pc,
                            if o.is_load { "load" } else { "store" },
                            o.width,
                            o.addr,
                            o.verdict
                        );
                    }
                }
            }
            total_errors += report.errors();
            total_warnings += report.warnings();
            continue;
        }
        let report = sim_lint::analyze(prog);
        if json {
            println!("{}", report.to_json(name, Some(prog)));
        } else {
            println!(
                "{name}: {} instrs, {} loops, {} errors, {} warnings",
                prog.len(),
                report.loops.len(),
                report.errors(),
                report.warnings()
            );
            for d in &report.diags {
                println!("  {}", d.render(Some(prog)));
            }
            if verbose || !report.loops.is_empty() {
                for l in &report.loops {
                    println!("  {}", l.describe(Some(prog)));
                }
            }
        }
        total_errors += report.errors();
        total_warnings += report.warnings();
    }
    if !json {
        println!(
            "lint{}: {} program{} checked, {total_errors} errors, {total_warnings} warnings",
            if bounds { " --bounds" } else { "" },
            programs.len(),
            if programs.len() == 1 { "" } else { "s" }
        );
    }
    if total_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dvrsim bounds-audit`: the static-vs-dynamic bounds audit — verify the
/// program's accesses against its declared regions statically, replay with
/// the architectural extent tracker, run the speculative-extent oracle
/// under OoO/VR/DVR, and diff the views.
fn bounds_audit_main(args: &[String]) -> ExitCode {
    let mut all = false;
    let mut attack = false;
    let mut oob = false;
    let mut bench: Option<Benchmark> = None;
    let mut size = SizeClass::Test;
    let mut seed = 42u64;
    let mut instrs = 60_000u64;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--attack" => attack = true,
            "--oob" => oob = true,
            "--json" => json = true,
            "--bench" | "--size" | "--seed" | "--instrs" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--seed" => match v.parse() {
                        Ok(n) => seed = n,
                        Err(e) => {
                            eprintln!("error: --seed: {e}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => match v.parse() {
                        Ok(n) => instrs = n,
                        Err(e) => {
                            eprintln!("error: --instrs: {e}");
                            return ExitCode::from(2);
                        }
                    },
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("bounds-audit", other),
        }
        i += 1;
    }
    if !all && !attack && !oob && bench.is_none() {
        eprintln!("error: bounds-audit needs --all, --bench NAME, --attack, or --oob\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut reports = Vec::new();
    let benches: Vec<Benchmark> =
        if all { Benchmark::ALL.to_vec() } else { bench.into_iter().collect() };
    for b in &benches {
        reports.push(dvr_sim::bounds_audit_benchmark(*b, size, seed, instrs));
    }
    if attack || all {
        reports.push(dvr_sim::bounds_audit_attack(size, seed, instrs));
    }
    if oob {
        reports.push(dvr_sim::bounds_audit_oob(size, seed, instrs));
    }

    let mut unexplained = 0usize;
    let mut total = 0usize;
    let mut static_errors = 0usize;
    let mut confirmed = 0usize;
    for r in &reports {
        if json {
            println!("{}", r.to_json());
        } else {
            print!("{}", r.render());
        }
        total += r.divergences.len();
        unexplained += r.unexplained();
        static_errors += r.static_errors();
        confirmed += r.confirmed_oob();
    }
    if !json {
        println!(
            "bounds-audit: {} workload{} checked, {total} divergences, {unexplained} unexplained, \
             {static_errors} static errors ({confirmed} dynamically confirmed)",
            reports.len(),
            if reports.len() == 1 { "" } else { "s" }
        );
    }
    if unexplained > 0 || static_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dvrsim audit`: static-vs-dynamic Discovery audit — predict DVR's
/// coverage statically, trace what the engine actually did, and diff.
fn audit_main(args: &[String]) -> ExitCode {
    let mut all = false;
    let mut bench: Option<Benchmark> = None;
    let mut size = SizeClass::Test;
    let mut seed = 42u64;
    let mut instrs = 60_000u64;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--bench" | "--size" | "--seed" | "--instrs" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--seed" => match v.parse() {
                        Ok(n) => seed = n,
                        Err(e) => {
                            eprintln!("error: --seed: {e}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => match v.parse() {
                        Ok(n) => instrs = n,
                        Err(e) => {
                            eprintln!("error: --instrs: {e}");
                            return ExitCode::from(2);
                        }
                    },
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("audit", other),
        }
        i += 1;
    }
    let benches: Vec<Benchmark> = if all {
        Benchmark::ALL.to_vec()
    } else if let Some(b) = bench {
        vec![b]
    } else {
        eprintln!("error: audit needs --all or --bench NAME\n\n{USAGE}");
        return ExitCode::from(2);
    };

    let mut unexplained = 0usize;
    let mut total = 0usize;
    for b in &benches {
        let r = dvr_sim::audit_benchmark(*b, size, seed, instrs);
        if json {
            println!("{}", r.to_json());
        } else {
            print!("{}", r.render());
        }
        total += r.divergences.len();
        unexplained += r.unexplained();
    }
    if !json {
        println!(
            "audit: {} benchmark{} checked, {total} divergences, {unexplained} unexplained",
            benches.len(),
            if benches.len() == 1 { "" } else { "s" }
        );
    }
    if unexplained > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dvrsim lint-taint`: the secret-taint information-flow pass — report
/// every secret-dependent branch, secret-addressed load, and speculative
/// gather gadget in a program with `.secret` declarations.
fn lint_taint_main(args: &[String]) -> ExitCode {
    let mut all = false;
    let mut attack = false;
    let mut bench: Option<Benchmark> = None;
    let mut asm: Option<String> = None;
    let mut size = SizeClass::Test;
    let mut seed = 42u64;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--attack" => attack = true,
            "--json" => json = true,
            "--bench" | "--asm" | "--size" | "--seed" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--asm" => asm = Some(v),
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    _ => match v.parse() {
                        Ok(n) => seed = n,
                        Err(e) => {
                            eprintln!("error: --seed: {e}");
                            return ExitCode::from(2);
                        }
                    },
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("lint-taint", other),
        }
        i += 1;
    }

    let mut programs: Vec<(String, sim_isa::Program)> = Vec::new();
    if all {
        for b in Benchmark::ALL {
            let wl = b.build(None, size, seed);
            programs.push((wl.name, wl.prog));
        }
    } else if let Some(b) = bench {
        let wl = b.build(None, size, seed);
        programs.push((wl.name, wl.prog));
    } else if let Some(path) = &asm {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match sim_isa::parse_program(&text) {
            Ok(prog) => programs.push((path.clone(), prog)),
            Err(e) => {
                eprintln!("{path}: error[parse]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if attack || all {
        let wl = gather_attack(size, seed);
        programs.push((wl.name, wl.prog));
    }
    if programs.is_empty() {
        eprintln!("error: lint-taint needs --all, --bench NAME, --attack, or --asm FILE.s\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut total_gadgets = 0usize;
    let mut total_warnings = 0usize;
    for (name, prog) in &programs {
        let r = sim_lint::analyze_taint(prog);
        if json {
            println!("{}", r.to_json(name, Some(prog)));
        } else {
            println!(
                "{name}: {} secret sources, {} gadgets, {} warnings",
                r.sources.len(),
                r.errors(),
                r.warnings()
            );
            for d in &r.leaks {
                println!("  {}", d.render(Some(prog)));
            }
        }
        total_gadgets += r.errors();
        total_warnings += r.warnings();
    }
    if !json {
        println!(
            "lint-taint: {} program{} checked, {total_gadgets} gadgets, \
             {total_warnings} warnings",
            programs.len(),
            if programs.len() == 1 { "" } else { "s" }
        );
    }
    if total_gadgets > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dvrsim leak-audit`: the static-vs-dynamic secret-leakage audit — lint
/// the program for speculative leaks, run the dynamic taint oracle under
/// OoO/VR/DVR plus an architectural replay, and diff the views.
fn leak_audit_main(args: &[String]) -> ExitCode {
    let mut all = false;
    let mut attack = false;
    let mut bench: Option<Benchmark> = None;
    let mut size = SizeClass::Test;
    let mut seed = 42u64;
    let mut instrs = 60_000u64;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--attack" => attack = true,
            "--json" => json = true,
            "--bench" | "--size" | "--seed" | "--instrs" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--seed" => match v.parse() {
                        Ok(n) => seed = n,
                        Err(e) => {
                            eprintln!("error: --seed: {e}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => match v.parse() {
                        Ok(n) => instrs = n,
                        Err(e) => {
                            eprintln!("error: --instrs: {e}");
                            return ExitCode::from(2);
                        }
                    },
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("leak-audit", other),
        }
        i += 1;
    }
    if !all && !attack && bench.is_none() {
        eprintln!("error: leak-audit needs --all, --bench NAME, or --attack\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut reports = Vec::new();
    let benches: Vec<Benchmark> =
        if all { Benchmark::ALL.to_vec() } else { bench.into_iter().collect() };
    for b in &benches {
        reports.push(dvr_sim::leak_audit_benchmark(*b, size, seed, instrs));
    }
    if attack || all {
        reports.push(dvr_sim::leak_audit_attack(size, seed, instrs));
    }

    let mut unexplained = 0usize;
    let mut total = 0usize;
    let mut confirmed = 0usize;
    for r in &reports {
        if json {
            println!("{}", r.to_json());
        } else {
            print!("{}", r.render());
        }
        total += r.divergences.len();
        unexplained += r.unexplained();
        confirmed += r.confirmed_gadgets();
    }
    if !json {
        println!(
            "leak-audit: {} workload{} checked, {total} divergences, {unexplained} unexplained, \
             {confirmed} gadgets dynamically confirmed",
            reports.len(),
            if reports.len() == 1 { "" } else { "s" }
        );
    }
    if unexplained > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `dvrsim sample`: checkpointed sampled simulation — functional
/// fast-forward with warming between seeded detailed intervals, reported
/// with a 95% confidence interval and (by default) validated against an
/// exact run of the same region.
fn sample_main(args: &[String]) -> ExitCode {
    let mut all = false;
    let mut bench: Option<Benchmark> = None;
    let mut input: Option<GraphInput> = None;
    let mut techniques = vec![Technique::Baseline];
    let mut size = SizeClass::Small;
    let mut seed = 42u64;
    let mut instrs = 200_000u64;
    let mut scfg = SampleConfig::default();
    let mut no_exact = false;
    let mut json = false;
    let mut threads = 1usize;
    let mut jobs = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--no-exact" => no_exact = true,
            "--json" => json = true,
            "--bench" | "--input" | "--technique" | "--size" | "--seed" | "--instrs"
            | "--interval" | "--warmup" | "--period" | "--placement" | "--sample-seed"
            | "--threads" | "--jobs" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                let parse_u64 = |flag: &str, v: &str| -> Result<u64, ExitCode> {
                    v.parse().map_err(|e| {
                        eprintln!("error: {flag}: {e}");
                        ExitCode::from(2)
                    })
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--input" => match parse_input(&v) {
                        Some(g) => input = Some(g),
                        None => {
                            eprintln!("error: unknown input '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--technique" => match parse_technique(&v) {
                        Some(t) => techniques = t,
                        None => {
                            eprintln!("error: unknown technique '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--placement" => {
                        scfg.placement = match v.as_str() {
                            "systematic" => Placement::Systematic,
                            "random" => Placement::Random,
                            _ => {
                                eprintln!("error: unknown placement '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    flag => {
                        let n = match parse_u64(flag, &v) {
                            Ok(n) => n,
                            Err(code) => return code,
                        };
                        match flag {
                            "--seed" => seed = n,
                            "--instrs" => instrs = n,
                            "--interval" => scfg.interval = n,
                            "--warmup" => scfg.warmup = n,
                            "--period" => scfg.period = n,
                            "--sample-seed" => scfg.seed = n,
                            "--threads" => threads = n as usize,
                            "--jobs" => jobs = n as usize,
                            _ => unreachable!("covered by the outer match"),
                        }
                    }
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("sample", other),
        }
        i += 1;
    }
    let benches: Vec<Benchmark> = if all {
        Benchmark::ALL.to_vec()
    } else if let Some(b) = bench {
        vec![b]
    } else {
        eprintln!("error: sample needs --all or --bench NAME (see 'dvrsim --help')");
        return ExitCode::from(2);
    };
    if let Err(e) = scfg.with_max_instructions(instrs).validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    // Sampled runs: the functional fast-forward pass is paid ONCE per
    // benchmark — its emitted checkpoints seed the measure phase of every
    // technique — and each technique's periods are measured either on
    // in-process worker threads (--threads) or spawned sample-worker
    // processes (--jobs > 0). Both paths merge deterministically, so the
    // reports are byte-identical modulo wall-clock fields.
    let mut cells: Vec<(Benchmark, Technique)> = Vec::new();
    let mut sampled_reports: Vec<SimReport> = Vec::new();
    let scratch_root = std::env::temp_dir().join(format!("dvrsim-sample-{}", std::process::id()));
    for b in &benches {
        let wl = b.build(b.is_gap().then(|| input.unwrap_or(GraphInput::Kr)), size, seed);
        let cfg0 = SimConfig::new(techniques[0]).with_max_instructions(instrs);
        let t_emit = std::time::Instant::now();
        let emit = sample_emit(&wl, &cfg0, &scfg);
        let emit_secs = t_emit.elapsed().as_secs_f64();
        for t in &techniques {
            cells.push((*b, *t));
            let cfg = SimConfig::new(*t).with_max_instructions(instrs);
            let t0 = std::time::Instant::now();
            let result = match &emit {
                Ok(emit) if jobs > 0 => {
                    let scratch = scratch_root.join(format!("{}-{}", b.name(), technique_flag(*t)));
                    worker_command(*b, input, *t, size, seed, instrs, &scfg).and_then(|argv| {
                        measure_periods_via_workers(&argv, &emit.checkpoints, jobs, &scratch)
                            .map(|periods| merge_periods(periods, emit.total_retired, emit.halted))
                    })
                }
                Ok(emit) => measure_emitted(&wl, &cfg, &scfg, &emit.checkpoints, threads)
                    .map(|periods| merge_periods(periods, emit.total_retired, emit.halted)),
                // The shared emit failed; re-run it (deterministic) so each
                // cell reports the real typed error.
                Err(_) => sample_emit(&wl, &cfg, &scfg).and_then(|emit| {
                    measure_emitted(&wl, &cfg, &scfg, &emit.checkpoints, threads)
                        .map(|periods| merge_periods(periods, emit.total_retired, emit.halted))
                }),
            };
            let mut report = sampled_report_from(&wl, &cfg, &scfg, result);
            report.host_seconds = emit_secs / techniques.len() as f64 + t0.elapsed().as_secs_f64();
            sampled_reports.push(report);
        }
    }
    if jobs > 0 {
        let _ = std::fs::remove_dir_all(&scratch_root);
    }

    // Exact-comparison runs stay cell-parallel: they share nothing.
    let exacts: Vec<Option<SimReport>> = if no_exact {
        (0..cells.len()).map(|_| None).collect()
    } else {
        parallel_map(cells.len(), threads, |i| {
            let (b, t) = cells[i];
            let wl = b.build(b.is_gap().then(|| input.unwrap_or(GraphInput::Kr)), size, seed);
            Some(simulate(&wl, &SimConfig::new(t).with_max_instructions(instrs)))
        })
    };

    let mut failed = 0usize;
    for (sampled, exact) in sampled_reports.iter().zip(&exacts) {
        if json {
            println!("{}", sampled.to_json());
        }
        let Some(s) = &sampled.sampling else {
            let e = sampled.outcome.error().map(|e| e.to_string()).unwrap_or_default();
            eprintln!("{} {}: sampled run failed: {e}", sampled.workload, sampled.technique.name());
            failed += 1;
            continue;
        };
        match exact {
            Some(exact) => {
                let within = (exact.ipc - s.ipc_mean).abs() <= s.ipc_ci95;
                if !json {
                    println!(
                        "{:16} {:14} exact {:.4}  sampled {:.4} +/- {:.4} (n={:3})  \
                         err {:+.2}%  {}  host speedup {:.1}x",
                        sampled.workload,
                        sampled.technique.name(),
                        exact.ipc,
                        s.ipc_mean,
                        s.ipc_ci95,
                        s.intervals,
                        100.0 * (s.ipc_mean - exact.ipc) / exact.ipc.max(1e-12),
                        if within { "within CI" } else { "OUTSIDE CI" },
                        exact.host_seconds / sampled.host_seconds.max(1e-9),
                    );
                }
                if !within || !exact.outcome.is_complete() {
                    failed += 1;
                }
            }
            None if !json => {
                println!(
                    "{:16} {:14} sampled {:.4} +/- {:.4} (n={:3})  {:.2} Minstr/s",
                    sampled.workload,
                    sampled.technique.name(),
                    s.ipc_mean,
                    s.ipc_ci95,
                    s.intervals,
                    sampled.host_minstr_per_sec(),
                );
            }
            None => {}
        }
    }
    if failed > 0 {
        eprintln!("sample: {failed} of {} runs failed or missed their CI", sampled_reports.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `dvrsim mix`: a multi-programmed mix on the discrete-event scheduler —
/// N cores with private L1/L2 over one shared L3 + DRAM, with optional solo
/// baselines for throughput/fairness metrics.
fn mix_main(args: &[String]) -> ExitCode {
    let mut spec_str: Option<String> = None;
    let mut cores = 0usize;
    let mut technique = Technique::Dvr;
    let mut size = SizeClass::Small;
    let mut seed = 42u64;
    let mut instrs = 200_000u64;
    let mut threads = 1usize;
    let mut solo = false;
    let mut sanitize = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--solo" => solo = true,
            "--sanitize" => sanitize = true,
            "--json" => json = true,
            "--spec" | "--cores" | "--technique" | "--size" | "--seed" | "--instrs"
            | "--threads" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--spec" => spec_str = Some(v),
                    "--technique" => match parse_technique(&v).as_deref() {
                        Some([t]) => technique = *t,
                        _ => {
                            eprintln!("error: mix needs a single technique, got '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    flag => {
                        let n: u64 = match v.parse() {
                            Ok(n) => n,
                            Err(e) => {
                                eprintln!("error: {flag}: {e}");
                                return ExitCode::from(2);
                            }
                        };
                        match flag {
                            "--cores" => cores = n as usize,
                            "--seed" => seed = n,
                            "--instrs" => instrs = n,
                            "--threads" => threads = n as usize,
                            _ => unreachable!("covered by the outer match"),
                        }
                    }
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("mix", other),
        }
        i += 1;
    }
    let spec = match (&spec_str, cores) {
        (Some(s), _) => match MixSpec::parse(s, technique) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: --spec: {e}");
                return ExitCode::from(2);
            }
        },
        (None, n) if n > 0 => MixSpec::round_robin(n, technique),
        _ => {
            eprintln!("error: mix needs --spec LIST or --cores N (see 'dvrsim --help')");
            return ExitCode::from(2);
        }
    };

    let base = SimConfig::new(technique).with_max_instructions(instrs).with_sanitize(sanitize);
    let t0 = std::time::Instant::now();
    let mix = simulate_mix(&spec, size, seed, &base);
    // Solo baselines are independent single-core runs: cell-parallel.
    let solos: Option<Vec<SimReport>> = solo.then(|| {
        parallel_map(spec.cores.len(), threads, |i| {
            let c = spec.cores[i];
            let mut cfg = base;
            cfg.technique = c.technique;
            cfg.core.imp_prefetcher = c.technique == Technique::Imp;
            let wl = c.bench.build(c.input, size, seed);
            simulate(&wl, &cfg)
        })
    });
    // Wall timing lives only at this level (stderr): mix stdout is
    // byte-identical across re-runs and --threads values.
    eprintln!(
        "mix: {} cores, {} cycles in {:.2}s host",
        mix.cores.len(),
        mix.cycles,
        t0.elapsed().as_secs_f64()
    );

    let eval = solos.as_ref().map(|s| evaluate_mix(&mix, s));
    if json {
        println!("{}", mix.to_json());
        if let Some(eval) = &eval {
            let slowdowns: Vec<String> = eval.slowdowns.iter().map(|s| format!("{s:.6}")).collect();
            println!(
                "{{\"throughput\":{:.6},\"fairness\":{:.6},\"slowdowns\":[{}]}}",
                eval.throughput,
                eval.fairness,
                slowdowns.join(",")
            );
        }
    } else {
        println!("mix {} ({} cores, seed {seed})", mix.label, mix.cores.len());
        for (i, r) in mix.cores.iter().enumerate() {
            let sh = &mix.shared[i];
            let slowdown = eval
                .as_ref()
                .map(|e| format!(" | slowdown {:>5.2}x", e.slowdowns[i]))
                .unwrap_or_default();
            println!(
                "core {i}: {:24} IPC {:>7.3} | {:>9} cycles | L3 hits {:>8} | \
                 DRAM {:>8} | xcore {:>6}{slowdown}",
                spec.cores[i].label(),
                r.ipc,
                r.core.cycles,
                sh.l3_hits,
                sh.dram_reads,
                sh.cross_core_hits,
            );
        }
        println!("aggregate IPC {:.3} over {} cycles", mix.aggregate_ipc, mix.cycles);
        if let Some(eval) = &eval {
            println!(
                "throughput (STP) {:.3} of {} | fairness (hmean slowdown) {:.3}",
                eval.throughput,
                mix.cores.len(),
                eval.fairness
            );
        }
    }

    let mut failed = 0usize;
    for r in &mix.cores {
        if let Some(san) = &r.sanitizer {
            eprintln!("sanitize[{}]: {}", r.workload, san.summary());
            if !san.is_clean() {
                for m in &san.first {
                    eprintln!("sanitize[{}]:   {m}", r.workload);
                }
                failed += 1;
            }
        }
        if let Some(e) = r.outcome.error() {
            eprintln!("mix: {} failed ({}): {e}", r.workload, e.kind());
            failed += 1;
        }
    }
    if let Some(san) = &mix.shared_sanitizer {
        eprintln!("sanitize[shared L3]: {}", san.summary());
        if !san.is_clean() {
            for m in &san.first {
                eprintln!("sanitize[shared L3]:   {m}");
            }
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("mix: {failed} of {} runs failed", mix.cores.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Builds the `dvrsim sample-worker ...` command line that reconstructs
/// one (workload, technique, sampling) cell in a child process. The
/// workload is rebuilt from its deterministic (bench, input, size, seed)
/// recipe, so only the small checkpoint file crosses the process
/// boundary.
fn worker_command(
    b: Benchmark,
    input: Option<GraphInput>,
    t: Technique,
    size: SizeClass,
    seed: u64,
    instrs: u64,
    scfg: &SampleConfig,
) -> Result<Vec<String>, dvr_sim::SampleError> {
    let exe = std::env::current_exe().map_err(|e| {
        dvr_sim::SampleError::Worker(format!("cannot locate the dvrsim binary: {e}"))
    })?;
    let mut v: Vec<String> = vec![
        exe.to_string_lossy().into_owned(),
        "sample-worker".into(),
        "--bench".into(),
        b.name().into(),
        "--technique".into(),
        technique_flag(t).into(),
        "--size".into(),
        size_flag(size).into(),
        "--seed".into(),
        seed.to_string(),
        "--instrs".into(),
        instrs.to_string(),
        "--interval".into(),
        scfg.interval.to_string(),
        "--warmup".into(),
        scfg.warmup.to_string(),
        "--period".into(),
        scfg.period.to_string(),
        "--placement".into(),
        match scfg.placement {
            Placement::Systematic => "systematic".into(),
            Placement::Random => "random".into(),
        },
        "--sample-seed".into(),
        scfg.seed.to_string(),
        "--json".into(),
    ];
    if b.is_gap() {
        v.push("--input".into());
        v.push(input.unwrap_or(GraphInput::Kr).name().into());
    }
    Ok(v)
}

/// `dvrsim sample-worker`: measures ONE sampling period from a checkpoint
/// file and prints one integer-JSON result line on stdout — the worker
/// half of `dvrsim sample --jobs N`.
fn sample_worker_main(args: &[String]) -> ExitCode {
    let mut bench: Option<Benchmark> = None;
    let mut input: Option<GraphInput> = None;
    let mut techniques: Vec<Technique> = vec![];
    let mut size = SizeClass::Small;
    let mut seed = 42u64;
    let mut instrs = 200_000u64;
    let mut scfg = SampleConfig::default();
    let mut checkpoint: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Output is always one JSON line; the flag is accepted for
            // symmetry with the other subcommands.
            "--json" => {}
            "--bench" | "--input" | "--technique" | "--size" | "--seed" | "--instrs"
            | "--interval" | "--warmup" | "--period" | "--placement" | "--sample-seed"
            | "--checkpoint" => {
                let Some(v) = args.get(i + 1).cloned() else {
                    eprintln!("error: {} needs a value", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--bench" => match parse_bench(&v) {
                        Some(b) => bench = Some(b),
                        None => {
                            eprintln!("error: unknown benchmark '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--input" => match parse_input(&v) {
                        Some(g) => input = Some(g),
                        None => {
                            eprintln!("error: unknown input '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--technique" => match parse_technique(&v) {
                        Some(t) if t.len() == 1 => techniques = t,
                        _ => {
                            eprintln!("error: sample-worker needs a single technique, got '{v}'");
                            return ExitCode::from(2);
                        }
                    },
                    "--size" => {
                        size = match v.as_str() {
                            "test" => SizeClass::Test,
                            "small" => SizeClass::Small,
                            "paper" => SizeClass::Paper,
                            _ => {
                                eprintln!("error: unknown size '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--placement" => {
                        scfg.placement = match v.as_str() {
                            "systematic" => Placement::Systematic,
                            "random" => Placement::Random,
                            _ => {
                                eprintln!("error: unknown placement '{v}'");
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--checkpoint" => checkpoint = Some(v),
                    flag => {
                        let n: u64 = match v.parse() {
                            Ok(n) => n,
                            Err(e) => {
                                eprintln!("error: {flag}: {e}");
                                return ExitCode::from(2);
                            }
                        };
                        match flag {
                            "--seed" => seed = n,
                            "--instrs" => instrs = n,
                            "--interval" => scfg.interval = n,
                            "--warmup" => scfg.warmup = n,
                            "--period" => scfg.period = n,
                            "--sample-seed" => scfg.seed = n,
                            _ => unreachable!("covered by the outer match"),
                        }
                    }
                }
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("sample-worker", other),
        }
        i += 1;
    }
    let (Some(b), Some(path), [t]) = (bench, checkpoint, techniques.as_slice()) else {
        eprintln!("error: sample-worker needs --bench, --technique, and --checkpoint");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let ck = match dvr_sim::PeriodCheckpoint::decode(&bytes) {
        Ok(ck) => ck,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let wl = b.build(b.is_gap().then(|| input.unwrap_or(GraphInput::Kr)), size, seed);
    let cfg = SimConfig::new(*t).with_max_instructions(instrs);
    let scfg = scfg.with_max_instructions(instrs);
    match sim_sample::measure_period(&wl.prog, &wl.mem, cfg.core, cfg.hierarchy, &scfg, &ck, || {
        dvr_sim::engine_factory(&cfg)
    }) {
        Ok(p) => {
            println!("{}", p.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sample-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("lint") {
        return lint_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("audit") {
        return audit_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("lint-taint") {
        return lint_taint_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("leak-audit") {
        return leak_audit_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bounds-audit") {
        return bounds_audit_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("sample") {
        return sample_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("sample-worker") {
        return sample_worker_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("mix") {
        return mix_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("sweep") {
        return sweep_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("sweep-worker") {
        return sweep_worker_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let wl = match load_workload(&o) {
        Ok(wl) => wl,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !o.json {
        println!("{} — {}", wl.name, wl.description);
        println!(
            "{} static instructions, {} byte memory image\n",
            wl.prog.len(),
            wl.mem.footprint_bytes()
        );
    }

    let mut base_ipc = None;
    let mut failed = 0usize;
    for t in &o.techniques {
        let mut cfg = SimConfig::new(*t).with_max_instructions(o.instrs);
        if let Some(rob) = o.rob {
            cfg = cfg.with_rob(rob);
        }
        if let Some(fault) = o.inject {
            cfg = cfg.with_faults(fault);
        }
        if let Some(w) = o.watchdog {
            cfg = cfg.with_watchdog_cycles(w);
        }
        if o.sanitize {
            cfg = cfg.with_sanitize(true);
        }
        let r = simulate(&wl, &cfg);
        if *t == Technique::Baseline {
            base_ipc = Some(r.ipc);
        }
        if o.json {
            println!("{}", r.to_json());
        } else {
            print_report(&r, if *t == Technique::Baseline { None } else { base_ipc }, o.verbose);
        }
        // The sanitizer speaks only on stderr so stdout (and especially
        // --json) stays byte-identical with the sanitizer on or off.
        if let Some(san) = &r.sanitizer {
            eprintln!("sanitize[{}]: {}", r.technique.name(), san.summary());
            if !san.is_clean() {
                for m in &san.first {
                    eprintln!("sanitize[{}]:   {m}", r.technique.name());
                }
                failed += 1;
            }
        }
        if let Some(e) = r.outcome.error() {
            failed += 1;
            if !o.json {
                println!("               FAILED ({}): {e}", e.kind());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} of {} runs failed", o.techniques.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// sweep / sweep-worker / serve — the crash-safe sweep service
// ---------------------------------------------------------------------------

struct SweepOpts {
    benches: Vec<Benchmark>,
    inputs: Vec<GraphInput>,
    techniques: Vec<Technique>,
    size: SizeClass,
    seed: u64,
    instrs: u64,
    out: std::path::PathBuf,
    cache: Option<std::path::PathBuf>,
    jobs: usize,
    timeout_ms: u64,
    retries: u32,
    backoff_ms: u64,
    backoff_seed: u64,
    keep_going: bool,
    gc: bool,
    fault: sim_sweep::SweepFault,
    json: bool,
}

fn parse_bench_list(spec: &str) -> Result<Vec<Benchmark>, String> {
    match spec {
        "all" => Ok(Benchmark::ALL.to_vec()),
        "gap" => Ok(Benchmark::ALL.iter().copied().filter(|b| b.is_gap()).collect()),
        "hpcdb" => Ok(Benchmark::ALL.iter().copied().filter(|b| !b.is_gap()).collect()),
        list => list
            .split(',')
            .map(|s| parse_bench(s).ok_or(format!("unknown benchmark '{s}'")))
            .collect(),
    }
}

fn parse_input_list(spec: &str) -> Result<Vec<GraphInput>, String> {
    match spec {
        "all" => Ok(GraphInput::ALL.to_vec()),
        list => {
            list.split(',').map(|s| parse_input(s).ok_or(format!("unknown input '{s}'"))).collect()
        }
    }
}

fn parse_technique_list(spec: &str) -> Result<Vec<Technique>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let ts = parse_technique(part).ok_or(format!("unknown technique '{part}'"))?;
        for t in ts {
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    if out.is_empty() {
        return Err(format!("no techniques in '{spec}'"));
    }
    Ok(out)
}

fn parse_sweep_args(args: &[String]) -> Result<SweepOpts, String> {
    let mut o = SweepOpts {
        benches: Benchmark::ALL.to_vec(),
        inputs: vec![GraphInput::Kr],
        techniques: parse_technique("all").expect("static"),
        size: SizeClass::Small,
        seed: 42,
        instrs: 200_000,
        out: "sweep-out".into(),
        cache: Some(".dvr-cache".into()),
        jobs: 0,
        timeout_ms: 0,
        retries: 2,
        backoff_ms: 50,
        backoff_seed: 42,
        keep_going: false,
        gc: false,
        fault: sim_sweep::SweepFault::default(),
        json: false,
    };
    let mut i = 0usize;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or(format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => o.benches = parse_bench_list(&value(&mut i)?)?,
            "--input" => o.inputs = parse_input_list(&value(&mut i)?)?,
            "--technique" => o.techniques = parse_technique_list(&value(&mut i)?)?,
            "--size" => {
                let v = value(&mut i)?;
                o.size =
                    dvr_sim::sweep::parse_size_token(&v).ok_or(format!("unknown size '{v}'"))?;
            }
            "--seed" => o.seed = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--instrs" => o.instrs = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--out" => o.out = value(&mut i)?.into(),
            "--cache" => o.cache = Some(value(&mut i)?.into()),
            "--no-cache" => o.cache = None,
            "--jobs" => o.jobs = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--timeout-ms" => o.timeout_ms = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--retries" => o.retries = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--backoff-ms" => o.backoff_ms = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--backoff-seed" => {
                o.backoff_seed = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--keep-going" => o.keep_going = true,
            "--gc" => o.gc = true,
            "--inject-sweep" => {
                o.fault =
                    sim_sweep::SweepFault::parse(&value(&mut i)?).map_err(|e| e.to_string())?
            }
            "--json" => o.json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                let _ = unknown_flag("sweep", other);
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Ok(o)
}

fn sweep_grid(o: &SweepOpts) -> Vec<dvr_sim::SweepCell> {
    dvr_sim::SweepCell::grid(&o.benches, &o.inputs, &o.techniques, o.size, o.seed, o.instrs)
}

fn sweep_main(args: &[String]) -> ExitCode {
    let o = match parse_sweep_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cells = sweep_grid(&o);
    let keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
    let exe = (o.jobs > 0).then(|| std::env::current_exe().ok()).flatten();
    let runner = dvr_sim::DvrSweepRunner::new(exe);
    let cache = match &o.cache {
        None => None,
        Some(dir) => match sim_sweep::ResultCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    if o.gc {
        let Some(cache) = cache else {
            eprintln!("error: --gc needs a cache (drop --no-cache)");
            return ExitCode::from(2);
        };
        use sim_sweep::CellRunner;
        let keep: std::collections::HashSet<String> =
            keys.iter().filter_map(|k| runner.cache_key(k)).map(|d| d.hex()).collect();
        return match cache.gc(&keep) {
            Ok(stats) => {
                println!(
                    "sweep gc: kept={} removed={} quarantine_purged={}",
                    stats.kept, stats.removed, stats.quarantine_purged
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Err(e) = std::fs::create_dir_all(&o.out) {
        eprintln!("error: create {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    let opts = sim_sweep::SweepOptions {
        jobs: o.jobs,
        timeout_ms: o.timeout_ms,
        retries: o.retries,
        backoff_ms: o.backoff_ms,
        seed: o.backoff_seed,
        keep_going: o.keep_going,
        fault: o.fault,
    };
    let journal = o.out.join("journal.dvrj");
    let run = match sim_sweep::run_sweep(&keys, &runner, &journal, cache.as_ref(), &opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    for w in &run.warnings {
        eprintln!("sweep: warning[{}]: {w}", w.kind());
    }
    let s = &run.stats;
    eprintln!(
        "sweep: cells={} journal={} cache={} computed={} failed={} spawns={} \
         cache_hits={} cache_misses={} cache_corrupt={} cache_stores={} replay_dropped_bytes={}",
        s.total,
        s.from_journal,
        s.from_cache,
        s.computed,
        s.failed,
        s.spawns,
        s.cache.hits,
        s.cache.misses,
        s.cache.corrupt,
        s.cache.stores,
        s.replay.dropped_bytes,
    );
    let summary = sim_sweep::render_summary(&keys, &run.outcomes, &runner);
    let path = o.out.join("summary.json");
    if let Err(e) = sim_sweep::write_atomic(&path, &summary) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if o.json {
        print!("{summary}");
    } else {
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn sweep_worker_main(args: &[String]) -> ExitCode {
    // The supervisor appends --test-hang under an injected hang fault;
    // honoring it exercises the timeout/kill path deterministically.
    if args.iter().any(|a| a == sim_sweep::WORKER_HANG_FLAG) {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }
    match args.first().map(String::as_str) {
        Some("--help" | "-h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(flag) if flag.starts_with("--") => return unknown_flag("sweep-worker", flag),
        _ => {}
    }
    let Some(cell) = args.first() else {
        eprintln!("usage: dvrsim sweep-worker CELL-KEY");
        return ExitCode::from(2);
    };
    use sim_sweep::CellRunner;
    let runner = dvr_sim::DvrSweepRunner::new(None);
    match runner.run(cell) {
        Ok(payload) => println!("{}", sim_sweep::ok_line(&payload)),
        Err((kind, message)) => println!("{}", sim_sweep::fail_line(&kind, &message)),
    }
    ExitCode::SUCCESS
}

fn serve_main(args: &[String]) -> ExitCode {
    let mut socket: Option<std::path::PathBuf> = None;
    let mut cache_dir: Option<std::path::PathBuf> = Some(".dvr-cache".into());
    let mut i = 0usize;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or(format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => match value(&mut i) {
                Ok(v) => socket = Some(v.into()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--cache" => match value(&mut i) {
                Ok(v) => cache_dir = Some(v.into()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => cache_dir = None,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return unknown_flag("serve", other),
        }
        i += 1;
    }
    let Some(socket) = socket else {
        eprintln!("error: serve needs --socket PATH\n\n{USAGE}");
        return ExitCode::from(2);
    };
    serve_loop(&socket, cache_dir.as_deref())
}

#[cfg(unix)]
fn serve_loop(socket: &std::path::Path, cache_dir: Option<&std::path::Path>) -> ExitCode {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixListener;

    let cache = match cache_dir {
        None => None,
        Some(dir) => match sim_sweep::ResultCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let _ = std::fs::remove_file(socket); // a stale socket from a killed server
    let listener = match UnixListener::bind(socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serve: listening on {}", socket.display());
    let runner = dvr_sim::DvrSweepRunner::new(None);
    let mut served = 0u64;
    'accept: for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        });
        let mut stream = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // client hung up
                Ok(_) => {}
            }
            let reply = match line.trim() {
                "" => continue,
                "ping" => "{\"ok\":true}".to_string(),
                "shutdown" => {
                    let _ = stream.write_all(b"{\"ok\":true}\n");
                    break 'accept;
                }
                "stats" => {
                    let c = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
                    format!(
                        "{{\"served\":{served},\"cache_hits\":{},\"cache_misses\":{},\
                         \"cache_corrupt\":{},\"cache_stores\":{}}}",
                        c.hits, c.misses, c.corrupt, c.stores
                    )
                }
                req => match req.strip_prefix("run ") {
                    Some(key) => {
                        served += 1;
                        serve_run(&runner, cache.as_ref(), key)
                    }
                    None => format!(
                        "{{\"error\":\"unknown request {}\"}}",
                        req.split_whitespace().next().unwrap_or("")
                    ),
                },
            };
            if stream.write_all(format!("{reply}\n").as_bytes()).is_err() {
                break;
            }
        }
    }
    let _ = std::fs::remove_file(socket);
    ExitCode::SUCCESS
}

#[cfg(not(unix))]
fn serve_loop(_socket: &std::path::Path, _cache_dir: Option<&std::path::Path>) -> ExitCode {
    eprintln!("error: dvrsim serve --socket requires a Unix platform");
    ExitCode::FAILURE
}

#[cfg(unix)]
fn serve_run(
    runner: &dvr_sim::DvrSweepRunner,
    cache: Option<&sim_sweep::ResultCache>,
    key: &str,
) -> String {
    let cell = match dvr_sim::SweepCell::parse(key) {
        Ok(cell) => cell,
        Err(e) => return format!("{{\"error\":\"bad cell: {e}\",\"kind\":\"bad_cell\"}}"),
    };
    let digest = dvr_sim::cache_key(&runner.workload(&cell), &cell.config(), None);
    if let Some(cache) = cache {
        match cache.lookup(digest) {
            sim_sweep::CacheLookup::Hit(payload) => match dvr_sim::decode_report(&payload) {
                Ok(report) => {
                    return format!("{{\"cached\":true,\"report\":{}}}", report.to_json())
                }
                Err(e) => eprintln!("serve: warning: undecodable cache payload: {e}"),
            },
            sim_sweep::CacheLookup::Corrupt(e) => eprintln!("serve: warning[{}]: {e}", e.kind()),
            sim_sweep::CacheLookup::Miss => {}
        }
    }
    let mut report = runner.run_report(&cell);
    match &report.outcome {
        dvr_sim::RunOutcome::Complete => {
            if let (Some(cache), Ok(payload)) = (cache, dvr_sim::encode_report(&report)) {
                if let Err(e) = cache.store(digest, &payload) {
                    eprintln!("serve: warning: {e}");
                }
            }
            // Deterministic responses: the wall clock never crosses the
            // service boundary, so cached and fresh replies are identical.
            report.host_seconds = 0.0;
            format!("{{\"cached\":false,\"report\":{}}}", report.to_json())
        }
        dvr_sim::RunOutcome::Failed(e) => {
            format!(
                "{{\"error\":\"{}\",\"kind\":\"{}\"}}",
                e.to_string().replace('\\', "\\\\").replace('"', "\\\""),
                e.kind()
            )
        }
    }
}
