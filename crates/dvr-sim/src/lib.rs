//! # dvr-sim — top-level simulator facade for the DVR reproduction
//!
//! Wires the substrates together — ISA ([`sim_isa`]), memory hierarchy
//! ([`sim_mem`]), out-of-order core ([`sim_ooo`]), runahead engines
//! ([`dvr_core`]), and benchmarks ([`workloads`]) — behind one call:
//! [`simulate`]. This is the API the examples, integration tests, and the
//! figure-regeneration harness consume.
//!
//! ## Example
//!
//! ```
//! use dvr_sim::{simulate, SimConfig, Technique};
//! use workloads::{Benchmark, GraphInput, SizeClass};
//!
//! let wl = Benchmark::Bfs.build(Some(GraphInput::Ur), SizeClass::Test, 42);
//! let base = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(50_000));
//! let dvr = simulate(&wl, &SimConfig::new(Technique::Dvr).with_max_instructions(50_000));
//! assert!(base.ipc > 0.0);
//! assert!(dvr.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod bounds_audit;
mod config;
mod leak_audit;
mod multi;
mod report;
mod runner;
mod sample;
pub mod sweep;

pub use audit::{audit_benchmark, AuditReport, Divergence, DivergenceKind, Justification};
pub use bounds_audit::{
    bounds_audit_attack, bounds_audit_benchmark, bounds_audit_oob, bounds_audit_workload,
    BoundsAuditReport, BoundsDivergence, BoundsDivergenceKind, BoundsJustification, PcExtents,
};
pub use config::{SimConfig, Technique};
pub use leak_audit::{
    leak_audit_attack, leak_audit_benchmark, leak_audit_workload, ArchTaint, FillSummary,
    LeakAuditReport, LeakDivergence, LeakDivergenceKind, LeakJustification,
};
pub use multi::{
    evaluate_mix, simulate_mix, ConfigError, MixCore, MixEvaluation, MixReport, MixSpec,
};
pub use report::{EngineSummary, RunOutcome, SamplingSummary, SimReport};
pub use runner::{
    parallel_map, resolve_threads, simulate, simulate_all, simulate_all_parallel, try_parallel_map,
    CellError,
};
pub use sample::{
    engine_factory, measure_emitted, measure_periods_via_workers, run_sampled_threads, sample_emit,
    sampled_report_from, simulate_sampled, simulate_sampled_threads,
};
pub use sweep::{cache_key, decode_report, encode_report, DvrSweepRunner, SweepCell};

// The crash-safe sweep substrate (journal, result cache, supervisor).
pub use sim_sweep;

// Re-export the pieces users need to assemble custom setups.
pub use dvr_core::{DvrConfig, DvrEngine, DvrTrace, OracleEngine, PreEngine, TraceEvent, VrEngine};
pub use sim_lint;
pub use sim_mem::{
    FaultConfig, FaultEvent, FaultKind, HierarchyConfig, MemStats, MemoryHierarchy, PrefetchSource,
    TimelinessBucket,
};
pub use sim_multi::{Component, ComponentId, Scheduler, SchedulerStats, Tick};
pub use sim_ooo::SanitizeReport;
pub use sim_ooo::{CoreConfig, CoreStats, DeadlockSnapshot, NullEngine, OooCore, SimError};
pub use sim_sample::{
    merge_periods, CheckpointDecodeError, EmitResult, PeriodCheckpoint, PeriodResult, Placement,
    SampleConfig, SampleError, SampledReport, SampledRun,
};
pub use workloads::{Benchmark, GraphInput, SizeClass, Workload};
