//! Simulation results.

use sim_mem::{MemStats, PrefetchSource};
use sim_ooo::{CoreStats, SanitizeReport, SimError};

use crate::config::Technique;

/// How a simulation run ended.
///
/// A failed run still carries a full [`SimReport`]: the statistics up to
/// the failure point are coherent, and batch harnesses record the cell as
/// data instead of aborting the sweep.
#[derive(Clone, PartialEq, Debug)]
pub enum RunOutcome {
    /// The run finished (program halted or the instruction budget hit).
    Complete,
    /// The run failed with a typed error.
    Failed(SimError),
}

impl RunOutcome {
    /// Whether the run completed.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete)
    }

    /// The error, if the run failed.
    pub fn error(&self) -> Option<&SimError> {
        match self {
            RunOutcome::Complete => None,
            RunOutcome::Failed(e) => Some(e),
        }
    }

    /// Stable machine-readable label ("complete" or the error kind).
    pub fn kind(&self) -> &'static str {
        match self {
            RunOutcome::Complete => "complete",
            RunOutcome::Failed(e) => e.kind(),
        }
    }
}

/// Technique-specific activity counters, normalized across engines.
#[derive(Clone, Debug, Default)]
pub struct EngineSummary {
    /// Runahead episodes / subthread invocations (0 for Baseline/IMP).
    pub episodes: u64,
    /// Scalar-equivalent runahead loads issued.
    pub runahead_loads: u64,
    /// Nested (NDM) episodes (DVR only).
    pub nested_episodes: u64,
    /// Lanes lost to divergence (VR) / stack overflow (DVR).
    pub lanes_lost: u64,
    /// Free-form detail line for reports.
    pub detail: String,
}

/// Summary of a sampled run's statistics, attached to a [`SimReport`] by
/// [`crate::simulate_sampled`]. All fields are deterministic (no wall
/// clock), so sampled reports stay byte-identical across thread counts.
#[derive(Clone, PartialEq, Debug)]
pub struct SamplingSummary {
    /// Number of measured detailed intervals.
    pub intervals: usize,
    /// Configured measured-interval length (instructions).
    pub interval_len: u64,
    /// Configured detailed-warmup length (instructions).
    pub warmup_len: u64,
    /// Configured period length (instructions).
    pub period: u64,
    /// Placement policy name (`"systematic"` or `"random"`).
    pub placement: &'static str,
    /// Placement seed.
    pub seed: u64,
    /// Mean of per-interval IPCs (the report's headline `ipc`).
    pub ipc_mean: f64,
    /// Unbiased sample variance of per-interval IPCs.
    pub ipc_variance: f64,
    /// Half-width of the 95% confidence interval on the mean IPC.
    pub ipc_ci95: f64,
    /// Mean of per-interval MLPs.
    pub mlp_mean: f64,
    /// Instructions committed inside measured intervals.
    pub detailed_instructions: u64,
    /// Instructions committed inside discarded warmups.
    pub warmup_instructions: u64,
    /// Instructions covered by functional fast-forward.
    pub ffwd_instructions: u64,
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Technique simulated.
    pub technique: Technique,
    /// Workload name.
    pub workload: String,
    /// Core-side counters.
    pub core: CoreStats,
    /// Memory-side counters.
    pub mem: MemStats,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Average MSHRs occupied per cycle (the paper's MLP metric, Fig. 9).
    pub mlp: f64,
    /// Instructions the run covered architecturally: committed instructions
    /// for an exact run, total retired (fast-forward + detailed) for a
    /// sampled one. The numerator of [`SimReport::host_minstr_per_sec`].
    pub simulated_instructions: u64,
    /// Host wall-clock seconds spent inside [`crate::simulate`] for this
    /// run (simulation cost, not simulated time).
    pub host_seconds: f64,
    /// Sampling statistics (`Some` only for [`crate::simulate_sampled`]
    /// runs).
    pub sampling: Option<SamplingSummary>,
    /// Engine activity.
    pub engine: EngineSummary,
    /// How the run ended; statistics above are partial when it failed.
    pub outcome: RunOutcome,
    /// Invariant-sanitizer ledger (`Some` only when the run was configured
    /// with [`SimConfig::with_sanitize`](crate::SimConfig::with_sanitize)).
    /// Deliberately **not** part of [`SimReport::to_json`]: sanitized and
    /// unsanitized runs must serialize byte-identically.
    pub sanitizer: Option<SanitizeReport>,
    /// DVR Discovery/spawn event trace (`Some` only when the run was
    /// configured with
    /// [`SimConfig::with_dvr_trace`](crate::SimConfig::with_dvr_trace) and
    /// the technique is a DVR variant). Like `sanitizer`, deliberately
    /// **not** part of [`SimReport::to_json`]: traced and untraced runs
    /// must serialize byte-identically.
    pub dvr_trace: Option<dvr_core::DvrTrace>,
    /// Line fills triggered by secret-derived addresses in runahead
    /// subthreads (`Some` only when the run was configured with
    /// [`SimConfig::with_taint_oracle`](crate::SimConfig::with_taint_oracle)).
    /// Like `sanitizer` and `dvr_trace`, deliberately **not** part of
    /// [`SimReport::to_json`]: armed and unarmed runs must serialize
    /// byte-identically.
    pub taint_fills: Option<Vec<sim_mem::TaintFill>>,
    /// Per-pc [min, max] address spans touched by runahead subthreads
    /// (`Some` only when the run was configured with
    /// [`SimConfig::with_bounds_oracle`](crate::SimConfig::with_bounds_oracle)).
    /// Sorted by pc; each entry is `(pc, min_addr, max_inclusive_end)`.
    /// Like the other oracles, deliberately **not** part of
    /// [`SimReport::to_json`]: armed and unarmed runs must serialize
    /// byte-identically.
    pub spec_extents: Option<Vec<(usize, u64, u64)>>,
}

impl SimReport {
    /// Simulator throughput: simulated (committed) instructions per host
    /// second. `0.0` when the run was too short for the clock to resolve.
    pub fn sim_instrs_per_host_second(&self) -> f64 {
        if self.host_seconds > 0.0 {
            self.core.committed as f64 / self.host_seconds
        } else {
            0.0
        }
    }

    /// Simulator throughput in millions of *covered* instructions per host
    /// second ([`SimReport::simulated_instructions`] per second / 1e6).
    /// Unlike [`SimReport::sim_instrs_per_host_second`] this credits a
    /// sampled run for its fast-forwarded instructions, which is the point
    /// of sampling. `0.0` when the clock did not resolve.
    pub fn host_minstr_per_sec(&self) -> f64 {
        if self.host_seconds > 0.0 {
            self.simulated_instructions as f64 / self.host_seconds / 1e6
        } else {
            0.0
        }
    }

    /// Speedup of this run relative to a baseline run of the same workload.
    ///
    /// Returns `0.0` when the baseline has no measurable IPC (e.g. a failed
    /// cell in a `--keep-going` sweep), keeping downstream figures finite.
    ///
    /// # Panics
    ///
    /// Panics if the workloads differ (comparing apples to oranges).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        assert_eq!(self.workload, baseline.workload, "speedup must compare the same workload");
        if baseline.ipc <= 0.0 {
            return 0.0;
        }
        self.ipc / baseline.ipc
    }

    /// Total DRAM reads normalized to a baseline run (Figure 10's y-axis).
    pub fn dram_reads_normalized(&self, baseline: &SimReport) -> f64 {
        self.mem.dram_reads() as f64 / (baseline.mem.dram_reads().max(1)) as f64
    }

    /// Fraction of this run's DRAM reads issued by runahead engines.
    pub fn runahead_traffic_fraction(&self) -> f64 {
        let total = self.mem.dram_reads();
        if total == 0 {
            0.0
        } else {
            self.mem.dram_runahead() as f64 / total as f64
        }
    }

    /// Timeliness buckets (L1/L2/L3/off-chip fractions) for this
    /// technique's own prefetch source, if it issued any (Figure 11).
    pub fn timeliness(&self) -> Option<[f64; 4]> {
        let src = match self.technique {
            Technique::Pre => PrefetchSource::Pre,
            Technique::Imp => PrefetchSource::Imp,
            Technique::Vr => PrefetchSource::Vr,
            Technique::Dvr | Technique::DvrOffload | Technique::DvrDiscovery => PrefetchSource::Dvr,
            Technique::Baseline | Technique::Oracle => return None,
        };
        self.mem.timeliness(src)
    }

    /// LLC misses per kilo-instruction (Table 2's MPKI column).
    pub fn llc_mpki(&self) -> f64 {
        if self.core.committed == 0 {
            0.0
        } else {
            1000.0 * self.mem.dram_demand as f64 / self.core.committed as f64
        }
    }

    /// Serializes the report as a flat JSON object (for scripting around
    /// `dvrsim --json`). Hand-rolled to keep the simulator dependency-free;
    /// all values are numbers or plain ASCII names.
    pub fn to_json(&self) -> String {
        let t = self.timeliness().unwrap_or([0.0; 4]);
        let sampling = match &self.sampling {
            None => String::new(),
            Some(s) => format!(
                concat!(
                    "\"sampling\":{{\"intervals\":{},\"interval_len\":{},\"warmup_len\":{},",
                    "\"period\":{},\"placement\":\"{}\",\"seed\":{},\"ipc_mean\":{:.6},",
                    "\"ipc_variance\":{:.6},\"ipc_ci95\":{},\"mlp_mean\":{:.4},",
                    "\"detailed_instructions\":{},\"warmup_instructions\":{},",
                    "\"ffwd_instructions\":{}}},"
                ),
                s.intervals,
                s.interval_len,
                s.warmup_len,
                s.period,
                s.placement,
                s.seed,
                s.ipc_mean,
                s.ipc_variance,
                // A single-interval run has an unbounded CI: JSON null.
                if s.ipc_ci95.is_finite() { format!("{:.6}", s.ipc_ci95) } else { "null".into() },
                s.mlp_mean,
                s.detailed_instructions,
                s.warmup_instructions,
                s.ffwd_instructions,
            ),
        };
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"technique\":\"{}\",\"ipc\":{:.6},\"mlp\":{:.4},",
                "\"cycles\":{},\"committed\":{},\"llc_mpki\":{:.3},",
                "\"branch_mpki\":{:.3},\"window_full_frac\":{:.4},",
                "\"commit_blocked_cycles\":{},\"demand_loads\":{},\"demand_stores\":{},",
                "\"avg_demand_latency\":{:.2},\"dram_reads\":{},\"dram_demand\":{},",
                "\"dram_runahead\":{},\"dram_writebacks\":{},",
                "\"runahead_episodes\":{},\"runahead_loads\":{},\"nested_episodes\":{},",
                "\"timeliness_l1\":{:.4},\"timeliness_l2\":{:.4},\"timeliness_l3\":{:.4},",
                "\"timeliness_offchip\":{:.4},\"simulated_instructions\":{},{}",
                "\"host_seconds\":{:.6},\"sim_instrs_per_host_second\":{:.0},",
                "\"host_minstr_per_sec\":{:.3},",
                "\"outcome\":\"{}\",\"error\":\"{}\"}}"
            ),
            escape_json(&self.workload),
            self.technique.name(),
            self.ipc,
            self.mlp,
            self.core.cycles,
            self.core.committed,
            self.llc_mpki(),
            self.core.mpki(),
            self.core.rob_full_stall_fraction(),
            self.core.commit_blocked_engine_cycles,
            self.mem.demand_loads,
            self.mem.demand_stores,
            self.mem.avg_demand_latency(),
            self.mem.dram_reads(),
            self.mem.dram_demand,
            self.mem.dram_runahead(),
            self.mem.dram_writebacks,
            self.engine.episodes,
            self.engine.runahead_loads,
            self.engine.nested_episodes,
            t[0],
            t[1],
            t[2],
            t[3],
            self.simulated_instructions,
            sampling,
            self.host_seconds,
            self.sim_instrs_per_host_second(),
            self.host_minstr_per_sec(),
            self.outcome.kind(),
            self.outcome.error().map(|e| escape_json(&e.to_string())).unwrap_or_default(),
        )
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(workload: &str, ipc: f64) -> SimReport {
        SimReport {
            technique: Technique::Baseline,
            workload: workload.to_string(),
            core: CoreStats::default(),
            mem: MemStats::default(),
            ipc,
            mlp: 0.0,
            simulated_instructions: 0,
            host_seconds: 0.0,
            sampling: None,
            engine: EngineSummary::default(),
            outcome: RunOutcome::Complete,
            sanitizer: None,
            dvr_trace: None,
            taint_fills: None,
            spec_extents: None,
        }
    }

    #[test]
    fn throughput_handles_zero_time() {
        let mut r = report("bfs", 1.0);
        assert_eq!(r.sim_instrs_per_host_second(), 0.0);
        assert_eq!(r.host_minstr_per_sec(), 0.0);
        r.core.committed = 1_000_000;
        r.simulated_instructions = 5_000_000;
        r.host_seconds = 0.5;
        assert!((r.sim_instrs_per_host_second() - 2_000_000.0).abs() < 1e-6);
        assert!((r.host_minstr_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_section_serializes_when_present() {
        let mut r = report("bfs", 1.0);
        assert!(!r.to_json().contains("\"sampling\""));
        r.sampling = Some(SamplingSummary {
            intervals: 4,
            interval_len: 1000,
            warmup_len: 500,
            period: 5000,
            placement: "systematic",
            seed: 42,
            ipc_mean: 1.0,
            ipc_variance: 0.01,
            ipc_ci95: 0.2,
            mlp_mean: 3.0,
            detailed_instructions: 4000,
            warmup_instructions: 2000,
            ffwd_instructions: 14_000,
        });
        let j = r.to_json();
        assert!(j.contains("\"sampling\":{\"intervals\":4,"), "{j}");
        assert!(j.contains("\"ipc_ci95\":0.200000"), "{j}");
        assert!(j.contains("\"simulated_instructions\":0,\"sampling\""), "{j}");
        assert_eq!(j.matches('{').count(), 2);
        assert_eq!(j.matches('}').count(), 2);
        // An unbounded CI is JSON null, not "inf".
        r.sampling.as_mut().unwrap().ipc_ci95 = f64::INFINITY;
        assert!(r.to_json().contains("\"ipc_ci95\":null"));
    }

    #[test]
    fn speedup_math() {
        let base = report("bfs", 0.5);
        let fast = report("bfs", 1.25);
        assert!((fast.speedup_over(&base) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn speedup_across_workloads_panics() {
        let a = report("bfs", 1.0);
        let b = report("pr", 1.0);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn traffic_fraction_handles_zero() {
        let r = report("bfs", 1.0);
        assert_eq!(r.runahead_traffic_fraction(), 0.0);
        assert_eq!(r.llc_mpki(), 0.0);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = report("bfs\"KR\\", 1.5);
        r.core.cycles = 100;
        r.core.committed = 150;
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ipc\":1.5"));
        assert!(j.contains("\\\"KR\\\\"), "quotes/backslashes must be escaped: {j}");
        assert!(j.contains("\"outcome\":\"complete\",\"error\":\"\""));
        assert_eq!(j.matches('{').count(), 1);
    }

    #[test]
    fn failed_outcome_serializes_its_kind_and_message() {
        let mut r = report("bfs", 0.0);
        r.outcome = RunOutcome::Failed(SimError::CycleBudgetExceeded { cycle: 500, budget: 500 });
        assert_eq!(r.outcome.kind(), "cycle_budget_exceeded");
        assert!(!r.outcome.is_complete());
        let j = r.to_json();
        assert!(j.contains("\"outcome\":\"cycle_budget_exceeded\""), "{j}");
        assert!(j.contains("budget"), "error message must be present: {j}");
        assert_eq!(j.matches('{').count(), 1);
    }

    #[test]
    fn zero_ipc_baseline_yields_zero_speedup() {
        let base = report("bfs", 0.0);
        let fast = report("bfs", 1.25);
        assert_eq!(fast.speedup_over(&base), 0.0);
    }
}
