//! Simulation configuration.

use dvr_core::DvrConfig;
use sim_mem::HierarchyConfig;
use sim_ooo::CoreConfig;

/// The prefetching/runahead techniques the paper evaluates (Section 6),
/// plus the DVR ablations of Figure 8.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Technique {
    /// The plain out-of-order core (with its always-on stride prefetcher).
    Baseline,
    /// Precise Runahead Execution (HPCA '20).
    Pre,
    /// Indirect Memory Prefetcher (MICRO '15): baseline core + IMP at L1-D.
    Imp,
    /// Vector Runahead (ISCA '21).
    Vr,
    /// Decoupled Vector Runahead — the paper's contribution.
    Dvr,
    /// Figure 8 ablation: DVR's subthread offload without Discovery Mode.
    DvrOffload,
    /// Figure 8 ablation: offload + Discovery Mode, no Nested Runahead.
    DvrDiscovery,
    /// The perfect-knowledge Oracle.
    Oracle,
}

impl Technique {
    /// The five techniques of Figure 7, in plot order.
    pub const FIG7: [Technique; 5] =
        [Technique::Pre, Technique::Imp, Technique::Vr, Technique::Dvr, Technique::Oracle];

    /// The Figure 8 breakdown, in plot order (VR, Offload, +Discovery,
    /// +Nested = full DVR).
    pub const FIG8: [Technique; 4] =
        [Technique::Vr, Technique::DvrOffload, Technique::DvrDiscovery, Technique::Dvr];

    /// Parses a CLI spelling, case-insensitively: `ooo`/`baseline`, `pre`,
    /// `imp`, `vr`, `dvr`, `dvr-offload`, `dvr-discovery`, `oracle`.
    /// Returns `None` for anything else (callers render their own hint).
    pub fn parse(s: &str) -> Option<Technique> {
        Some(match s.to_ascii_lowercase().as_str() {
            "ooo" | "baseline" => Technique::Baseline,
            "pre" => Technique::Pre,
            "imp" => Technique::Imp,
            "vr" => Technique::Vr,
            "dvr" => Technique::Dvr,
            "dvr-offload" => Technique::DvrOffload,
            "dvr-discovery" => Technique::DvrDiscovery,
            "oracle" => Technique::Oracle,
            _ => return None,
        })
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Technique::Baseline => "OoO",
            Technique::Pre => "PRE",
            Technique::Imp => "IMP",
            Technique::Vr => "VR",
            Technique::Dvr => "DVR",
            Technique::DvrOffload => "DVR(offload)",
            Technique::DvrDiscovery => "DVR(+discovery)",
            Technique::Oracle => "Oracle",
        }
    }
}

/// Everything needed to run one simulation.
///
/// A non-consuming builder (the [guideline-recommended] flavour): defaults
/// are the paper's Table 1; the `with_*` methods adjust single knobs for
/// the sweeps.
///
/// [guideline-recommended]: https://rust-lang.github.io/api-guidelines/
///
/// # Example
///
/// ```
/// use dvr_sim::{SimConfig, Technique};
/// let cfg = SimConfig::new(Technique::Dvr).with_rob(512).with_max_instructions(100_000);
/// assert_eq!(cfg.core.rob_size, 512);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// Core pipeline parameters (Table 1).
    pub core: CoreConfig,
    /// Memory hierarchy parameters (Table 1).
    pub hierarchy: HierarchyConfig,
    /// Active technique.
    pub technique: Technique,
    /// DVR engine knobs (used by the DVR techniques; the ablation variants
    /// override the discovery/nested flags but keep the rest).
    pub dvr: DvrConfig,
    /// Instruction budget (the ROI length).
    pub max_instructions: u64,
    /// Record a [`dvr_core::DvrTrace`] of Discovery/spawn events into
    /// [`SimReport::dvr_trace`](crate::SimReport) (DVR techniques only).
    /// Timing-neutral: the traced run's report serializes byte-identically.
    pub trace_dvr: bool,
    /// Arm the memory hierarchy's secret-taint fill log: runahead engines
    /// record every line filled through a secret-derived address into
    /// [`SimReport::taint_fills`](crate::SimReport). Timing-neutral, like
    /// `trace_dvr`: the armed run's report serializes byte-identically.
    pub taint_oracle: bool,
    /// Arm the memory hierarchy's speculative-access extent map: runahead
    /// engines record the [min, max] address span touched per static pc into
    /// [`SimReport::spec_extents`](crate::SimReport). Timing-neutral, like
    /// the taint oracle: the armed run's report serializes byte-identically.
    pub bounds_oracle: bool,
}

impl SimConfig {
    /// A Table 1 configuration with the given technique and a 2 M-instruction
    /// ROI.
    pub fn new(technique: Technique) -> Self {
        let mut core = CoreConfig::icelake_like();
        core.imp_prefetcher = technique == Technique::Imp;
        SimConfig {
            core,
            hierarchy: HierarchyConfig::default(),
            technique,
            dvr: DvrConfig::default(),
            max_instructions: 2_000_000,
            trace_dvr: false,
            taint_oracle: false,
            bounds_oracle: false,
        }
    }

    /// Enables DVR event tracing for the static-vs-dynamic Discovery audit
    /// (see [`SimReport::dvr_trace`](crate::SimReport)).
    pub fn with_dvr_trace(mut self, on: bool) -> Self {
        self.trace_dvr = on;
        self
    }

    /// Arms the dynamic secret-taint oracle for the leak audit (see
    /// [`SimReport::taint_fills`](crate::SimReport)).
    pub fn with_taint_oracle(mut self, on: bool) -> Self {
        self.taint_oracle = on;
        self
    }

    /// Arms the dynamic speculative-extent oracle for the bounds audit (see
    /// [`SimReport::spec_extents`](crate::SimReport)).
    pub fn with_bounds_oracle(mut self, on: bool) -> Self {
        self.bounds_oracle = on;
        self
    }

    /// Overrides the ROB size (Figures 2 and 12).
    pub fn with_rob(mut self, rob: usize) -> Self {
        self.core.rob_size = rob;
        self
    }

    /// Overrides the ROB size, scaling IQ/LQ/SQ proportionally
    /// (Section 6.5's scaled-back-end variant).
    pub fn with_scaled_backend(mut self, rob: usize) -> Self {
        let imp = self.core.imp_prefetcher;
        self.core = CoreConfig::with_scaled_backend(rob);
        self.core.imp_prefetcher = imp;
        self
    }

    /// Overrides the instruction budget.
    pub fn with_max_instructions(mut self, n: u64) -> Self {
        self.max_instructions = n;
        self
    }

    /// Overrides the L1-D MSHR count (MLP-sensitivity ablation).
    pub fn with_mshrs(mut self, n: usize) -> Self {
        self.hierarchy.mshrs = n;
        self
    }

    /// Overrides DVR's per-invocation lane count (the paper's Section 6.1
    /// discussion of wider 256-element DVR units; hard-capped at 256).
    pub fn with_dvr_lanes(mut self, lanes: usize) -> Self {
        self.dvr.max_lanes = lanes.min(dvr_core::ABSOLUTE_MAX_LANES);
        self
    }

    /// Switches DRAM from the paper's request-based model to the optional
    /// open-page banked model (our extension; see `sim_mem::DramConfig`).
    pub fn with_banked_dram(mut self) -> Self {
        self.hierarchy.dram = sim_mem::DramConfig::banked();
        self
    }

    /// Enables deterministic fault injection in the memory hierarchy (see
    /// `sim_mem::FaultConfig`).
    pub fn with_faults(mut self, fault: sim_mem::FaultConfig) -> Self {
        self.hierarchy.fault = Some(fault);
        self
    }

    /// Overrides the forward-progress watchdog threshold (cycles without a
    /// commit before the run fails with a deadlock snapshot; `0` disables).
    pub fn with_watchdog_cycles(mut self, cycles: u64) -> Self {
        self.core.watchdog_cycles = cycles;
        self
    }

    /// Caps the run at a total cycle budget (`0` = unlimited).
    pub fn with_cycle_budget(mut self, cycles: u64) -> Self {
        self.core.max_cycles = cycles;
        self
    }

    /// Enables the cycle-model invariant sanitizer: read-only structural
    /// checks inside the core and hierarchy every cycle, plus an
    /// architectural-state digest diff against a fresh functional replay at
    /// the end of the run. Timing-neutral by construction; findings land in
    /// [`SimReport::sanitizer`](crate::SimReport).
    pub fn with_sanitize(mut self, on: bool) -> Self {
        self.core.sanitize = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imp_flag_follows_technique() {
        assert!(SimConfig::new(Technique::Imp).core.imp_prefetcher);
        assert!(!SimConfig::new(Technique::Dvr).core.imp_prefetcher);
    }

    #[test]
    fn builder_composes() {
        let cfg = SimConfig::new(Technique::Vr).with_rob(128).with_mshrs(8);
        assert_eq!(cfg.core.rob_size, 128);
        assert_eq!(cfg.hierarchy.mshrs, 8);
        assert_eq!(cfg.technique, Technique::Vr);
    }

    #[test]
    fn robustness_knobs_compose() {
        let cfg = SimConfig::new(Technique::Baseline)
            .with_faults(sim_mem::FaultConfig::seeded(7).with_drop(100))
            .with_watchdog_cycles(50_000)
            .with_cycle_budget(1_000_000);
        assert!(cfg.hierarchy.fault.expect("fault config set").is_active());
        assert_eq!(cfg.core.watchdog_cycles, 50_000);
        assert_eq!(cfg.core.max_cycles, 1_000_000);
        assert!(SimConfig::new(Technique::Baseline).hierarchy.fault.is_none());
    }

    #[test]
    fn sanitize_defaults_off() {
        assert!(!SimConfig::new(Technique::Dvr).core.sanitize);
        assert!(SimConfig::new(Technique::Dvr).with_sanitize(true).core.sanitize);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Technique::Dvr.name(), "DVR");
        assert_eq!(Technique::FIG7.len(), 5);
        assert_eq!(Technique::FIG8[3], Technique::Dvr);
    }
}
