//! The static-vs-dynamic secret-leakage audit.
//!
//! Closes the loop between `sim-lint`'s secret-taint pass and the dynamic
//! taint oracle: run the static analyzer over a workload's program, run
//! the simulator under Baseline/VR/DVR with the hierarchy's secret-taint
//! fill log armed, replay the program functionally with the architectural
//! taint tracker, and diff the three views. Every disagreement becomes a
//! typed [`LeakDivergence`]; the audit then tries to *explain* each one
//! from the known, documented gaps between the static model and the
//! dynamics. A divergence with no justification is a bug in one of the
//! sides — the audit suite pins all thirteen (secret-free) benchmarks plus
//! the [`workloads::gather_attack`] kernel at zero unexplained.
//!
//! A PASS does **not** mean "no leak": for the attack workload both sides
//! *agree* the speculative-gather gadget fires, and that agreement is what
//! passes. FAIL means the static lint and the dynamic oracle disagree.

use sim_isa::{Cpu, FxHashMap, SparseMemory};
use sim_lint::{analyze_taint, LeakKind};
use sim_mem::TaintFill;
use workloads::{gather_attack, Benchmark, SizeClass, Workload};

use crate::config::{SimConfig, Technique};
use crate::runner::simulate;

/// The ways static leak prediction and dynamic observation can disagree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeakDivergenceKind {
    /// Static flagged a speculative-gather gadget, but neither VR nor DVR
    /// ever filled a line through it.
    GadgetNeverFired,
    /// A runahead engine filled a line through a secret-derived address at
    /// a pc the static pass did not flag as a gadget.
    UnpredictedFill,
    /// The baseline (no-prefetch) run recorded a secret-tainted fill —
    /// structurally impossible (only runahead engines feed the log), so
    /// always unexplained.
    BaselineFill,
    /// A static gadget pc that the architectural replay never observed
    /// transmitting (no secret-tainted address ever reached it).
    GadgetNotArchitectural,
}

impl std::fmt::Display for LeakDivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LeakDivergenceKind::GadgetNeverFired => "gadget-never-fired",
            LeakDivergenceKind::UnpredictedFill => "unpredicted-fill",
            LeakDivergenceKind::BaselineFill => "baseline-fill",
            LeakDivergenceKind::GadgetNotArchitectural => "gadget-not-architectural",
        })
    }
}

/// A typed explanation for a [`LeakDivergence`]: a known, documented gap
/// between the static model, the runahead dynamics, and the architectural
/// replay. Anything the audit cannot justify counts as *unexplained*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeakJustification {
    /// The runahead engine never spawned a vectorized chain inside the ROI
    /// (the DVR trace records zero spawns), so no transient gather could
    /// have happened — the gadget is real but dormant at this ROI/input.
    NoSpawnInRoi,
    /// The fill's pc carries a warning-severity static finding (a
    /// secret-addressed load) but the coverage predictor did not expect
    /// VR/DVR to vectorize it; the engine vectorized it anyway (warm
    /// detector, bimodal shadowing — the documented coverage gaps).
    CoverageUnderPredicted,
    /// The gadget sits on a path the program never executed with this
    /// input (the static pass is a may-analysis over all paths).
    DeadStaticPath,
}

impl std::fmt::Display for LeakJustification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LeakJustification::NoSpawnInRoi => "no-spawn-in-roi",
            LeakJustification::CoverageUnderPredicted => "coverage-under-predicted",
            LeakJustification::DeadStaticPath => "dead-static-path",
        })
    }
}

/// One static/dynamic disagreement about leakage, with its (attempted)
/// explanation.
#[derive(Clone, Debug)]
pub struct LeakDivergence {
    /// What kind of disagreement.
    pub kind: LeakDivergenceKind,
    /// The transmitting pc it concerns.
    pub pc: usize,
    /// Human-readable specifics (fill counts, techniques).
    pub detail: String,
    /// The typed explanation, or `None` = unexplained (a bug).
    pub justification: Option<LeakJustification>,
}

/// Aggregated secret-tainted fills for one technique: per transmitting pc,
/// the fill count and the number of *distinct* cache lines touched (the
/// side-channel capacity proxy).
#[derive(Clone, Debug, Default)]
pub struct FillSummary {
    /// `(pc, fills, distinct_lines)`, pc-ascending.
    pub per_pc: Vec<(usize, u64, usize)>,
}

impl FillSummary {
    fn from_log(log: &[TaintFill]) -> Self {
        let mut counts: FxHashMap<usize, (u64, FxHashMap<u64, ()>)> = FxHashMap::default();
        for f in log {
            let e = counts.entry(f.pc).or_default();
            e.0 += 1;
            e.1.insert(f.line, ());
        }
        let mut per_pc: Vec<(usize, u64, usize)> =
            counts.into_iter().map(|(pc, (n, lines))| (pc, n, lines.len())).collect();
        per_pc.sort_unstable();
        FillSummary { per_pc }
    }

    /// Total fills at `pc` (0 if the pc never transmitted).
    pub fn fills_at(&self, pc: usize) -> u64 {
        self.per_pc.iter().find(|&&(p, _, _)| p == pc).map_or(0, |&(_, n, _)| n)
    }

    fn render(&self) -> String {
        if self.per_pc.is_empty() {
            return "(none)".to_string();
        }
        self.per_pc
            .iter()
            .map(|&(pc, n, lines)| format!("pc={pc} fills={n} lines={lines}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Architectural ground truth from the functional taint replay.
#[derive(Clone, Debug, Default)]
pub struct ArchTaint {
    /// Loads that read a declared secret range.
    pub secret_reads: u64,
    /// Memory accesses through a secret-tainted address.
    pub tainted_addr_accesses: u64,
    /// Conditional branches on a secret-tainted register.
    pub tainted_branches: u64,
    /// `(pc, count)` of transmitting accesses, pc-ascending.
    pub transmit_pcs: Vec<(usize, u64)>,
}

/// The leak-audit result for one workload.
#[derive(Clone, Debug)]
pub struct LeakAuditReport {
    /// Workload name.
    pub bench: String,
    /// Input seed used on all sides.
    pub seed: u64,
    /// ROI length of the simulated and replayed runs.
    pub instrs: u64,
    /// Static secret-source pcs.
    pub sources: Vec<usize>,
    /// Static speculative-gather-gadget pcs (error severity).
    pub gadgets: Vec<usize>,
    /// Static warning-severity findings (transmitters the coverage
    /// predictor does not expect to vectorize), pc-ascending.
    pub warned: Vec<usize>,
    /// Architectural replay summary (`None` = skipped, no secrets).
    pub arch: Option<ArchTaint>,
    /// Fill summaries per technique, `None` = dynamic side skipped
    /// because the program declares no secrets (the oracle is then
    /// structurally silent: taint seeds only from declared ranges).
    pub fills: Option<[(Technique, FillSummary); 3]>,
    /// Every disagreement found.
    pub divergences: Vec<LeakDivergence>,
}

impl LeakAuditReport {
    /// Divergences with no typed justification.
    pub fn unexplained(&self) -> usize {
        self.divergences.iter().filter(|d| d.justification.is_none()).count()
    }

    /// Whether every divergence is explained.
    pub fn is_clean(&self) -> bool {
        self.unexplained() == 0
    }

    /// Whether the *dynamic oracle* confirmed at least one static gadget
    /// (a fill at a gadget pc under VR or DVR).
    pub fn confirmed_gadgets(&self) -> usize {
        let Some(fills) = &self.fills else { return 0 };
        self.gadgets
            .iter()
            .filter(|&&g| fills.iter().any(|(t, s)| *t != Technique::Baseline && s.fills_at(g) > 0))
            .count()
    }

    /// Deterministic multi-line report (the golden-pinned format).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "leak-audit {}: seed={} instrs={}", self.bench, self.seed, self.instrs);
        let _ = writeln!(
            s,
            "static: sources={:?} gadgets={:?} warned={:?}",
            self.sources, self.gadgets, self.warned
        );
        match &self.arch {
            None => {
                let _ = writeln!(s, "architectural: skipped (no secrets declared)");
            }
            Some(a) => {
                let _ = writeln!(
                    s,
                    "architectural: secret-reads={} tainted-addrs={} tainted-branches={} \
                     transmits={:?}",
                    a.secret_reads, a.tainted_addr_accesses, a.tainted_branches, a.transmit_pcs
                );
            }
        }
        match &self.fills {
            None => {
                let _ = writeln!(s, "dynamic: skipped (no secrets declared)");
            }
            Some(fills) => {
                for (t, f) in fills {
                    let _ = writeln!(s, "fills {}: {}", t.name(), f.render());
                }
            }
        }
        let _ = writeln!(
            s,
            "divergences: {} total, {} unexplained",
            self.divergences.len(),
            self.unexplained()
        );
        for d in &self.divergences {
            let j =
                d.justification.map(|j| j.to_string()).unwrap_or_else(|| "UNEXPLAINED".to_string());
            let _ = writeln!(s, "  [{}] pc={} {} :: {}", d.kind, d.pc, d.detail, j);
        }
        let _ = writeln!(s, "{}", if self.is_clean() { "PASS" } else { "FAIL" });
        s
    }

    /// Flat JSON object for `dvrsim leak-audit --json` (hand-rolled, like
    /// [`AuditReport::to_json`](crate::AuditReport::to_json)).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            concat!(
                "{{\"bench\":\"{}\",\"seed\":{},\"instrs\":{},",
                "\"sources\":{:?},\"gadgets\":{:?},\"warned\":{:?},",
                "\"confirmed_gadgets\":{},\"fills\":"
            ),
            self.bench,
            self.seed,
            self.instrs,
            self.sources,
            self.gadgets,
            self.warned,
            self.confirmed_gadgets(),
        );
        match &self.fills {
            None => s.push_str("null"),
            Some(fills) => {
                s.push('{');
                for (i, (t, f)) in fills.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":[", t.name());
                    for (j, &(pc, n, lines)) in f.per_pc.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        let _ =
                            write!(s, "{{\"pc\":{pc},\"fills\":{n},\"distinct_lines\":{lines}}}");
                    }
                    s.push(']');
                }
                s.push('}');
            }
        }
        s.push_str(",\"divergences\":[");
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let j =
                d.justification.map(|j| format!("\"{j}\"")).unwrap_or_else(|| "null".to_string());
            let _ = write!(
                s,
                "{{\"kind\":\"{}\",\"pc\":{},\"justification\":{},\"detail\":\"{}\"}}",
                d.kind,
                d.pc,
                j,
                d.detail.replace('\\', "\\\\").replace('"', "\\\""),
            );
        }
        let _ = write!(s, "],\"unexplained\":{}}}", self.unexplained());
        s
    }
}

/// Runs the full leak audit for one workload: static taint pass,
/// oracle-armed simulations under Baseline/VR/DVR, architectural replay,
/// and the diff.
pub fn leak_audit_workload(wl: &Workload, seed: u64, instrs: u64) -> LeakAuditReport {
    // Static side.
    let taint = analyze_taint(&wl.prog);
    let gadgets = taint.gadget_pcs();
    let mut warned: Vec<usize> = taint
        .leaks
        .iter()
        .filter(|d| d.kind == LeakKind::SecretAddressedLoad)
        .map(|d| d.pc)
        .collect();
    warned.sort_unstable();
    warned.dedup();

    if wl.prog.secrets().is_empty() {
        // The oracle seeds taint exclusively from declared ranges, so both
        // dynamic sides are structurally silent; running them would only
        // burn cycles to confirm a tautology.
        return LeakAuditReport {
            bench: wl.name.clone(),
            seed,
            instrs,
            sources: taint.sources,
            gadgets,
            warned,
            arch: None,
            fills: None,
            divergences: Vec::new(),
        };
    }

    // Dynamic side: oracle-armed runs. The DVR run also records the event
    // trace so "never spawned" divergences can be justified from evidence.
    let run = |t: Technique, trace: bool| {
        let cfg = SimConfig::new(t)
            .with_max_instructions(instrs)
            .with_taint_oracle(true)
            .with_dvr_trace(trace);
        simulate(wl, &cfg)
    };
    let base = run(Technique::Baseline, false);
    let vr = run(Technique::Vr, false);
    let dvr = run(Technique::Dvr, true);
    let summary =
        |r: &crate::SimReport| FillSummary::from_log(r.taint_fills.as_deref().unwrap_or(&[]));
    let fills = [
        (Technique::Baseline, summary(&base)),
        (Technique::Vr, summary(&vr)),
        (Technique::Dvr, summary(&dvr)),
    ];
    let dvr_spawns: u64 = dvr
        .dvr_trace
        .as_ref()
        .map(|t| t.summarize().values().map(|s| s.spawns + s.nested_spawns).sum())
        .unwrap_or(0);

    // Architectural ground truth: functional replay with the same budget.
    let mut cpu = Cpu::new();
    cpu.enable_secret_taint();
    let mut mem: SparseMemory = wl.mem.clone();
    cpu.run(&wl.prog, &mut mem, instrs).expect("functional replay executes");
    let arch = cpu
        .take_secret_taint()
        .map(|t| ArchTaint {
            secret_reads: t.secret_reads,
            tainted_addr_accesses: t.tainted_addr_accesses,
            tainted_branches: t.tainted_branches,
            transmit_pcs: t.transmit_pcs(),
        })
        .unwrap_or_default();

    let divergences = diff(&gadgets, &warned, &arch, &fills, dvr_spawns);
    LeakAuditReport {
        bench: wl.name.clone(),
        seed,
        instrs,
        sources: taint.sources,
        gadgets,
        warned,
        arch: Some(arch),
        fills: Some(fills),
        divergences,
    }
}

/// [`leak_audit_workload`] for a registered benchmark.
pub fn leak_audit_benchmark(
    bench: Benchmark,
    size: SizeClass,
    seed: u64,
    instrs: u64,
) -> LeakAuditReport {
    leak_audit_workload(&bench.build(None, size, seed), seed, instrs)
}

/// [`leak_audit_workload`] for the secret-dependent-gather attack kernel
/// (the workload the audit exists to flag; not part of the benchmark
/// registry).
pub fn leak_audit_attack(size: SizeClass, seed: u64, instrs: u64) -> LeakAuditReport {
    leak_audit_workload(&gather_attack(size, seed), seed, instrs)
}

/// Diffs the static findings against the dynamic fill logs and the
/// architectural replay, classifying every disagreement.
fn diff(
    gadgets: &[usize],
    warned: &[usize],
    arch: &ArchTaint,
    fills: &[(Technique, FillSummary); 3],
    dvr_spawns: u64,
) -> Vec<LeakDivergence> {
    let mut out = Vec::new();
    let fill_at = |t: Technique, pc: usize| {
        fills.iter().find(|&&(tt, _)| tt == t).map_or(0, |(_, s)| s.fills_at(pc))
    };

    for &g in gadgets {
        let vr = fill_at(Technique::Vr, g);
        let dvr = fill_at(Technique::Dvr, g);
        let arch_hits = arch.transmit_pcs.iter().find(|&&(p, _)| p == g).map_or(0, |&(_, n)| n);
        if vr == 0 && dvr == 0 {
            out.push(LeakDivergence {
                kind: LeakDivergenceKind::GadgetNeverFired,
                pc: g,
                detail: format!("vr=0 dvr=0 dvr-spawns={dvr_spawns}"),
                justification: (dvr_spawns == 0).then_some(LeakJustification::NoSpawnInRoi),
            });
        }
        if arch_hits == 0 {
            out.push(LeakDivergence {
                kind: LeakDivergenceKind::GadgetNotArchitectural,
                pc: g,
                detail: format!("vr={vr} dvr={dvr} arch=0"),
                // A dormant may-path gadget is explainable; a pc the
                // runahead engine transmitted through but the replay never
                // did contradicts the oracle itself.
                justification: (vr == 0 && dvr == 0).then_some(LeakJustification::DeadStaticPath),
            });
        }
    }

    // Fills the static pass has no gadget for.
    for &(t, ref s) in fills {
        for &(pc, n, lines) in &s.per_pc {
            if t == Technique::Baseline {
                out.push(LeakDivergence {
                    kind: LeakDivergenceKind::BaselineFill,
                    pc,
                    detail: format!("fills={n} lines={lines} under {}", t.name()),
                    justification: None,
                });
            } else if !gadgets.contains(&pc) {
                out.push(LeakDivergence {
                    kind: LeakDivergenceKind::UnpredictedFill,
                    pc,
                    detail: format!("fills={n} lines={lines} under {}", t.name()),
                    justification: warned
                        .contains(&pc)
                        .then_some(LeakJustification::CoverageUnderPredicted),
                });
            }
        }
    }

    out.sort_by_key(|d| (d.pc, d.kind as usize));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_workload_fires_under_both_runahead_engines() {
        let r = leak_audit_attack(SizeClass::Test, 42, 60_000);
        println!("{}", r.render());
        assert_eq!(r.gadgets.len(), 1, "one static gather gadget");
        let fills = r.fills.as_ref().expect("dynamic side ran");
        let g = r.gadgets[0];
        for (t, s) in fills {
            match t {
                Technique::Baseline => {
                    assert!(s.per_pc.is_empty(), "baseline must never fill: {:?}", s.per_pc)
                }
                _ => assert!(s.fills_at(g) > 0, "{} recorded no fills at gadget pc {g}", t.name()),
            }
        }
        assert_eq!(r.confirmed_gadgets(), 1);
        assert!(r.is_clean(), "audit must explain itself:\n{}", r.render());
    }

    #[test]
    fn secret_free_benchmark_short_circuits() {
        let r = leak_audit_benchmark(Benchmark::Camel, SizeClass::Test, 42, 60_000);
        assert!(r.fills.is_none() && r.arch.is_none());
        assert!(r.gadgets.is_empty() && r.divergences.is_empty());
        assert!(r.is_clean());
        assert!(r.render().contains("dynamic: skipped"));
    }
}
