//! Multi-programmed multi-core simulation.
//!
//! Builds on three substrates: the deterministic discrete-event scheduler
//! ([`sim_multi::Scheduler`]), the per-cycle core step API
//! ([`sim_ooo::OooCore::step_cycle`]), and the shared-L3/DRAM state
//! ([`sim_mem::SharedLlc`]). Each core of a [`MixSpec`] runs its own
//! workload with private L1/L2 in front of one shared L3 and one shared
//! DRAM bandwidth calendar, so co-running programs contend for capacity
//! and bandwidth exactly as the paper's Table 1 system would.
//!
//! Determinism: every component reschedules itself at a fixed integer
//! tick, the scheduler breaks ties by component id, and nothing here reads
//! the wall clock — a mix report serializes byte-identically across
//! re-runs and host thread counts ([`MixReport::to_json`] pins per-core
//! `host_seconds` to zero for exactly this reason).
//!
//! ## Example
//!
//! ```
//! use dvr_sim::{simulate_mix, MixSpec, SimConfig, Technique};
//! use workloads::SizeClass;
//!
//! let spec = MixSpec::parse("bfs/UR:dvr,NAS-IS:ooo", Technique::Baseline).unwrap();
//! let base = SimConfig::new(Technique::Baseline).with_max_instructions(10_000);
//! let mix = simulate_mix(&spec, SizeClass::Test, 42, &base);
//! assert_eq!(mix.cores.len(), 2);
//! assert!(mix.aggregate_ipc > 0.0);
//! ```

use std::cell::Cell;
use std::rc::Rc;

use sim_isa::{Program, SparseMemory};
use sim_mem::{MemoryHierarchy, SharedCoreCounters, SharedLlc, SharedLlcHandle};
use sim_multi::{Component, Scheduler, Tick};
use sim_ooo::{OooCore, SanitizeReport, SimError, Step, StepSession};
use workloads::{Benchmark, GraphInput, SizeClass, Workload};

use crate::config::{SimConfig, Technique};
use crate::report::{escape_json, RunOutcome, SimReport};
use crate::runner::{digest_check, AnyEngine};

/// How often (in core cycles) the shared-LLC component sweeps the
/// provenance invariant under `--sanitize`. Matches the deep-sweep cadence
/// of the core sanitizer (every 4096 cycles) so mixes stay fast.
const LLC_SWEEP_PERIOD: u64 = 4096;

/// One core of a mix driven as a scheduler [`Component`]: owns the step
/// session and ticks [`OooCore::step_cycle`] once per event.
///
/// Also used by the single-core [`crate::simulate`] path (n = 1), which is
/// how the refactor keeps one code path for both.
pub(crate) struct CoreComponent<'a> {
    core: &'a mut OooCore,
    prog: &'a Program,
    mem: &'a mut SparseMemory,
    hier: &'a mut MemoryHierarchy,
    engine: &'a mut AnyEngine,
    session: Option<StepSession>,
    error: Option<SimError>,
    /// Count of still-running cores, shared with the LLC component so it
    /// knows when to stop sweeping. `None` on the single-core path.
    live: Option<Rc<Cell<usize>>>,
}

impl<'a> CoreComponent<'a> {
    /// Opens the core's run session. A core that cannot start (e.g. a
    /// reused core) records the error and reports [`Tick::Done`] on its
    /// first tick, mirroring [`OooCore::run`]'s early return.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        core: &'a mut OooCore,
        prog: &'a Program,
        mem: &'a mut SparseMemory,
        hier: &'a mut MemoryHierarchy,
        engine: &'a mut AnyEngine,
        max_instrs: u64,
        live: Option<Rc<Cell<usize>>>,
    ) -> Self {
        let (session, error) = match core.begin_run(max_instrs) {
            Ok(s) => (Some(s), None),
            Err(e) => (None, Some(e)),
        };
        if session.is_none() {
            if let Some(live) = &live {
                live.set(live.get() - 1);
            }
        }
        CoreComponent { core, prog, mem, hier, engine, session, error, live }
    }

    /// End-of-session bookkeeping: final accounting on the core and one
    /// fewer live core for the LLC sweeper.
    fn retire(&mut self) {
        self.session = None;
        self.core.finish_run(self.hier);
        if let Some(live) = &self.live {
            live.set(live.get() - 1);
        }
    }

    /// The run outcome, in [`crate::simulate`]'s terms. Call after the
    /// scheduler drains.
    pub(crate) fn take_outcome(&mut self) -> RunOutcome {
        match self.error.take() {
            Some(e) => RunOutcome::Failed(e),
            None => RunOutcome::Complete,
        }
    }
}

impl Component for CoreComponent<'_> {
    fn tick(&mut self, now: u64) -> Tick {
        let Some(session) = self.session.as_mut() else {
            return Tick::Done;
        };
        match self.core.step_cycle(self.prog, self.mem, self.hier, &mut *self.engine, session) {
            Ok(Step::Running) => Tick::Reschedule(now + 1),
            Ok(Step::Done) => {
                self.retire();
                Tick::Done
            }
            Err(e) => {
                self.error = Some(e);
                self.retire();
                Tick::Done
            }
        }
    }
}

/// The shared L3 + DRAM as a scheduler component: periodically sweeps the
/// prefetch-provenance invariant (under `--sanitize`) and retires once
/// every core has.
struct LlcComponent {
    shared: SharedLlcHandle,
    live: Rc<Cell<usize>>,
    sanitize: bool,
    san: SanitizeReport,
}

impl Component for LlcComponent {
    fn tick(&mut self, now: u64) -> Tick {
        if self.sanitize {
            let msgs = self.shared.borrow().check_invariants();
            self.san.check(msgs.is_empty(), || format!("shared L3: {}", msgs.join("; ")));
        }
        if self.live.get() == 0 {
            // The last core retired before this tick, so this sweep covered
            // the final shared state.
            Tick::Done
        } else {
            Tick::Reschedule(now + LLC_SWEEP_PERIOD)
        }
    }
}

/// A malformed mix configuration string.
///
/// Typed (not a panic) so the CLI can print the offending entry with a
/// hint instead of a backtrace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// The spec had no entries (empty string or only separators).
    EmptySpec,
    /// One entry could not be parsed; `reason` says why.
    BadEntry {
        /// The entry as written.
        entry: String,
        /// Human-readable reason with the accepted spellings.
        reason: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptySpec => {
                write!(f, "empty mix spec (expected comma-separated bench[/input][:technique])")
            }
            ConfigError::BadEntry { entry, reason } => {
                write!(f, "bad mix entry {entry:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One core's program in a multi-programmed mix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MixCore {
    /// The benchmark this core runs.
    pub bench: Benchmark,
    /// Graph input for GAP benchmarks (`None` = the benchmark's default).
    pub input: Option<GraphInput>,
    /// The technique this core runs under.
    pub technique: Technique,
}

impl MixCore {
    /// `bench[/input]:TECH`, e.g. `bfs/UR:DVR`.
    pub fn label(&self) -> String {
        let input = self.input.map(|g| format!("/{}", g.name())).unwrap_or_default();
        format!("{}{input}:{}", self.bench.name(), self.technique.name())
    }
}

/// A multi-programmed workload mix: one [`MixCore`] per simulated core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MixSpec {
    /// Per-core programs, in core-id order.
    pub cores: Vec<MixCore>,
}

impl MixSpec {
    /// Parses a comma-separated mix spec. Each entry is
    /// `bench[/input][:technique]`: `bench` is a [`Benchmark::name`]
    /// spelling, `input` a [`GraphInput::name`] spelling (GAP benchmarks
    /// only), and `technique` a [`Technique::parse`] spelling (defaulting
    /// to `default_technique`). All matching is case-insensitive.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first offending entry.
    pub fn parse(spec: &str, default_technique: Technique) -> Result<MixSpec, ConfigError> {
        let mut cores = Vec::new();
        for raw in spec.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (wl, technique) = match entry.split_once(':') {
                None => (entry, default_technique),
                Some((wl, t)) => {
                    let technique = Technique::parse(t).ok_or_else(|| ConfigError::BadEntry {
                        entry: entry.to_string(),
                        reason: format!(
                            "unknown technique {t:?} (expected ooo, pre, imp, vr, dvr, \
                             dvr-offload, dvr-discovery, or oracle)"
                        ),
                    })?;
                    (wl, technique)
                }
            };
            let (bench_name, input) = match wl.split_once('/') {
                None => (wl, None),
                Some((b, g)) => {
                    let input = GraphInput::parse(g).ok_or_else(|| ConfigError::BadEntry {
                        entry: entry.to_string(),
                        reason: format!(
                            "unknown graph input {g:?} (expected KR, LJN, ORK, TW, or UR)"
                        ),
                    })?;
                    (b, Some(input))
                }
            };
            let bench = Benchmark::parse(bench_name).ok_or_else(|| ConfigError::BadEntry {
                entry: entry.to_string(),
                reason: format!(
                    "unknown benchmark {bench_name:?} (expected one of {})",
                    Benchmark::ALL.map(Benchmark::name).join(", ")
                ),
            })?;
            if input.is_some() && !bench.is_gap() {
                return Err(ConfigError::BadEntry {
                    entry: entry.to_string(),
                    reason: format!("benchmark {:?} takes no graph input", bench.name()),
                });
            }
            cores.push(MixCore { bench, input, technique });
        }
        if cores.is_empty() {
            return Err(ConfigError::EmptySpec);
        }
        Ok(MixSpec { cores })
    }

    /// A default `n`-core mix rotating through the 13 benchmarks in paper
    /// order, every core under `technique`.
    pub fn round_robin(n: usize, technique: Technique) -> MixSpec {
        let cores = (0..n)
            .map(|i| MixCore {
                bench: Benchmark::ALL[i % Benchmark::ALL.len()],
                input: None,
                technique,
            })
            .collect();
        MixSpec { cores }
    }

    /// Per-core labels joined with `+`, e.g. `bfs:DVR+NAS-IS:OoO`.
    pub fn label(&self) -> String {
        self.cores.iter().map(MixCore::label).collect::<Vec<_>>().join("+")
    }
}

/// The result of one multi-programmed mix run.
#[derive(Clone, Debug)]
pub struct MixReport {
    /// The mix's [`MixSpec::label`].
    pub label: String,
    /// Per-core reports, in core-id order. `host_seconds` is pinned to
    /// zero (the scheduler interleaves cores, so per-core wall time is
    /// meaningless — and the pin keeps mix JSON byte-identical across
    /// re-runs).
    pub cores: Vec<SimReport>,
    /// Per-core shared-L3/DRAM contention counters, in core-id order.
    pub shared: Vec<SharedCoreCounters>,
    /// Shared-LLC provenance-invariant ledger (`Some` only when the base
    /// config enables the sanitizer). Per-core ledgers live in
    /// [`SimReport::sanitizer`]. Deliberately **not** part of
    /// [`MixReport::to_json`], matching the single-core convention.
    pub shared_sanitizer: Option<SanitizeReport>,
    /// Mix makespan: the slowest core's cycle count.
    pub cycles: u64,
    /// Sum of per-core IPCs (raw aggregate throughput).
    pub aggregate_ipc: f64,
}

impl MixReport {
    /// Serializes the mix report as one JSON object (for scripting around
    /// `dvrsim mix --json`). Deterministic: contains no wall-clock fields.
    pub fn to_json(&self) -> String {
        let per_core: Vec<String> = self.cores.iter().map(SimReport::to_json).collect();
        let shared: Vec<String> = self
            .shared
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"l3_hits\":{},\"l3_fills\":{},\"dram_reads\":{},",
                        "\"dram_writebacks\":{},\"prov_installed\":{},\"prov_evicted\":{},",
                        "\"cross_core_hits\":{}}}"
                    ),
                    c.l3_hits,
                    c.l3_fills,
                    c.dram_reads,
                    c.dram_writebacks,
                    c.prov_installed,
                    c.prov_evicted,
                    c.cross_core_hits,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"mix\":\"{}\",\"cores\":{},\"cycles\":{},\"aggregate_ipc\":{:.6},",
                "\"per_core\":[{}],\"shared\":[{}]}}"
            ),
            escape_json(&self.label),
            self.cores.len(),
            self.cycles,
            self.aggregate_ipc,
            per_core.join(","),
            shared.join(","),
        )
    }
}

/// Throughput and fairness of a mix relative to solo runs (the standard
/// multi-programmed metrics).
#[derive(Clone, PartialEq, Debug)]
pub struct MixEvaluation {
    /// System throughput (STP): sum of per-core normalized progress,
    /// `Σ mix_ipc_i / solo_ipc_i`. Equals the core count when sharing
    /// costs nothing.
    pub throughput: f64,
    /// Harmonic mean of per-core slowdowns (`solo_ipc / mix_ipc`); `1.0`
    /// is perfectly fair and contention-free, larger is worse.
    pub fairness: f64,
    /// Per-core slowdowns, in core-id order.
    pub slowdowns: Vec<f64>,
}

/// Evaluates a mix against per-core solo runs (same workload, technique,
/// and instruction budget on a private hierarchy).
///
/// A core with no measurable IPC (a failed cell) contributes zero
/// progress and an infinite slowdown.
///
/// # Panics
///
/// Panics if `solo` does not have one report per mix core.
pub fn evaluate_mix(mix: &MixReport, solo: &[SimReport]) -> MixEvaluation {
    assert_eq!(mix.cores.len(), solo.len(), "one solo baseline per mix core");
    let mut throughput = 0.0;
    let slowdowns: Vec<f64> = mix
        .cores
        .iter()
        .zip(solo)
        .map(|(m, s)| {
            if s.ipc > 0.0 {
                throughput += m.ipc / s.ipc;
            }
            if m.ipc > 0.0 {
                s.ipc / m.ipc
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let inv_sum: f64 = slowdowns.iter().map(|s| 1.0 / s).sum();
    let fairness = if inv_sum > 0.0 { slowdowns.len() as f64 / inv_sum } else { f64::INFINITY };
    MixEvaluation { throughput, fairness, slowdowns }
}

/// Runs a multi-programmed mix: one [`OooCore`] per [`MixCore`], private
/// L1/L2 each, one shared L3 + DRAM, all driven in lockstep-equivalent
/// order by the event scheduler (cores tick in core-id order within a
/// cycle; the shared-LLC sweeper ticks last).
///
/// `base` supplies everything but the per-core technique: hierarchy
/// geometry, instruction budget, sanitizer/oracle knobs. Per-core configs
/// are `base` with the entry's technique applied (including the IMP
/// prefetcher flag, as [`SimConfig::new`] would).
///
/// The run is deterministic and single-threaded; the report carries no
/// wall-clock state, so its JSON is byte-identical across re-runs.
pub fn simulate_mix(spec: &MixSpec, size: SizeClass, seed: u64, base: &SimConfig) -> MixReport {
    assert!(!spec.cores.is_empty(), "mix must have at least one core");
    let n = spec.cores.len();
    let cfgs: Vec<SimConfig> = spec
        .cores
        .iter()
        .map(|c| {
            let mut cfg = *base;
            cfg.technique = c.technique;
            cfg.core.imp_prefetcher = c.technique == Technique::Imp;
            cfg
        })
        .collect();
    let workloads: Vec<Workload> =
        spec.cores.iter().map(|c| c.bench.build(c.input, size, seed)).collect();

    let shared = SharedLlc::new_handle(base.hierarchy.l3, base.hierarchy.dram);
    let mut mems: Vec<SparseMemory> = workloads.iter().map(|w| w.mem.clone()).collect();
    let mut hiers: Vec<MemoryHierarchy> = cfgs
        .iter()
        .map(|cfg| {
            let mut h = MemoryHierarchy::attach_shared(cfg.hierarchy, &shared);
            if cfg.taint_oracle {
                h.enable_taint_log();
            }
            if cfg.bounds_oracle {
                h.enable_spec_extents();
            }
            h
        })
        .collect();
    let mut cores: Vec<OooCore> = cfgs.iter().map(|cfg| OooCore::new(cfg.core)).collect();
    let mut engines: Vec<AnyEngine> = cfgs.iter().map(AnyEngine::for_config).collect();

    let sanitize = cfgs.iter().any(|c| c.core.sanitize);
    let live = Rc::new(Cell::new(n));
    let mut llc = LlcComponent {
        shared: Rc::clone(&shared),
        live: Rc::clone(&live),
        sanitize,
        san: SanitizeReport::default(),
    };

    let mut comps: Vec<CoreComponent<'_>> = cores
        .iter_mut()
        .zip(mems.iter_mut())
        .zip(hiers.iter_mut())
        .zip(engines.iter_mut())
        .zip(cfgs.iter().zip(workloads.iter()))
        .map(|((((core, mem), hier), engine), (cfg, wl))| {
            CoreComponent::new(
                core,
                &wl.prog,
                mem,
                hier,
                engine,
                cfg.max_instructions,
                Some(Rc::clone(&live)),
            )
        })
        .collect();

    let mut sched = Scheduler::new();
    {
        let mut slots: Vec<&mut dyn Component> =
            comps.iter_mut().map(|c| c as &mut dyn Component).collect();
        slots.push(&mut llc);
        for id in 0..slots.len() as u32 {
            sched.schedule(0, id);
        }
        sched.run(&mut slots);
    }
    let outcomes: Vec<RunOutcome> = comps.iter_mut().map(CoreComponent::take_outcome).collect();
    drop(comps);

    let mut reports = Vec::with_capacity(n);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let core = &mut cores[i];
        let hier = &mut hiers[i];
        let wl = &workloads[i];
        let cfg = &cfgs[i];
        let sanitizer = if cfg.core.sanitize {
            let digest = digest_check(wl, core, &mems[i]);
            core.sanitize_report_mut().merge(&digest);
            Some(core.sanitize_report().clone())
        } else {
            None
        };
        let core_stats = *core.stats();
        let cycles = core_stats.cycles.max(1);
        reports.push(SimReport {
            technique: cfg.technique,
            workload: wl.name.clone(),
            ipc: core_stats.ipc(),
            mlp: hier.mshr_busy_integral() as f64 / cycles as f64,
            simulated_instructions: core_stats.committed,
            host_seconds: 0.0,
            sampling: None,
            core: core_stats,
            mem: hier.stats().clone(),
            engine: engines[i].summary(),
            outcome,
            sanitizer,
            dvr_trace: engines[i].take_trace(),
            taint_fills: hier.take_taint_log(),
            spec_extents: hier.take_spec_extents(),
        });
    }

    let shared_counters: Vec<SharedCoreCounters> = {
        let sh = shared.borrow();
        (0..n as u32).map(|i| sh.counters(i)).collect()
    };
    let cycles = reports.iter().map(|r| r.core.cycles).max().unwrap_or(0);
    let aggregate_ipc = reports.iter().map(|r| r.ipc).sum();
    MixReport {
        label: spec.label(),
        cores: reports,
        shared: shared_counters,
        shared_sanitizer: sanitize.then_some(llc.san),
        cycles,
        aggregate_ipc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_entries() {
        let spec = MixSpec::parse("bfs/UR:dvr, NAS-IS:ooo ,Camel", Technique::Vr).unwrap();
        assert_eq!(spec.cores.len(), 3);
        assert_eq!(spec.cores[0].bench, Benchmark::Bfs);
        assert_eq!(spec.cores[0].input, Some(GraphInput::Ur));
        assert_eq!(spec.cores[0].technique, Technique::Dvr);
        assert_eq!(spec.cores[1].bench, Benchmark::NasIs);
        assert_eq!(spec.cores[1].technique, Technique::Baseline);
        assert_eq!(spec.cores[2].technique, Technique::Vr, "default technique applies");
        assert_eq!(spec.label(), "bfs/UR:DVR+NAS-IS:OoO+Camel:VR");
    }

    #[test]
    fn parse_is_case_insensitive() {
        let spec = MixSpec::parse("BFS/kr:DVR", Technique::Baseline).unwrap();
        assert_eq!(spec.cores[0].bench, Benchmark::Bfs);
        assert_eq!(spec.cores[0].input, Some(GraphInput::Kr));
    }

    #[test]
    fn parse_rejects_unknowns_with_typed_errors() {
        let bad_bench = MixSpec::parse("nope:dvr", Technique::Dvr).unwrap_err();
        assert!(
            matches!(&bad_bench, ConfigError::BadEntry { reason, .. }
            if reason.contains("unknown benchmark")),
            "{bad_bench}"
        );
        let bad_tech = MixSpec::parse("bfs:warp", Technique::Dvr).unwrap_err();
        assert!(
            matches!(&bad_tech, ConfigError::BadEntry { reason, .. }
            if reason.contains("unknown technique")),
            "{bad_tech}"
        );
        let bad_input = MixSpec::parse("bfs/XX", Technique::Dvr).unwrap_err();
        assert!(
            matches!(&bad_input, ConfigError::BadEntry { reason, .. }
            if reason.contains("unknown graph input")),
            "{bad_input}"
        );
        let input_on_hpcdb = MixSpec::parse("Camel/KR", Technique::Dvr).unwrap_err();
        assert!(
            matches!(&input_on_hpcdb, ConfigError::BadEntry { reason, .. }
            if reason.contains("takes no graph input")),
            "{input_on_hpcdb}"
        );
        assert_eq!(MixSpec::parse(" , ,", Technique::Dvr).unwrap_err(), ConfigError::EmptySpec);
        assert!(!format!("{}", ConfigError::EmptySpec).is_empty());
    }

    #[test]
    fn round_robin_rotates_the_registry() {
        let spec = MixSpec::round_robin(15, Technique::Dvr);
        assert_eq!(spec.cores.len(), 15);
        assert_eq!(spec.cores[0].bench, Benchmark::Bc);
        assert_eq!(spec.cores[13].bench, Benchmark::Bc, "wraps after 13");
        assert!(spec.cores.iter().all(|c| c.technique == Technique::Dvr));
    }

    #[test]
    fn evaluation_math() {
        let spec = MixSpec::parse("bfs,pr", Technique::Baseline).unwrap();
        let base = SimConfig::new(Technique::Baseline).with_max_instructions(5_000);
        let mix = simulate_mix(&spec, SizeClass::Test, 7, &base);
        // Synthetic solo baselines: core 0 ran at 2x the mix speed, core 1
        // at the same speed.
        let mut solo = mix.cores.clone();
        solo[0].ipc = 2.0 * mix.cores[0].ipc;
        let eval = evaluate_mix(&mix, &solo);
        assert!((eval.slowdowns[0] - 2.0).abs() < 1e-12);
        assert!((eval.slowdowns[1] - 1.0).abs() < 1e-12);
        assert!((eval.throughput - 1.5).abs() < 1e-12);
        // hmean(2, 1) = 4/3.
        assert!((eval.fairness - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mix_report_json_shape() {
        let spec = MixSpec::parse("NAS-IS:ooo,NAS-IS:ooo", Technique::Baseline).unwrap();
        let base = SimConfig::new(Technique::Baseline).with_max_instructions(5_000);
        let mix = simulate_mix(&spec, SizeClass::Test, 7, &base);
        let j = mix.to_json();
        assert!(j.contains("\"mix\":\"NAS-IS:OoO+NAS-IS:OoO\""), "{j}");
        assert!(j.contains("\"cores\":2"), "{j}");
        assert!(j.contains("\"per_core\":[{"), "{j}");
        assert!(j.contains("\"cross_core_hits\":"), "{j}");
        assert!(j.contains("\"host_seconds\":0.000000"), "deterministic JSON: {j}");
    }
}
