//! The static-vs-dynamic bounds audit.
//!
//! Closes the loop between `sim-lint`'s interval bounds verifier and two
//! dynamic observers: run [`check_bounds`] over a workload's program, run
//! the simulator under Baseline/VR/DVR with the hierarchy's
//! speculative-extent map armed, replay the program functionally with the
//! architectural [`sim_isa::BoundsTracker`], and diff the three views.
//!
//! The architectural side is a *soundness oracle*: every concrete address
//! an architectural access touches must lie inside the statically inferred
//! interval for that pc — an escape is a bug in the abstract interpreter,
//! never justified. The speculative side is looser by design: runahead
//! lanes execute with forced control flow and fixed-up registers, so their
//! extents may exceed the architectural interval; the audit classifies
//! each such escape and only an access that escapes a region it was
//! statically *proven* inside counts as unexplained.
//!
//! A PASS does **not** mean "in bounds": for the [`workloads::oob_gather`]
//! kernel both sides *agree* the accesses escape the declared footprint,
//! and that agreement is what passes (the CLI still exits nonzero on the
//! static errors). FAIL means the static verifier and the dynamics
//! disagree.

use sim_isa::Cpu;
use sim_lint::{check_bounds, BoundsReport, BoundsVerdict};
use workloads::{gather_attack, oob_gather, Benchmark, SizeClass, Workload};

use crate::config::{SimConfig, Technique};
use crate::runner::simulate;

/// The ways static bounds claims and dynamic observation can disagree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundsDivergenceKind {
    /// An architectural access escaped the static address interval for its
    /// pc (or executed a pc the analysis called unreachable) — a soundness
    /// bug in the abstract interpreter. Never justified.
    ArchEscapedInterval,
    /// An architectural access at a pc statically proven in-bounds escaped
    /// its proven region. Never justified (the proof was wrong).
    ArchEscapedRegion,
    /// A runahead access escaped the static interval for its pc.
    SpecEscapedInterval,
    /// The baseline (no-runahead) run recorded a speculative extent —
    /// structurally impossible (only runahead engines feed the map), so
    /// always unexplained.
    BaselineSpecAccess,
    /// A static error-severity bounds finding whose pc no dynamic side
    /// ever observed escaping the declared regions.
    OobNeverObserved,
}

impl std::fmt::Display for BoundsDivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BoundsDivergenceKind::ArchEscapedInterval => "arch-escaped-interval",
            BoundsDivergenceKind::ArchEscapedRegion => "arch-escaped-region",
            BoundsDivergenceKind::SpecEscapedInterval => "spec-escaped-interval",
            BoundsDivergenceKind::BaselineSpecAccess => "baseline-spec-access",
            BoundsDivergenceKind::OobNeverObserved => "oob-never-observed",
        })
    }
}

/// A typed explanation for a [`BoundsDivergence`]: a known, documented gap
/// between the static model and the dynamics. Anything the audit cannot
/// justify counts as *unexplained*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundsJustification {
    /// The speculative extent escaped the static interval but stayed
    /// inside the region the op was proven against: runahead lanes touch
    /// later iterations of the same footprint — the mechanism working as
    /// designed.
    WithinProvenRegion,
    /// The speculative extent still overlaps the proven region but runs
    /// past its edge: the engine spawns a full vector of lanes from the
    /// trigger without consulting the loop bound, so the last lanes
    /// overshoot the array by up to `lanes × stride` bytes (Section 4.2's
    /// speculative overrun, bounded and architecturally invisible).
    RunaheadOvershoot,
    /// The static side already declined to bound the op (unproven
    /// verdict), so a wider dynamic extent contradicts nothing.
    UnprovenStatically,
    /// The op is statically flagged out-of-bounds; the observed escape is
    /// the predicted bug — agreement, not contradiction.
    StaticallyFlagged,
    /// Runahead's forced control flow executed a memory op on a path the
    /// static analysis never reaches architecturally.
    SpeculativeControl,
    /// The flagged pc never executed (architecturally or speculatively)
    /// with this input/ROI, so no escape could be observed.
    DeadDynamicPath,
    /// The static error is an escalated unproven-bounds warning (a
    /// may-alarm on an expected-spawn gather); the dynamics staying inside
    /// the footprint does not contradict a may-claim.
    EscalatedMayAlarm,
}

impl std::fmt::Display for BoundsJustification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BoundsJustification::WithinProvenRegion => "within-proven-region",
            BoundsJustification::RunaheadOvershoot => "runahead-overshoot",
            BoundsJustification::UnprovenStatically => "unproven-statically",
            BoundsJustification::StaticallyFlagged => "statically-flagged",
            BoundsJustification::SpeculativeControl => "speculative-control",
            BoundsJustification::DeadDynamicPath => "dead-dynamic-path",
            BoundsJustification::EscalatedMayAlarm => "escalated-may-alarm",
        })
    }
}

/// One static/dynamic disagreement about bounds, with its (attempted)
/// explanation.
#[derive(Clone, Debug)]
pub struct BoundsDivergence {
    /// What kind of disagreement.
    pub kind: BoundsDivergenceKind,
    /// The memory-op pc it concerns.
    pub pc: usize,
    /// Human-readable specifics (extents, techniques).
    pub detail: String,
    /// The typed explanation, or `None` = unexplained (a bug).
    pub justification: Option<BoundsJustification>,
}

/// Per-pc access extents `(pc, min addr, max inclusive end)`, pc-sorted.
pub type PcExtents = Vec<(usize, u64, u64)>;

/// The bounds-audit result for one workload.
#[derive(Clone, Debug)]
pub struct BoundsAuditReport {
    /// Workload name.
    pub bench: String,
    /// Input seed used on all sides.
    pub seed: u64,
    /// ROI length of the simulated and replayed runs.
    pub instrs: u64,
    /// Declared regions `(name, base, len)`.
    pub regions: Vec<(String, u64, u64)>,
    /// The static verifier's claims and findings.
    pub stat: BoundsReport,
    /// Architectural per-pc extents `(pc, min, max_inclusive)`; `None` =
    /// skipped (no regions declared).
    pub arch: Option<Vec<(usize, u64, u64)>>,
    /// Speculative extents per technique; `None` = skipped.
    pub spec: Option<[(Technique, PcExtents); 3]>,
    /// Every disagreement found.
    pub divergences: Vec<BoundsDivergence>,
}

fn in_one_region(regions: &[(String, u64, u64)], lo: u64, hi: u64) -> bool {
    regions.iter().any(|&(_, base, len)| lo >= base && hi >= lo && hi - base < len)
}

fn render_extents(e: &[(usize, u64, u64)]) -> String {
    if e.is_empty() {
        return "(none)".to_string();
    }
    e.iter()
        .map(|&(pc, lo, hi)| format!("pc={pc} [{lo:#x}, {hi:#x}]"))
        .collect::<Vec<_>>()
        .join(" ")
}

impl BoundsAuditReport {
    /// Divergences with no typed justification.
    pub fn unexplained(&self) -> usize {
        self.divergences.iter().filter(|d| d.justification.is_none()).count()
    }

    /// Whether every divergence is explained.
    pub fn is_clean(&self) -> bool {
        self.unexplained() == 0
    }

    /// Error-severity static findings (drive the CLI exit status).
    pub fn static_errors(&self) -> usize {
        self.stat.errors()
    }

    /// Statically flagged (error-severity) pcs whose escape of the
    /// declared footprint at least one dynamic side observed.
    pub fn confirmed_oob(&self) -> usize {
        self.error_pcs().iter().filter(|&&pc| self.observed_escape(pc)).count()
    }

    fn error_pcs(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .stat
            .diags
            .iter()
            .filter(|d| d.severity == sim_lint::Severity::Error)
            .map(|d| d.pc)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn observed_escape(&self, pc: usize) -> bool {
        let escaped = |e: &[(usize, u64, u64)]| {
            e.iter().any(|&(p, lo, hi)| p == pc && !in_one_region(&self.regions, lo, hi))
        };
        self.arch.as_deref().is_some_and(escaped)
            || self.spec.as_ref().is_some_and(|s| s.iter().any(|(_, e)| escaped(e)))
    }

    /// Deterministic multi-line report (the golden-pinned format).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ =
            writeln!(s, "bounds-audit {}: seed={} instrs={}", self.bench, self.seed, self.instrs);
        let regions = self
            .regions
            .iter()
            .map(|(n, base, len)| format!("{n}=[{base:#x},+{len:#x})"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(s, "regions: {}", if regions.is_empty() { "(none)" } else { &regions });
        let _ = writeln!(
            s,
            "static: ops={} proven={} errors={} warnings={}",
            self.stat.ops.len(),
            self.stat.proven(),
            self.stat.errors(),
            self.stat.warnings()
        );
        for o in &self.stat.ops {
            let _ = writeln!(
                s,
                "  pc={} {} w={} addr={} {}{}",
                o.pc,
                if o.is_load { "load" } else { "store" },
                o.width,
                o.addr,
                o.verdict,
                if o.in_spawn_chain { " spawn-chain" } else { "" },
            );
        }
        match &self.arch {
            None => {
                let _ = writeln!(s, "architectural: skipped (no regions declared)");
            }
            Some(a) => {
                let _ = writeln!(s, "architectural: {}", render_extents(a));
            }
        }
        match &self.spec {
            None => {
                let _ = writeln!(s, "speculative: skipped (no regions declared)");
            }
            Some(spec) => {
                for (t, e) in spec {
                    let _ = writeln!(s, "speculative {}: {}", t.name(), render_extents(e));
                }
            }
        }
        let _ = writeln!(
            s,
            "divergences: {} total, {} unexplained",
            self.divergences.len(),
            self.unexplained()
        );
        for d in &self.divergences {
            let j =
                d.justification.map(|j| j.to_string()).unwrap_or_else(|| "UNEXPLAINED".to_string());
            let _ = writeln!(s, "  [{}] pc={} {} :: {}", d.kind, d.pc, d.detail, j);
        }
        let _ = writeln!(
            s,
            "confirmed-oob: {} of {} static errors",
            self.confirmed_oob(),
            self.static_errors()
        );
        let _ = writeln!(s, "{}", if self.is_clean() { "PASS" } else { "FAIL" });
        s
    }

    /// Flat JSON object for `dvrsim bounds-audit --json` (hand-rolled,
    /// like [`LeakAuditReport::to_json`](crate::LeakAuditReport::to_json)).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            concat!(
                "{{\"bench\":\"{}\",\"seed\":{},\"instrs\":{},",
                "\"static_errors\":{},\"static_warnings\":{},\"proven\":{},",
                "\"confirmed_oob\":{},"
            ),
            self.bench,
            self.seed,
            self.instrs,
            self.stat.errors(),
            self.stat.warnings(),
            self.stat.proven(),
            self.confirmed_oob(),
        );
        let extents_json = |s: &mut String, e: &[(usize, u64, u64)]| {
            s.push('[');
            for (i, &(pc, lo, hi)) in e.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"pc\":{pc},\"lo\":{lo},\"hi\":{hi}}}");
            }
            s.push(']');
        };
        s.push_str("\"arch\":");
        match &self.arch {
            None => s.push_str("null"),
            Some(a) => extents_json(&mut s, a),
        }
        s.push_str(",\"spec\":");
        match &self.spec {
            None => s.push_str("null"),
            Some(spec) => {
                s.push('{');
                for (i, (t, e)) in spec.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":", t.name());
                    extents_json(&mut s, e);
                }
                s.push('}');
            }
        }
        s.push_str(",\"divergences\":[");
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let j =
                d.justification.map(|j| format!("\"{j}\"")).unwrap_or_else(|| "null".to_string());
            let _ = write!(
                s,
                "{{\"kind\":\"{}\",\"pc\":{},\"justification\":{},\"detail\":\"{}\"}}",
                d.kind,
                d.pc,
                j,
                d.detail.replace('\\', "\\\\").replace('"', "\\\""),
            );
        }
        let _ = write!(s, "],\"unexplained\":{}}}", self.unexplained());
        s
    }
}

/// Runs the full bounds audit for one workload: static verifier,
/// oracle-armed simulations under Baseline/VR/DVR, architectural replay
/// with the bounds tracker, and the diff.
pub fn bounds_audit_workload(wl: &Workload, seed: u64, instrs: u64) -> BoundsAuditReport {
    let stat = check_bounds(&wl.prog, Some(&wl.mem));
    let regions: Vec<(String, u64, u64)> = wl.prog.regions().to_vec();

    if regions.is_empty() {
        // Bounds checking is opt-in per workload: with no declared
        // footprint neither side has a claim to check.
        return BoundsAuditReport {
            bench: wl.name.clone(),
            seed,
            instrs,
            regions,
            stat,
            arch: None,
            spec: None,
            divergences: Vec::new(),
        };
    }

    // Dynamic side: oracle-armed runs.
    let run = |t: Technique| {
        let cfg = SimConfig::new(t).with_max_instructions(instrs).with_bounds_oracle(true);
        simulate(wl, &cfg)
    };
    let spec = [
        (Technique::Baseline, run(Technique::Baseline).spec_extents.unwrap_or_default()),
        (Technique::Vr, run(Technique::Vr).spec_extents.unwrap_or_default()),
        (Technique::Dvr, run(Technique::Dvr).spec_extents.unwrap_or_default()),
    ];

    // Architectural ground truth: functional replay with the same budget.
    let mut cpu = Cpu::new();
    cpu.enable_bounds_tracker();
    let mut mem = wl.mem.clone();
    cpu.run(&wl.prog, &mut mem, instrs).expect("functional replay executes");
    let arch = cpu.take_bounds_tracker().map(|t| t.extents()).unwrap_or_default();

    let divergences = diff(&stat, &regions, &arch, &spec);
    BoundsAuditReport {
        bench: wl.name.clone(),
        seed,
        instrs,
        regions,
        stat,
        arch: Some(arch),
        spec: Some(spec),
        divergences,
    }
}

/// [`bounds_audit_workload`] for a registered benchmark.
pub fn bounds_audit_benchmark(
    bench: Benchmark,
    size: SizeClass,
    seed: u64,
    instrs: u64,
) -> BoundsAuditReport {
    bounds_audit_workload(&bench.build(None, size, seed), seed, instrs)
}

/// [`bounds_audit_workload`] for the secret-dependent-gather attack kernel.
pub fn bounds_audit_attack(size: SizeClass, seed: u64, instrs: u64) -> BoundsAuditReport {
    bounds_audit_workload(&gather_attack(size, seed), seed, instrs)
}

/// [`bounds_audit_workload`] for the out-of-bounds gather kernel (the
/// workload the audit exists to flag; not part of the benchmark registry).
pub fn bounds_audit_oob(size: SizeClass, seed: u64, instrs: u64) -> BoundsAuditReport {
    bounds_audit_workload(&oob_gather(size, seed), seed, instrs)
}

/// Diffs the static claims against the architectural and speculative
/// extents, classifying every disagreement.
fn diff(
    stat: &BoundsReport,
    regions: &[(String, u64, u64)],
    arch: &[(usize, u64, u64)],
    spec: &[(Technique, PcExtents); 3],
) -> Vec<BoundsDivergence> {
    let mut out = Vec::new();

    // Interval containment of an observed [lo, hi] extent: the static
    // claim covers [addr.lo, addr.hi + width - 1].
    let within_interval = |pc: usize, lo: u64, hi: u64| {
        stat.op_at(pc).map(|o| lo >= o.addr.lo && hi <= o.addr.hi.saturating_add(o.width - 1))
    };

    // Architectural soundness: every concrete access must sit inside the
    // inferred interval, and a proven op inside its proven region.
    for &(pc, lo, hi) in arch {
        match within_interval(pc, lo, hi) {
            None => out.push(BoundsDivergence {
                kind: BoundsDivergenceKind::ArchEscapedInterval,
                pc,
                detail: format!(
                    "architectural access [{lo:#x}, {hi:#x}] at a pc the analysis \
                     found unreachable"
                ),
                justification: None,
            }),
            Some(false) => {
                let o = stat.op_at(pc).expect("checked above");
                out.push(BoundsDivergence {
                    kind: BoundsDivergenceKind::ArchEscapedInterval,
                    pc,
                    detail: format!(
                        "architectural extent [{lo:#x}, {hi:#x}] outside static {} (width {})",
                        o.addr, o.width
                    ),
                    justification: None,
                });
            }
            Some(true) => {
                let o = stat.op_at(pc).expect("checked above");
                if let BoundsVerdict::Proven { region } = &o.verdict {
                    let inside = regions
                        .iter()
                        .any(|(n, base, len)| n == region && lo >= *base && hi - base < *len);
                    if !inside {
                        out.push(BoundsDivergence {
                            kind: BoundsDivergenceKind::ArchEscapedRegion,
                            pc,
                            detail: format!(
                                "architectural extent [{lo:#x}, {hi:#x}] outside proven \
                                 region {region}"
                            ),
                            justification: None,
                        });
                    }
                }
            }
        }
    }

    // Speculative extents against the static claims.
    for (t, extents) in spec {
        for &(pc, lo, hi) in extents {
            if *t == Technique::Baseline {
                out.push(BoundsDivergence {
                    kind: BoundsDivergenceKind::BaselineSpecAccess,
                    pc,
                    detail: format!("extent [{lo:#x}, {hi:#x}] under {}", t.name()),
                    justification: None,
                });
                continue;
            }
            match within_interval(pc, lo, hi) {
                Some(true) => {} // agreement
                None => out.push(BoundsDivergence {
                    kind: BoundsDivergenceKind::SpecEscapedInterval,
                    pc,
                    detail: format!(
                        "speculative extent [{lo:#x}, {hi:#x}] under {} at a pc with no \
                         static claim",
                        t.name()
                    ),
                    justification: Some(BoundsJustification::SpeculativeControl),
                }),
                Some(false) => {
                    let o = stat.op_at(pc).expect("checked above");
                    let justification = match &o.verdict {
                        BoundsVerdict::Proven { region } => regions
                            .iter()
                            .find(|(n, _, _)| n == region)
                            .and_then(|&(_, base, len)| {
                                if lo >= base && hi - base < len {
                                    Some(BoundsJustification::WithinProvenRegion)
                                } else if lo.max(base) <= hi.min(base + (len - 1)) {
                                    Some(BoundsJustification::RunaheadOvershoot)
                                } else {
                                    None
                                }
                            }),
                        BoundsVerdict::Unproven => Some(BoundsJustification::UnprovenStatically),
                        BoundsVerdict::OutOfBounds => Some(BoundsJustification::StaticallyFlagged),
                    };
                    out.push(BoundsDivergence {
                        kind: BoundsDivergenceKind::SpecEscapedInterval,
                        pc,
                        detail: format!(
                            "speculative extent [{lo:#x}, {hi:#x}] under {} outside static \
                             {} ({})",
                            t.name(),
                            o.addr,
                            o.verdict
                        ),
                        justification,
                    });
                }
            }
        }
    }

    // Static errors the dynamics never confirmed.
    let mut error_pcs: Vec<usize> = stat
        .diags
        .iter()
        .filter(|d| d.severity == sim_lint::Severity::Error)
        .map(|d| d.pc)
        .collect();
    error_pcs.sort_unstable();
    error_pcs.dedup();
    let escaped_at = |pc: usize| {
        let esc = |e: &[(usize, u64, u64)]| {
            e.iter().any(|&(p, lo, hi)| p == pc && !in_one_region(regions, lo, hi))
        };
        esc(arch) || spec.iter().any(|(_, e)| esc(e))
    };
    for pc in error_pcs {
        if escaped_at(pc) {
            continue;
        }
        let arch_ran = arch.iter().any(|&(p, _, _)| p == pc);
        let spec_ran = spec.iter().any(|(_, e)| e.iter().any(|&(p, _, _)| p == pc));
        let escalated = stat
            .op_at(pc)
            .is_some_and(|o| matches!(o.verdict, BoundsVerdict::Unproven) && o.in_spawn_chain);
        let justification = if !arch_ran && !spec_ran {
            Some(BoundsJustification::DeadDynamicPath)
        } else if escalated {
            Some(BoundsJustification::EscalatedMayAlarm)
        } else {
            None
        };
        out.push(BoundsDivergence {
            kind: BoundsDivergenceKind::OobNeverObserved,
            pc,
            detail: format!("arch-ran={arch_ran} spec-ran={spec_ran}"),
            justification,
        });
    }

    out.sort_by_key(|d| (d.pc, d.kind as usize));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oob_workload_is_flagged_and_dynamically_confirmed() {
        let r = bounds_audit_oob(SizeClass::Test, 42, 60_000);
        println!("{}", r.render());
        assert!(r.static_errors() >= 2, "gather escalation + epilogue: {:?}", r.stat.diags);
        assert!(r.confirmed_oob() >= 1, "dynamics must confirm an escape:\n{}", r.render());
        assert!(r.is_clean(), "audit must explain itself:\n{}", r.render());
    }

    #[test]
    fn clean_benchmark_audit_passes_with_no_static_errors() {
        let r = bounds_audit_benchmark(Benchmark::Camel, SizeClass::Test, 42, 60_000);
        println!("{}", r.render());
        assert_eq!(r.static_errors(), 0, "{:?}", r.stat.diags);
        assert!(r.is_clean(), "{}", r.render());
        assert!(r.arch.is_some() && r.spec.is_some());
        // The baseline leg never produces speculative extents.
        let spec = r.spec.as_ref().unwrap();
        assert!(spec[0].1.is_empty(), "baseline extents: {:?}", spec[0].1);
    }

    #[test]
    fn regionless_program_short_circuits() {
        let wl = Workload {
            name: "bare".to_string(),
            prog: sim_isa::parse_program("li r1, 4096\nld8 r2, [r1 + 0]\nhalt").unwrap(),
            mem: sim_isa::SparseMemory::new(),
            description: String::new(),
            regions: vec![],
        };
        let r = bounds_audit_workload(&wl, 1, 1_000);
        assert!(r.arch.is_none() && r.spec.is_none());
        assert!(r.divergences.is_empty() && r.is_clean());
        assert!(r.render().contains("skipped"));
    }
}
