//! DVR integration of the `sim-sweep` crash-safe sweep layer.
//!
//! `sim-sweep` supplies the domain-agnostic machinery (journal, cache,
//! supervisor, fault injection); this module supplies the DVR pieces:
//!
//! - [`SweepCell`] — one (workload, config, technique) grid point with
//!   a canonical whitespace-free key that is both the journal token
//!   and the CLI spelling;
//! - a full-fidelity binary [`SimReport`] codec ([`encode_report`] /
//!   [`decode_report`]) — unlike [`SimReport::to_json`] it round-trips
//!   every counter, so cached results are indistinguishable from
//!   freshly computed ones;
//! - [`cache_key`] — the content address: a digest of the program
//!   bytes + initialized memory image, the canonical (`Debug`) config
//!   rendering, and the code version ([`CACHE_CODE_VERSION`] plus the
//!   crate version), so a simulator change can never serve stale
//!   results;
//! - [`DvrSweepRunner`] — the [`CellRunner`] gluing it together for
//!   `dvrsim sweep`, `dvrsim serve`, and the worker subcommand.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sim_sample::SampleConfig;
use sim_sweep::{CellRunner, Digest128, Hasher};
use workloads::{Benchmark, GraphInput, SizeClass, Workload};

use crate::config::{SimConfig, Technique};
use crate::report::{RunOutcome, SamplingSummary, SimReport};
use crate::runner::simulate;

/// Bumped whenever a simulator change invalidates cached results
/// (model fixes, stat additions, codec changes). Part of every cache
/// key next to the crate version.
pub const CACHE_CODE_VERSION: u32 = 1;

/// Version tag of the binary report payload.
pub const REPORT_CODEC_VERSION: u32 = 1;

const REPORT_MAGIC: &[u8; 4] = b"DVRR";

/// All techniques in a stable order (codec indices and `all` grids).
pub const ALL_TECHNIQUES: [Technique; 8] = [
    Technique::Baseline,
    Technique::Pre,
    Technique::Imp,
    Technique::Vr,
    Technique::Dvr,
    Technique::DvrOffload,
    Technique::DvrDiscovery,
    Technique::Oracle,
];

/// Canonical lowercase token for a technique (the CLI spelling).
pub fn technique_token(t: Technique) -> &'static str {
    match t {
        Technique::Baseline => "ooo",
        Technique::Pre => "pre",
        Technique::Imp => "imp",
        Technique::Vr => "vr",
        Technique::Dvr => "dvr",
        Technique::DvrOffload => "dvr-offload",
        Technique::DvrDiscovery => "dvr-discovery",
        Technique::Oracle => "oracle",
    }
}

/// Parses a [`technique_token`] back.
pub fn parse_technique_token(s: &str) -> Option<Technique> {
    ALL_TECHNIQUES.into_iter().find(|&t| technique_token(t) == s)
}

/// Canonical lowercase token for a size class.
pub fn size_token(s: SizeClass) -> &'static str {
    match s {
        SizeClass::Test => "test",
        SizeClass::Small => "small",
        SizeClass::Paper => "paper",
    }
}

/// Parses a [`size_token`] back.
pub fn parse_size_token(s: &str) -> Option<SizeClass> {
    match s {
        "test" => Some(SizeClass::Test),
        "small" => Some(SizeClass::Small),
        "paper" => Some(SizeClass::Paper),
        _ => None,
    }
}

fn input_token(i: Option<GraphInput>) -> String {
    match i {
        None => "-".to_string(),
        Some(g) => g.name().to_lowercase(),
    }
}

fn parse_input_token(s: &str) -> Option<Option<GraphInput>> {
    if s == "-" {
        return Some(None);
    }
    GraphInput::ALL.into_iter().find(|g| g.name().eq_ignore_ascii_case(s)).map(Some)
}

/// One sweep grid point: everything needed to rebuild the workload and
/// config deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SweepCell {
    /// Benchmark to run.
    pub bench: Benchmark,
    /// Graph input (GAP benchmarks only; `None` for hpc-db).
    pub input: Option<GraphInput>,
    /// Technique simulated.
    pub technique: Technique,
    /// Workload size class.
    pub size: SizeClass,
    /// Synthetic-data seed.
    pub seed: u64,
    /// Instruction budget (ROI length).
    pub instrs: u64,
}

impl SweepCell {
    /// The canonical cell key: a whitespace-free token that names the
    /// cell in the journal, `summary.json`, and on the CLI.
    ///
    /// ```
    /// use dvr_sim::sweep::SweepCell;
    /// use dvr_sim::Technique;
    /// use workloads::{Benchmark, GraphInput, SizeClass};
    /// let cell = SweepCell {
    ///     bench: Benchmark::Bfs,
    ///     input: Some(GraphInput::Kr),
    ///     technique: Technique::Dvr,
    ///     size: SizeClass::Test,
    ///     seed: 42,
    ///     instrs: 20_000,
    /// };
    /// assert_eq!(cell.key(), "bench=bfs,input=kr,technique=dvr,size=test,seed=42,instrs=20000");
    /// assert_eq!(SweepCell::parse(&cell.key()).unwrap(), cell);
    /// ```
    pub fn key(&self) -> String {
        format!(
            "bench={},input={},technique={},size={},seed={},instrs={}",
            self.bench.name().to_lowercase(),
            input_token(self.input),
            technique_token(self.technique),
            size_token(self.size),
            self.seed,
            self.instrs,
        )
    }

    /// Parses a [`SweepCell::key`] rendering.
    pub fn parse(key: &str) -> Result<SweepCell, String> {
        let mut bench = None;
        let mut input = None;
        let mut technique = None;
        let mut size = None;
        let mut seed = None;
        let mut instrs = None;
        for part in key.split(',') {
            let (k, v) = part.split_once('=').ok_or_else(|| format!("bad field `{part}`"))?;
            match k {
                "bench" => {
                    bench = Some(
                        Benchmark::ALL
                            .into_iter()
                            .find(|b| b.name().eq_ignore_ascii_case(v))
                            .ok_or_else(|| format!("unknown benchmark `{v}`"))?,
                    )
                }
                "input" => {
                    input =
                        Some(parse_input_token(v).ok_or_else(|| format!("unknown input `{v}`"))?)
                }
                "technique" => {
                    technique = Some(
                        parse_technique_token(v)
                            .ok_or_else(|| format!("unknown technique `{v}`"))?,
                    )
                }
                "size" => {
                    size = Some(parse_size_token(v).ok_or_else(|| format!("unknown size `{v}`"))?)
                }
                "seed" => seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?),
                "instrs" => instrs = Some(v.parse().map_err(|_| format!("bad instrs `{v}`"))?),
                _ => return Err(format!("unknown field `{k}`")),
            }
        }
        Ok(SweepCell {
            bench: bench.ok_or("missing bench")?,
            input: input.ok_or("missing input")?,
            technique: technique.ok_or("missing technique")?,
            size: size.ok_or("missing size")?,
            seed: seed.ok_or("missing seed")?,
            instrs: instrs.ok_or("missing instrs")?,
        })
    }

    /// The cell's simulator configuration.
    pub fn config(&self) -> SimConfig {
        SimConfig::new(self.technique).with_max_instructions(self.instrs)
    }

    /// Builds the full grid: GAP benchmarks cross the given inputs,
    /// hpc-db benchmarks appear once (input `-`), each crossed with
    /// every technique, in a stable order.
    pub fn grid(
        benches: &[Benchmark],
        inputs: &[GraphInput],
        techniques: &[Technique],
        size: SizeClass,
        seed: u64,
        instrs: u64,
    ) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for &bench in benches {
            let cell_inputs: Vec<Option<GraphInput>> =
                if bench.is_gap() { inputs.iter().map(|&g| Some(g)).collect() } else { vec![None] };
            for &input in &cell_inputs {
                for &technique in techniques {
                    cells.push(SweepCell { bench, input, technique, size, seed, instrs });
                }
            }
        }
        cells
    }
}

// ---------------------------------------------------------------------------
// Binary report codec
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a **completed** report as a self-describing binary payload.
///
/// Full fidelity where [`SimReport::to_json`] is lossy: every counter
/// in `core` and `mem` round-trips, floats travel as IEEE bits, and
/// the sampling summary (if any) is preserved. `host_seconds` is
/// deliberately encoded as zero — cached results must be byte-stable
/// across hosts — and the side-band `sanitizer` / `dvr_trace` fields
/// are dropped, exactly as `to_json` drops them.
///
/// Fails on a failed outcome: failures are journaled as typed text,
/// never content-addressed (a flaky host must not poison the cache).
pub fn encode_report(r: &SimReport) -> Result<Vec<u8>, String> {
    if let RunOutcome::Failed(e) = &r.outcome {
        return Err(format!("refusing to encode failed report ({})", e.kind()));
    }
    let mut out = Vec::with_capacity(512);
    out.extend_from_slice(REPORT_MAGIC);
    put_u32(&mut out, REPORT_CODEC_VERSION);
    let tech =
        ALL_TECHNIQUES.iter().position(|&t| t == r.technique).expect("every technique is indexed");
    out.push(tech as u8);
    put_str(&mut out, &r.workload);
    for v in r.core.to_flat() {
        put_u64(&mut out, v);
    }
    for v in r.mem.to_flat() {
        put_u64(&mut out, v);
    }
    put_f64(&mut out, r.ipc);
    put_f64(&mut out, r.mlp);
    put_u64(&mut out, r.simulated_instructions);
    match &r.sampling {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_u64(&mut out, s.intervals as u64);
            put_u64(&mut out, s.interval_len);
            put_u64(&mut out, s.warmup_len);
            put_u64(&mut out, s.period);
            out.push(match s.placement {
                "random" => 1,
                _ => 0,
            });
            put_u64(&mut out, s.seed);
            put_f64(&mut out, s.ipc_mean);
            put_f64(&mut out, s.ipc_variance);
            put_f64(&mut out, s.ipc_ci95);
            put_f64(&mut out, s.mlp_mean);
            put_u64(&mut out, s.detailed_instructions);
            put_u64(&mut out, s.warmup_instructions);
            put_u64(&mut out, s.ffwd_instructions);
        }
    }
    put_u64(&mut out, r.engine.episodes);
    put_u64(&mut out, r.engine.runahead_loads);
    put_u64(&mut out, r.engine.nested_episodes);
    put_u64(&mut out, r.engine.lanes_lost);
    put_str(&mut out, &r.engine.detail);
    Ok(out)
}

struct Cursor<'a> {
    raw: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.raw.len() - self.i < n {
            return Err(format!("truncated payload at {what} (byte {})", self.i));
        }
        let s = &self.raw[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        String::from_utf8(self.take(len, what)?.to_vec()).map_err(|_| format!("non-UTF-8 {what}"))
    }

    fn flats(&mut self, n: usize, what: &str) -> Result<Vec<u64>, String> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64(what)?);
        }
        Ok(v)
    }
}

/// Decodes an [`encode_report`] payload back to a [`SimReport`]
/// (outcome `Complete`, `host_seconds` zero, no side-band state).
pub fn decode_report(raw: &[u8]) -> Result<SimReport, String> {
    let mut c = Cursor { raw, i: 0 };
    if c.take(4, "magic")? != REPORT_MAGIC {
        return Err("bad report magic".into());
    }
    let version = c.u32("version")?;
    if version != REPORT_CODEC_VERSION {
        return Err(format!("unknown report codec version {version}"));
    }
    let tech = c.u8("technique")? as usize;
    let technique =
        *ALL_TECHNIQUES.get(tech).ok_or_else(|| format!("bad technique index {tech}"))?;
    let workload = c.str("workload")?;
    let core = sim_ooo::CoreStats::from_flat(&c.flats(sim_ooo::CoreStats::FLAT_LEN, "core")?)
        .ok_or("bad core stats")?;
    let mem = sim_mem::MemStats::from_flat(&c.flats(sim_mem::MemStats::FLAT_LEN, "mem")?)
        .ok_or("bad mem stats")?;
    let ipc = c.f64("ipc")?;
    let mlp = c.f64("mlp")?;
    let simulated_instructions = c.u64("simulated_instructions")?;
    let sampling = match c.u8("sampling flag")? {
        0 => None,
        1 => Some(SamplingSummary {
            intervals: c.u64("intervals")? as usize,
            interval_len: c.u64("interval_len")?,
            warmup_len: c.u64("warmup_len")?,
            period: c.u64("period")?,
            placement: if c.u8("placement")? == 1 { "random" } else { "systematic" },
            seed: c.u64("seed")?,
            ipc_mean: c.f64("ipc_mean")?,
            ipc_variance: c.f64("ipc_variance")?,
            ipc_ci95: c.f64("ipc_ci95")?,
            mlp_mean: c.f64("mlp_mean")?,
            detailed_instructions: c.u64("detailed_instructions")?,
            warmup_instructions: c.u64("warmup_instructions")?,
            ffwd_instructions: c.u64("ffwd_instructions")?,
        }),
        other => return Err(format!("bad sampling flag {other}")),
    };
    let engine = crate::report::EngineSummary {
        episodes: c.u64("episodes")?,
        runahead_loads: c.u64("runahead_loads")?,
        nested_episodes: c.u64("nested_episodes")?,
        lanes_lost: c.u64("lanes_lost")?,
        detail: c.str("detail")?,
    };
    if c.i != raw.len() {
        return Err(format!("{} trailing byte(s)", raw.len() - c.i));
    }
    Ok(SimReport {
        technique,
        workload,
        core,
        mem,
        ipc,
        mlp,
        simulated_instructions,
        host_seconds: 0.0,
        sampling,
        engine,
        outcome: RunOutcome::Complete,
        sanitizer: None,
        dvr_trace: None,
        taint_fills: None,
        spec_extents: None,
    })
}

// ---------------------------------------------------------------------------
// Cache key derivation
// ---------------------------------------------------------------------------

/// The content address of one simulation result: a digest of
/// (program bytes + initialized memory image, canonical config
/// rendering, code version). Any change to the workload builder, the
/// configuration, the sampling plan, or the simulator version yields a
/// different key, so the cache can only ever serve exact matches.
pub fn cache_key(wl: &Workload, cfg: &SimConfig, sample: Option<&SampleConfig>) -> Digest128 {
    let mut h = Hasher::new();
    h.write_str("dvr-result-v1");
    h.write_u64(u64::from(CACHE_CODE_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_str(&wl.name);
    h.write_u64(wl.prog.len() as u64);
    // The program's Debug rendering covers every instruction, label,
    // and line table entry; the memory checksum + footprint cover the
    // initialized data image.
    h.write_str(&format!("{:?}", wl.prog));
    h.write_u64(wl.mem.checksum());
    h.write_u64(wl.mem.footprint_bytes() as u64);
    h.write_str(&format!("{cfg:?}"));
    match sample {
        None => h.write_str("exact"),
        Some(s) => h.write_str(&format!("{s:?}")),
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// The DVR cell runner
// ---------------------------------------------------------------------------

/// Memoization key for shared workloads: one build serves every
/// technique in the grid.
type WorkloadKey = (Benchmark, Option<GraphInput>, SizeClass, u64);

/// [`CellRunner`] for DVR sweeps: parses cell keys, builds workloads
/// (memoized — grids share them across techniques), runs the exact
/// simulator, and speaks the binary report codec.
pub struct DvrSweepRunner {
    exe: Option<PathBuf>,
    workloads: Mutex<HashMap<WorkloadKey, Arc<Workload>>>,
}

impl DvrSweepRunner {
    /// A runner computing cells in-process. Pass the `dvrsim` binary
    /// path to enable `--jobs` worker dispatch.
    pub fn new(exe: Option<PathBuf>) -> Self {
        DvrSweepRunner { exe, workloads: Mutex::new(HashMap::new()) }
    }

    /// The (memoized) workload for a cell.
    pub fn workload(&self, cell: &SweepCell) -> Arc<Workload> {
        let key = (cell.bench, cell.input, cell.size, cell.seed);
        if let Some(wl) = self.workloads.lock().unwrap().get(&key) {
            return Arc::clone(wl);
        }
        // Build outside the lock: workload construction is the
        // expensive part and other cells shouldn't serialize behind it.
        let wl = Arc::new(cell.bench.build(cell.input, cell.size, cell.seed));
        Arc::clone(self.workloads.lock().unwrap().entry(key).or_insert(wl))
    }

    /// Runs one cell to a full report (shared by the in-process path,
    /// the worker subcommand, and `dvrsim serve`).
    pub fn run_report(&self, cell: &SweepCell) -> SimReport {
        simulate(&self.workload(cell), &cell.config())
    }
}

impl CellRunner for DvrSweepRunner {
    fn run(&self, cell: &str) -> Result<Vec<u8>, (String, String)> {
        let cell = SweepCell::parse(cell).map_err(|e| ("bad_cell".to_string(), e))?;
        let report = self.run_report(&cell);
        match &report.outcome {
            RunOutcome::Complete => encode_report(&report).map_err(|e| ("codec".into(), e)),
            RunOutcome::Failed(e) => Err((e.kind().to_string(), e.to_string())),
        }
    }

    fn worker_argv(&self, cell: &str) -> Option<Vec<String>> {
        let exe = self.exe.as_ref()?;
        Some(vec![exe.display().to_string(), "sweep-worker".into(), cell.to_string()])
    }

    fn cache_key(&self, cell: &str) -> Option<Digest128> {
        let cell = SweepCell::parse(cell).ok()?;
        Some(cache_key(&self.workload(&cell), &cell.config(), None))
    }

    fn summarize(&self, _cell: &str, payload: &[u8]) -> Result<String, String> {
        Ok(decode_report(payload)?.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::EngineSummary;

    #[test]
    fn cell_keys_roundtrip_for_the_full_grid() {
        let cells = SweepCell::grid(
            &Benchmark::ALL,
            &GraphInput::ALL,
            &ALL_TECHNIQUES,
            SizeClass::Test,
            42,
            20_000,
        );
        // 5 GAP benchmarks x 5 inputs + 8 hpc-db, each x 8 techniques.
        assert_eq!(cells.len(), (5 * 5 + 8) * 8);
        for cell in &cells {
            let key = cell.key();
            assert!(!key.chars().any(|c| c.is_whitespace()), "{key}");
            assert_eq!(SweepCell::parse(&key).unwrap(), *cell, "{key}");
        }
        // Keys are unique across the grid.
        let keys: std::collections::HashSet<String> = cells.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn cell_parse_rejects_garbage() {
        assert!(
            SweepCell::parse("bench=nope,input=-,technique=dvr,size=test,seed=1,instrs=1").is_err()
        );
        assert!(SweepCell::parse("bench=bfs").is_err(), "missing fields");
        assert!(SweepCell::parse("").is_err());
        assert!(
            SweepCell::parse("bench=bfs,input=kr,technique=dvr,size=test,seed=1,instrs=1,x=2")
                .is_err(),
            "unknown field"
        );
    }

    fn fat_report() -> SimReport {
        let core = sim_ooo::CoreStats {
            cycles: 123_456,
            committed: 200_000,
            loads: 44_000,
            ..Default::default()
        };
        let mem =
            sim_mem::MemStats { demand_loads: 44_000, dram_demand: 1_234, ..Default::default() };
        SimReport {
            technique: Technique::Dvr,
            workload: "bfs/KR".into(),
            core,
            mem,
            ipc: 1.618_033,
            mlp: 7.25,
            taint_fills: None,
            spec_extents: None,
            simulated_instructions: 200_000,
            host_seconds: 3.25, // must NOT survive the codec
            sampling: Some(SamplingSummary {
                intervals: 10,
                interval_len: 2_000,
                warmup_len: 2_000,
                period: 20_000,
                placement: "random",
                seed: 7,
                ipc_mean: 1.618_033,
                ipc_variance: 0.002,
                ipc_ci95: f64::INFINITY,
                mlp_mean: 7.25,
                detailed_instructions: 20_000,
                warmup_instructions: 20_000,
                ffwd_instructions: 160_000,
            }),
            engine: EngineSummary {
                episodes: 42,
                runahead_loads: 9_001,
                nested_episodes: 3,
                lanes_lost: 17,
                detail: "42 episodes".into(),
            },
            outcome: RunOutcome::Complete,
            sanitizer: None,
            dvr_trace: None,
        }
    }

    #[test]
    fn report_codec_roundtrips_every_field() {
        let r = fat_report();
        let payload = encode_report(&r).unwrap();
        let back = decode_report(&payload).unwrap();
        assert_eq!(back.technique, r.technique);
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.core, r.core);
        assert_eq!(back.mem, r.mem);
        assert_eq!(back.ipc.to_bits(), r.ipc.to_bits());
        assert_eq!(back.mlp.to_bits(), r.mlp.to_bits());
        assert_eq!(back.simulated_instructions, r.simulated_instructions);
        assert_eq!(back.sampling, r.sampling);
        assert_eq!(back.engine.detail, r.engine.detail);
        assert_eq!(back.engine.lanes_lost, r.engine.lanes_lost);
        assert_eq!(back.host_seconds, 0.0, "wall clock never round-trips");
        assert!(back.outcome.is_complete());
        // The JSON rendering of a decoded report equals the rendering
        // of the original with its clock zeroed.
        let mut zeroed = r.clone();
        zeroed.host_seconds = 0.0;
        assert_eq!(back.to_json(), zeroed.to_json());
    }

    #[test]
    fn codec_rejects_failed_truncated_and_versioned_garbage() {
        let mut failed = fat_report();
        failed.outcome =
            RunOutcome::Failed(sim_ooo::SimError::CycleBudgetExceeded { cycle: 1, budget: 1 });
        assert!(encode_report(&failed).is_err());

        let payload = encode_report(&fat_report()).unwrap();
        assert!(decode_report(&payload[..payload.len() - 1]).unwrap_err().contains("truncated"));
        assert!(decode_report(&payload[1..]).is_err(), "bad magic");
        let mut extra = payload.clone();
        extra.push(0);
        assert!(decode_report(&extra).unwrap_err().contains("trailing"));
        let mut vers = payload;
        vers[4] = 99;
        assert!(decode_report(&vers).unwrap_err().contains("version"));
    }

    #[test]
    fn cache_key_separates_config_program_and_version() {
        let wl = Benchmark::Hj2.build(None, SizeClass::Test, 42);
        let dvr = SimConfig::new(Technique::Dvr).with_max_instructions(10_000);
        let base = SimConfig::new(Technique::Baseline).with_max_instructions(10_000);
        let k1 = cache_key(&wl, &dvr, None);
        assert_eq!(k1, cache_key(&wl, &dvr, None), "deterministic");
        assert_ne!(k1, cache_key(&wl, &base, None), "config separates");
        assert_ne!(
            k1,
            cache_key(&wl, &dvr, Some(&SampleConfig::default())),
            "sampling plan separates"
        );
        let other = Benchmark::Hj2.build(None, SizeClass::Test, 43);
        assert_ne!(k1, cache_key(&other, &dvr, None), "data seed separates");
    }

    #[test]
    fn runner_computes_and_summarizes_a_real_cell() {
        let runner = DvrSweepRunner::new(None);
        let cell = SweepCell {
            bench: Benchmark::Hj2,
            input: None,
            technique: Technique::Baseline,
            size: SizeClass::Test,
            seed: 42,
            instrs: 5_000,
        };
        let payload = runner.run(&cell.key()).unwrap();
        let json = runner.summarize(&cell.key(), &payload).unwrap();
        assert!(json.contains("\"workload\":\"HJ2\""), "{json}");
        assert!(json.contains("\"outcome\":\"complete\""), "{json}");
        assert!(json.contains("\"host_seconds\":0.000000"), "{json}");
        assert!(runner.cache_key(&cell.key()).is_some());
        assert!(runner.worker_argv(&cell.key()).is_none(), "no exe configured");
        // Same cell twice -> byte-identical payload (cacheable).
        assert_eq!(runner.run(&cell.key()).unwrap(), payload);
    }
}
