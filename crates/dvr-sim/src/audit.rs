//! The static-vs-dynamic Discovery audit.
//!
//! Closes the loop between `sim-lint`'s static DVR coverage predictor and
//! the engine's actual Discovery decisions: run the static analyzer over a
//! benchmark's program, run the simulator with DVR event tracing on, and
//! diff the two views. Every disagreement becomes a typed [`Divergence`];
//! the audit then tries to *explain* each one from the known, documented
//! gaps between the static model and the dynamics (bimodal inner-loop
//! shadowing, detector state persisting across loop invocations, data that
//! happens to stride, conditional chains). A divergence with no
//! justification is a bug in one of the two sides — the audit suite pins
//! all thirteen benchmarks at zero unexplained.

use dvr_core::PcSummary;
use sim_isa::FxHashMap;
use sim_lint::{
    analyze_addresses_with, analyze_deps, analyze_intervals, find_loops, predict_coverage,
    AddrClass, Cfg, CoveragePrediction, DefUseGraph, PredictedChain, SkipReason,
};
use workloads::{Benchmark, SizeClass};

use crate::config::{SimConfig, Technique};
use crate::runner::simulate;

/// The four ways static prediction and dynamic observation can disagree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivergenceKind {
    /// Static predicted a spawn; the engine never vectorized that load.
    MissedStride,
    /// The engine vectorized a load static predicted it would not.
    SpuriousVectorization,
    /// Both agree on the chain, but the dependent-load depth differs.
    ChainDepthMismatch,
    /// The observed stride contradicts the static affine classification —
    /// the analyzer's region-disjointness (alias) assumption did not hold.
    AliasUnsound,
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DivergenceKind::MissedStride => "missed-stride",
            DivergenceKind::SpuriousVectorization => "spurious-vectorization",
            DivergenceKind::ChainDepthMismatch => "chain-depth-mismatch",
            DivergenceKind::AliasUnsound => "alias-unsound",
        })
    }
}

/// A typed explanation for a divergence: a known, documented gap between
/// the static model and the engine's dynamics. Anything the audit cannot
/// justify with one of these counts as *unexplained* and fails the suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Justification {
    /// The trigger never reached detector confidence inside the ROI (too
    /// few dynamic iterations, or the region of interest ended first).
    NoTriggerInRoi,
    /// Every discovery pass on this trigger switched to a more-inner
    /// striding load before the loop closed.
    ShadowedDynamically,
    /// Discovery ran out of budget on this trigger (very long iterations).
    DiscoveryAborted,
    /// Statically shadowed by an inner loop, but the inner loop's dynamic
    /// trip count is bimodal — invocations with fewer than two iterations
    /// let the outer trigger survive discovery.
    BimodalShadow,
    /// Statically too few iterations per invocation, but the stride
    /// detector's state persists across invocations of the same loop, so
    /// confidence (and a spawn) still built up.
    WarmDetectorAcrossInvocations,
    /// A predicted detector-slot conflict did not materialize dynamically
    /// (the conflicting loads' episodes did not interleave).
    SlotConflictResolved,
    /// A statically irregular or pointer-chasing load whose *data* happened
    /// to produce a constant stride (e.g. an identity-ish index array).
    DataCoincidentStride,
    /// The traced discovery iteration took a branch path that skipped part
    /// of the static (may-analysis) chain.
    ConditionalChainPruned,
    /// The static chain depth saturated at
    /// [`MAX_CHASE_DEPTH`](sim_lint::MAX_CHASE_DEPTH) because the chain is
    /// loop-carried (`p = *p`-style), while Discovery's taint tracker only
    /// ever observes one iteration and reports the per-iteration depth.
    LoopCarriedDepthSaturated,
}

impl std::fmt::Display for Justification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Justification::NoTriggerInRoi => "no-trigger-in-roi",
            Justification::ShadowedDynamically => "shadowed-dynamically",
            Justification::DiscoveryAborted => "discovery-aborted",
            Justification::BimodalShadow => "bimodal-shadow",
            Justification::WarmDetectorAcrossInvocations => "warm-detector-across-invocations",
            Justification::SlotConflictResolved => "slot-conflict-resolved",
            Justification::DataCoincidentStride => "data-coincident-stride",
            Justification::ConditionalChainPruned => "conditional-chain-pruned",
            Justification::LoopCarriedDepthSaturated => "loop-carried-depth-saturated",
        })
    }
}

/// One static/dynamic disagreement, with its (attempted) explanation.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// What kind of disagreement.
    pub kind: DivergenceKind,
    /// The static load / dynamic trigger pc it concerns.
    pub pc: usize,
    /// Human-readable specifics (strides, depths, counts).
    pub detail: String,
    /// The typed explanation, or `None` = unexplained (a bug).
    pub justification: Option<Justification>,
}

/// The audit result for one benchmark.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Benchmark name.
    pub bench: String,
    /// Input seed used for both sides.
    pub seed: u64,
    /// ROI length of the traced run.
    pub instrs: u64,
    /// Natural loops found statically.
    pub loops: usize,
    /// The static prediction.
    pub chains: Vec<PredictedChain>,
    /// Dynamic per-trigger-pc summaries, pc-sorted.
    pub dynamic: Vec<(usize, PcSummary)>,
    /// Every disagreement found.
    pub divergences: Vec<Divergence>,
}

impl AuditReport {
    /// Divergences with no typed justification.
    pub fn unexplained(&self) -> usize {
        self.divergences.iter().filter(|d| d.justification.is_none()).count()
    }

    /// Whether every divergence is explained.
    pub fn is_clean(&self) -> bool {
        self.unexplained() == 0
    }

    /// Deterministic multi-line report (the golden-pinned format).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let expected = self.chains.iter().filter(|c| c.expect_spawn).count();
        let _ = writeln!(
            s,
            "audit {}: {} loops, {} static roots, {} expected spawns",
            self.bench,
            self.loops,
            self.chains.len(),
            expected
        );
        let _ = writeln!(s, "static chains:");
        for c in &self.chains {
            // Exact count when the walk proved one, interval bounds when
            // only the abstract interpretation could bracket it.
            let trips = match (c.trip_count, c.trip_bounds) {
                (Some(t), _) => t.to_string(),
                (None, Some((lo, hi))) => format!("[{lo},{hi}]"),
                (None, None) => "?".to_string(),
            };
            let verdict = match &c.skip {
                None => "spawn".to_string(),
                Some(r) => format!("skip({r})"),
            };
            let _ = writeln!(
                s,
                "  pc={} stride={} depth={} deps={:?} trips={} aliases={} -> {}",
                c.stride_pc,
                c.stride,
                c.chain_depth,
                c.dependents,
                trips,
                c.alias_edges.len(),
                verdict
            );
        }
        let _ = writeln!(s, "dynamic:");
        for (pc, d) in &self.dynamic {
            let mut deps: Vec<(usize, u8)> =
                d.dep_loads.iter().map(|(&p, &dep)| (p, dep)).collect();
            deps.sort_unstable();
            let _ = writeln!(
                s,
                "  pc={pc}: disc={} chains={} spawns={} ndm={} covered={} nodep={} \
                 aborts={} sw={}/{} strides={:?} deps={:?}",
                d.discoveries,
                d.chains,
                d.spawns,
                d.nested_spawns,
                d.covered_skips,
                d.no_dep_chain,
                d.aborts,
                d.switched_away,
                d.switched_to,
                d.strides,
                deps
            );
        }
        let _ = writeln!(
            s,
            "divergences: {} total, {} unexplained",
            self.divergences.len(),
            self.unexplained()
        );
        for d in &self.divergences {
            let j =
                d.justification.map(|j| j.to_string()).unwrap_or_else(|| "UNEXPLAINED".to_string());
            let _ = writeln!(s, "  [{}] pc={} {} :: {}", d.kind, d.pc, d.detail, j);
        }
        let _ = writeln!(s, "{}", if self.is_clean() { "PASS" } else { "FAIL" });
        s
    }

    /// Flat JSON object for `dvrsim audit --json` (hand-rolled, like
    /// [`SimReport::to_json`](crate::SimReport::to_json)).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let expected = self.chains.iter().filter(|c| c.expect_spawn).count();
        let spawned_pcs = self.dynamic.iter().filter(|(_, d)| d.spawns > 0).count();
        let mut s = format!(
            concat!(
                "{{\"bench\":\"{}\",\"seed\":{},\"instrs\":{},\"loops\":{},",
                "\"static_roots\":{},\"expected_spawns\":{},\"dynamic_spawn_pcs\":{},",
                "\"divergences\":["
            ),
            self.bench,
            self.seed,
            self.instrs,
            self.loops,
            self.chains.len(),
            expected,
            spawned_pcs,
        );
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let j =
                d.justification.map(|j| format!("\"{j}\"")).unwrap_or_else(|| "null".to_string());
            let _ = write!(
                s,
                "{{\"kind\":\"{}\",\"pc\":{},\"justification\":{},\"detail\":\"{}\"}}",
                d.kind,
                d.pc,
                j,
                d.detail.replace('\\', "\\\\").replace('"', "\\\""),
            );
        }
        let _ = write!(s, "],\"unexplained\":{}}}", self.unexplained());
        s
    }
}

/// Runs the full audit for one benchmark: static prediction, traced DVR
/// simulation, and the diff.
pub fn audit_benchmark(bench: Benchmark, size: SizeClass, seed: u64, instrs: u64) -> AuditReport {
    let wl = bench.build(None, size, seed);
    let program = wl.prog.instrs().to_vec();

    // Static side. The interval analysis sees the workload's initial
    // memory image so read-only-region content bounds (and hence trip
    // bounds for loops bounded by loaded values) are available.
    let cfg = Cfg::build(&program);
    let dfg = DefUseGraph::build(&cfg, &program);
    let loops = find_loops(&cfg, &program);
    let intervals = analyze_intervals(&wl.prog, Some(&wl.mem));
    let addr = analyze_addresses_with(&cfg, &program, &dfg, &loops, Some(&intervals));
    let deps = analyze_deps(&addr, &loops);
    let prediction = predict_coverage(&cfg, &program, &loops, &addr, &deps);

    // Dynamic side.
    let sim_cfg = SimConfig::new(Technique::Dvr).with_max_instructions(instrs).with_dvr_trace(true);
    let report = simulate(&wl, &sim_cfg);
    let summary = report.dvr_trace.as_ref().map(|t| t.summarize()).unwrap_or_default();
    let mut dynamic: Vec<(usize, PcSummary)> =
        summary.iter().map(|(&pc, s)| (pc, s.clone())).collect();
    dynamic.sort_by_key(|&(pc, _)| pc);

    let divergences = diff(&prediction, &addr, &summary);
    AuditReport {
        bench: wl.name,
        seed,
        instrs,
        loops: loops.len(),
        chains: prediction.chains,
        dynamic,
        divergences,
    }
}

/// Diffs the static prediction against the dynamic summary and classifies
/// every disagreement.
fn diff(
    prediction: &CoveragePrediction,
    addr: &sim_lint::AddrAnalysis,
    dynamic: &FxHashMap<usize, PcSummary>,
) -> Vec<Divergence> {
    let mut out = Vec::new();

    for c in &prediction.chains {
        let d = dynamic.get(&c.stride_pc);
        let spawned = d.is_some_and(|s| s.spawns > 0 || s.covered_skips > 0);
        let discovered = d.is_some_and(|s| s.discoveries > 0 || s.switched_to > 0);

        if c.expect_spawn && !spawned {
            let justification = match d {
                _ if !discovered => Some(Justification::NoTriggerInRoi),
                Some(s) if s.switched_away > 0 && s.chains == 0 => {
                    Some(Justification::ShadowedDynamically)
                }
                Some(s) if s.aborts > 0 && s.chains == 0 => Some(Justification::DiscoveryAborted),
                Some(s) if s.no_dep_chain > 0 => Some(Justification::ConditionalChainPruned),
                _ => None,
            };
            let detail = match d {
                None => "never discovered".to_string(),
                Some(s) => format!(
                    "disc={} chains={} nodep={} aborts={} sw-away={}",
                    s.discoveries, s.chains, s.no_dep_chain, s.aborts, s.switched_away
                ),
            };
            out.push(Divergence {
                kind: DivergenceKind::MissedStride,
                pc: c.stride_pc,
                detail,
                justification,
            });
        }

        if !c.expect_spawn && spawned {
            let justification = match c.skip {
                Some(SkipReason::ShadowedByInner { .. }) => Some(Justification::BimodalShadow),
                Some(SkipReason::TooFewIterations { .. }) => {
                    Some(Justification::WarmDetectorAcrossInvocations)
                }
                Some(SkipReason::DetectorSlotConflict { .. }) => {
                    Some(Justification::SlotConflictResolved)
                }
                Some(SkipReason::NoDependentLoads) | None => None,
            };
            let skip = c.skip.map(|r| r.to_string()).unwrap_or_default();
            let spawns = d.map_or(0, |s| s.spawns + s.covered_skips);
            out.push(Divergence {
                kind: DivergenceKind::SpuriousVectorization,
                pc: c.stride_pc,
                detail: format!("static skip({skip}), dynamic spawns={spawns}"),
                justification,
            });
        }

        if let Some(s) = d {
            // Depth comparison: only meaningful when both sides saw a chain.
            if s.chains > 0 && !c.dependents.is_empty() {
                let dyn_depth = s.dep_loads.values().copied().max().unwrap_or(0) as usize;
                if dyn_depth != c.chain_depth {
                    let justification = if dyn_depth >= c.chain_depth {
                        None // deeper than the static may-analysis: unsound
                    } else if c.chain_depth == sim_lint::MAX_CHASE_DEPTH {
                        Some(Justification::LoopCarriedDepthSaturated)
                    } else {
                        Some(Justification::ConditionalChainPruned)
                    };
                    out.push(Divergence {
                        kind: DivergenceKind::ChainDepthMismatch,
                        pc: c.stride_pc,
                        detail: format!("static={} dynamic={}", c.chain_depth, dyn_depth),
                        justification,
                    });
                }
            }
            // Stride comparison: the detector contradicting the static
            // affine stride means the analyzer's alias/invariance
            // assumptions broke.
            if !s.strides.is_empty() && !s.strides.contains(&c.stride) {
                out.push(Divergence {
                    kind: DivergenceKind::AliasUnsound,
                    pc: c.stride_pc,
                    detail: format!("static stride={} dynamic strides={:?}", c.stride, s.strides),
                    justification: None,
                });
            }
        }
    }

    // Dynamic triggers the static prediction has no root for.
    let mut extra: Vec<usize> = dynamic
        .iter()
        .filter(|(pc, s)| {
            (s.spawns > 0 || s.covered_skips > 0) && prediction.chain_at(**pc).is_none()
        })
        .map(|(&pc, _)| pc)
        .collect();
    extra.sort_unstable();
    for pc in extra {
        let s = &dynamic[&pc];
        let class = addr.mem_op_at(pc).map(|m| m.class);
        let justification = match class {
            Some(AddrClass::PointerChase { .. }) | Some(AddrClass::Irregular) => {
                Some(Justification::DataCoincidentStride)
            }
            _ => None,
        };
        let class_str =
            class.map(|c| c.to_string()).unwrap_or_else(|| "not-a-static-load".to_string());
        out.push(Divergence {
            kind: DivergenceKind::SpuriousVectorization,
            pc,
            detail: format!("static class {class_str}, dynamic spawns={}", s.spawns),
            justification,
        });
    }

    out.sort_by_key(|d| (d.pc, d.kind as usize));
    out
}
