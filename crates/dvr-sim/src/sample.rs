//! Sampled simulation: wires the [`sim_sample`] driver into the
//! technique/report facade.
//!
//! [`simulate_sampled`] is the sampled counterpart of
//! [`simulate`](crate::simulate): same workload, same [`SimConfig`], but
//! only the seeded detailed intervals pay cycle-level cost — the rest of
//! the region of interest is covered by the functional fast-forward
//! executor with cache and branch-predictor warming. The headline `ipc`
//! becomes the mean of per-interval IPCs and the report carries a
//! [`SamplingSummary`] with the variance and 95% confidence interval.

use sim_ooo::{RunaheadEngine, SimError};
use sim_sample::{run_sampled, Placement, SampleConfig, SampleError};
use workloads::Workload;

use crate::config::{SimConfig, Technique};
use crate::report::{EngineSummary, RunOutcome, SamplingSummary, SimReport};

/// Builds a fresh runahead engine for one detailed interval, mirroring the
/// technique dispatch of [`simulate`](crate::simulate) (including the
/// Figure 8 ablation overrides).
///
/// The sampling driver constructs a new engine per detailed interval, so
/// engine state — including DVR's runahead subthread — quiesces (is
/// dropped) cleanly at every interval boundary.
pub fn engine_factory(cfg: &SimConfig) -> Box<dyn RunaheadEngine> {
    use dvr_core::{DvrConfig, DvrEngine, OracleEngine, PreEngine, VrEngine};
    match cfg.technique {
        Technique::Baseline | Technique::Imp => Box::new(sim_ooo::NullEngine),
        Technique::Pre => Box::new(PreEngine::default()),
        Technique::Vr => Box::new(VrEngine::default()),
        Technique::Dvr | Technique::DvrOffload | Technique::DvrDiscovery => {
            let dcfg = match cfg.technique {
                Technique::DvrOffload => DvrConfig { discovery: false, nested: false, ..cfg.dvr },
                Technique::DvrDiscovery => DvrConfig { nested: false, ..cfg.dvr },
                _ => cfg.dvr,
            };
            Box::new(DvrEngine::new(dcfg))
        }
        Technique::Oracle => Box::new(OracleEngine::new()),
    }
}

fn failed(e: SampleError) -> RunOutcome {
    RunOutcome::Failed(match e {
        SampleError::Sim(e) => e,
        // A fast-forward fault is the same malformed-program condition the
        // detailed core reports, just caught outside a cycle loop.
        SampleError::Exec(source) => SimError::ExecFault { pc: 0, cycle: 0, source },
        SampleError::Config(msg) => {
            SimError::Panic { message: format!("invalid sample config: {msg}") }
        }
    })
}

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::Systematic => "systematic",
        Placement::Random => "random",
    }
}

/// Runs one workload sampled under one configuration and returns a report.
///
/// The region of interest is [`SimConfig::max_instructions`] — it
/// overrides whatever `scfg` carries, so exact and sampled runs of the
/// same `SimConfig` always cover the same region. In the returned report:
///
/// - `ipc` is the mean of per-interval IPCs, `mlp` the mean of
///   per-interval MLPs;
/// - `core`/`mem` counters cover detailed execution only (functional
///   warming contributes no demand traffic by construction);
/// - `simulated_instructions` is the total instructions retired across
///   the region (fast-forward + detailed), the honest numerator for
///   [`SimReport::host_minstr_per_sec`];
/// - `sampling` carries the per-interval statistics
///   ([`SamplingSummary`]).
///
/// Engine activity counters reset with each interval's fresh engine, so
/// [`EngineSummary`] reports only a detail line for sampled runs.
///
/// Like [`simulate`](crate::simulate), failures come back as data: a
/// report with [`RunOutcome::Failed`] and zeroed statistics.
pub fn simulate_sampled(workload: &Workload, cfg: &SimConfig, scfg: &SampleConfig) -> SimReport {
    let t0 = std::time::Instant::now();
    let scfg = scfg.with_max_instructions(cfg.max_instructions);
    let result = run_sampled(&workload.prog, &workload.mem, cfg.core, cfg.hierarchy, &scfg, || {
        engine_factory(cfg)
    });
    let mut report = SimReport {
        technique: cfg.technique,
        workload: workload.name.clone(),
        core: Default::default(),
        mem: Default::default(),
        ipc: 0.0,
        mlp: 0.0,
        simulated_instructions: 0,
        host_seconds: 0.0,
        sampling: None,
        engine: EngineSummary::default(),
        outcome: RunOutcome::Complete,
        sanitizer: None,
        dvr_trace: None,
    };
    match result {
        Ok(run) => {
            let r = &run.report;
            report.ipc = r.ipc_mean;
            report.mlp = r.mlp_mean;
            report.simulated_instructions = r.total_retired;
            report.core = run.core;
            report.mem = run.mem;
            report.sampling = Some(SamplingSummary {
                intervals: r.interval_count(),
                interval_len: scfg.interval,
                warmup_len: scfg.warmup,
                period: scfg.period,
                placement: placement_name(scfg.placement),
                seed: scfg.seed,
                ipc_mean: r.ipc_mean,
                ipc_variance: r.ipc_variance,
                ipc_ci95: r.ipc_ci95,
                mlp_mean: r.mlp_mean,
                detailed_instructions: r.detailed_instructions,
                warmup_instructions: r.warmup_instructions,
                ffwd_instructions: r.ffwd_instructions,
            });
            report.engine.detail = format!(
                "sampled: {} intervals of {} instrs, fresh engine per interval",
                r.interval_count(),
                scfg.interval
            );
        }
        Err(e) => report.outcome = failed(e),
    }
    report.host_seconds = t0.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Benchmark, SizeClass};

    fn scfg() -> SampleConfig {
        SampleConfig::default().with_interval(2_000).with_warmup(1_000).with_period(20_000)
    }

    #[test]
    fn sampled_report_carries_statistics() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(200_000);
        let r = simulate_sampled(&wl, &cfg, &scfg());
        assert!(r.outcome.is_complete(), "{:?}", r.outcome);
        let s = r.sampling.as_ref().expect("sampling section");
        assert!(s.intervals >= 2, "{s:?}");
        assert!(r.ipc > 0.0 && (r.ipc - s.ipc_mean).abs() < 1e-12);
        assert!(s.ipc_ci95.is_finite());
        assert!(r.simulated_instructions >= s.detailed_instructions + s.warmup_instructions);
        assert!(r.to_json().contains("\"sampling\":{"));
    }

    #[test]
    fn sampled_run_is_deterministic_and_far_cheaper_in_detail() {
        let wl = Benchmark::Camel.build(None, SizeClass::Test, 3);
        let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(200_000);
        let a = simulate_sampled(&wl, &cfg, &scfg());
        let b = simulate_sampled(&wl, &cfg, &scfg());
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.sampling, b.sampling);
        // Detailed execution covers a small fraction of the region.
        let s = a.sampling.unwrap();
        assert!(s.detailed_instructions + s.warmup_instructions < a.simulated_instructions / 2);
    }

    #[test]
    fn sampled_ci_contains_exact_ipc() {
        // Small size: the statistical contract is tuned for real working
        // sets (the tiny Test inputs are all transient, which no sampling
        // regime represents well).
        let wl = Benchmark::NasIs.build(None, SizeClass::Small, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(200_000);
        let exact = crate::simulate(&wl, &cfg);
        let sampled = simulate_sampled(&wl, &cfg, &scfg());
        let s = sampled.sampling.as_ref().unwrap();
        assert!(
            (exact.ipc - s.ipc_mean).abs() <= s.ipc_ci95,
            "exact {} outside sampled {} +/- {}",
            exact.ipc,
            s.ipc_mean,
            s.ipc_ci95
        );
    }

    #[test]
    fn invalid_config_comes_back_as_failed_outcome() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(50_000);
        let r = simulate_sampled(&wl, &cfg, &SampleConfig::default().with_interval(0));
        assert_eq!(r.outcome.kind(), "panic");
        assert!(r.outcome.error().unwrap().to_string().contains("sample config"));
        assert!(r.sampling.is_none());
    }

    #[test]
    fn engine_factory_matches_technique() {
        for t in [Technique::Baseline, Technique::Pre, Technique::Vr, Technique::Dvr] {
            // Factories must be constructible repeatedly (one per interval).
            let cfg = SimConfig::new(t);
            let _ = engine_factory(&cfg);
            let _ = engine_factory(&cfg);
        }
    }
}
