//! Sampled simulation: wires the [`sim_sample`] checkpoint-parallel
//! pipeline into the technique/report facade.
//!
//! [`simulate_sampled`] is the sampled counterpart of
//! [`simulate`](crate::simulate): same workload, same [`SimConfig`], but
//! only the seeded detailed intervals pay cycle-level cost — the rest of
//! the region of interest is covered by the functional fast-forward
//! executor with cache and branch-predictor warming. The headline `ipc`
//! becomes the mean of per-interval IPCs and the report carries a
//! [`SamplingSummary`] with the variance and 95% confidence interval.
//!
//! Because each period is measured from its own checkpoint, the measure
//! phase fans out: [`simulate_sampled_threads`] dispatches periods
//! across in-process worker threads, and
//! [`measure_periods_via_workers`] dispatches them to spawned
//! `dvrsim sample-worker` processes speaking the integer JSON line
//! protocol. All paths merge through [`sim_sample::merge_periods`], so
//! the resulting reports are byte-identical (modulo wall-clock fields).

use std::path::Path;

use sim_ooo::{RunaheadEngine, SimError};
use sim_sample::{
    emit_checkpoints, measure_period, merge_periods, EmitResult, PeriodCheckpoint, PeriodResult,
    Placement, SampleConfig, SampleError, SampledRun,
};
use workloads::Workload;

use crate::config::{SimConfig, Technique};
use crate::report::{EngineSummary, RunOutcome, SamplingSummary, SimReport};
use crate::runner::try_parallel_map;

/// Builds a fresh runahead engine for one detailed interval, mirroring the
/// technique dispatch of [`simulate`](crate::simulate) (including the
/// Figure 8 ablation overrides).
///
/// The sampling driver constructs a new engine per detailed interval, so
/// engine state — including DVR's runahead subthread — quiesces (is
/// dropped) cleanly at every interval boundary.
pub fn engine_factory(cfg: &SimConfig) -> Box<dyn RunaheadEngine> {
    use dvr_core::{DvrConfig, DvrEngine, OracleEngine, PreEngine, VrEngine};
    match cfg.technique {
        Technique::Baseline | Technique::Imp => Box::new(sim_ooo::NullEngine),
        Technique::Pre => Box::new(PreEngine::default()),
        Technique::Vr => Box::new(VrEngine::default()),
        Technique::Dvr | Technique::DvrOffload | Technique::DvrDiscovery => {
            let dcfg = match cfg.technique {
                Technique::DvrOffload => DvrConfig { discovery: false, nested: false, ..cfg.dvr },
                Technique::DvrDiscovery => DvrConfig { nested: false, ..cfg.dvr },
                _ => cfg.dvr,
            };
            Box::new(DvrEngine::new(dcfg))
        }
        Technique::Oracle => Box::new(OracleEngine::new()),
    }
}

fn failed(e: SampleError) -> RunOutcome {
    RunOutcome::Failed(match e {
        SampleError::Sim(e) => e,
        // A fast-forward fault is the same malformed-program condition the
        // detailed core reports, just caught outside a cycle loop.
        SampleError::Exec(source) => SimError::ExecFault { pc: 0, cycle: 0, source },
        SampleError::Config(msg) => {
            SimError::Panic { message: format!("invalid sample config: {msg}") }
        }
        SampleError::Checkpoint(msg) => {
            SimError::Panic { message: format!("bad period checkpoint: {msg}") }
        }
        SampleError::Worker(msg) => {
            SimError::Panic { message: format!("sample worker failed: {msg}") }
        }
    })
}

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::Systematic => "systematic",
        Placement::Random => "random",
    }
}

/// Phase 1 for one workload: runs the functional fast-forward pass and
/// emits every period checkpoint.
///
/// The emit phase is technique-independent (warming touches only cache
/// tags and predictor tables), so one [`EmitResult`] can seed the
/// measure phase of every technique sharing the workload, region, and
/// sampling configuration — the functional pass is paid once, not once
/// per technique.
///
/// # Errors
///
/// Propagates [`sim_sample::emit_checkpoints`] failures.
pub fn sample_emit(
    workload: &Workload,
    cfg: &SimConfig,
    scfg: &SampleConfig,
) -> Result<EmitResult, SampleError> {
    let scfg = scfg.with_max_instructions(cfg.max_instructions);
    emit_checkpoints(&workload.prog, &workload.mem, cfg.hierarchy, &scfg)
}

/// Phase 2 in-process: measures every emitted checkpoint on up to
/// `threads` worker threads (0 = all available cores).
///
/// Work is distributed by [`try_parallel_map`]'s atomic work-stealing
/// index; results come back in period order regardless of which thread
/// measured what, so the downstream merge is deterministic.
///
/// # Errors
///
/// The first period failure ([`SampleError`]); a panicking cell surfaces
/// as [`SampleError::Worker`].
pub fn measure_emitted(
    workload: &Workload,
    cfg: &SimConfig,
    scfg: &SampleConfig,
    checkpoints: &[PeriodCheckpoint],
    threads: usize,
) -> Result<Vec<PeriodResult>, SampleError> {
    let scfg = scfg.with_max_instructions(cfg.max_instructions);
    let results = try_parallel_map(checkpoints.len(), threads, |i| {
        measure_period(
            &workload.prog,
            &workload.mem,
            cfg.core,
            cfg.hierarchy,
            &scfg,
            &checkpoints[i],
            || engine_factory(cfg),
        )
    });
    let mut periods = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(Ok(p)) => periods.push(p),
            Ok(Err(e)) => return Err(e),
            Err(cell) => return Err(SampleError::Worker(cell.to_string())),
        }
    }
    Ok(periods)
}

/// Runs one workload sampled with the measure phase fanned across
/// `threads` in-process workers, returning the merged [`SampledRun`].
///
/// `threads == 1` runs inline and is the sequential reference; every
/// other value produces a bit-identical result.
///
/// # Errors
///
/// The first emit or measure failure ([`SampleError`]).
pub fn run_sampled_threads(
    workload: &Workload,
    cfg: &SimConfig,
    scfg: &SampleConfig,
    threads: usize,
) -> Result<SampledRun, SampleError> {
    let emit = sample_emit(workload, cfg, scfg)?;
    let periods = measure_emitted(workload, cfg, scfg, &emit.checkpoints, threads)?;
    Ok(merge_periods(periods, emit.total_retired, emit.halted))
}

/// Phase 2 out-of-process: measures checkpoints by spawning worker
/// processes, at most `jobs` at a time (0 is treated as 1).
///
/// Each checkpoint is written to `scratch_dir` as `period_NNNNN.ckpt`
/// and a worker is spawned as `worker_argv ++ ["--checkpoint", path]`;
/// the worker prints one [`PeriodResult`] JSON line on stdout. Workers
/// are reaped with `wait_with_output` (never leaving zombies and never
/// blocking on a dead child), every spawned worker in a batch is reaped
/// before an error is returned, and checkpoint files are removed on all
/// paths. A worker that dies — killed, crashed, or printing garbage —
/// surfaces as a typed [`SampleError::Worker`], not a hang.
///
/// # Errors
///
/// [`SampleError::Worker`] on spawn failure, non-zero worker exit, or an
/// unparseable/mismatched result line.
pub fn measure_periods_via_workers(
    worker_argv: &[String],
    checkpoints: &[PeriodCheckpoint],
    jobs: usize,
    scratch_dir: &Path,
) -> Result<Vec<PeriodResult>, SampleError> {
    let (exe, fixed_args) = worker_argv
        .split_first()
        .ok_or_else(|| SampleError::Worker("empty worker command line".to_string()))?;
    std::fs::create_dir_all(scratch_dir).map_err(|e| {
        SampleError::Worker(format!("cannot create scratch dir {}: {e}", scratch_dir.display()))
    })?;

    let mut files = Vec::with_capacity(checkpoints.len());
    let mut write_err = None;
    for ck in checkpoints {
        let path = scratch_dir.join(format!("period_{:05}.ckpt", ck.index));
        if let Err(e) = std::fs::write(&path, ck.to_bytes()) {
            write_err = Some(SampleError::Worker(format!(
                "cannot write checkpoint {}: {e}",
                path.display()
            )));
            break;
        }
        files.push(path);
    }

    let result = match write_err {
        Some(e) => Err(e),
        None => run_worker_batches(exe, fixed_args, checkpoints, &files, jobs.max(1)),
    };
    for path in &files {
        let _ = std::fs::remove_file(path);
    }
    result
}

/// Whether a failed `spawn` is worth one retry: resource-exhaustion
/// errors (EAGAIN, EMFILE/ENFILE, ENOMEM) clear when siblings exit,
/// unlike a missing or non-executable binary.
fn spawn_error_is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted | ErrorKind::OutOfMemory)
        || matches!(e.raw_os_error(), Some(code) if [11, 23, 24, 12].contains(&code))
}

fn run_worker_batches(
    exe: &str,
    fixed_args: &[String],
    checkpoints: &[PeriodCheckpoint],
    files: &[std::path::PathBuf],
    jobs: usize,
) -> Result<Vec<PeriodResult>, SampleError> {
    use std::process::{Command, Stdio};

    let mut periods = Vec::with_capacity(checkpoints.len());
    for batch in checkpoints.iter().zip(files).collect::<Vec<_>>().chunks(jobs) {
        // Spawn the whole batch, then reap the whole batch: a failure in
        // one worker must not leave siblings unwaited.
        let children: Vec<_> = batch
            .iter()
            .map(|(ck, path)| {
                let spawn = || {
                    Command::new(exe)
                        .args(fixed_args)
                        .arg("--checkpoint")
                        .arg(path)
                        .stdin(Stdio::null())
                        .stdout(Stdio::piped())
                        .stderr(Stdio::piped())
                        .spawn()
                };
                // A loaded machine can transiently refuse a fork
                // (EAGAIN/EMFILE); one short backoff usually clears it.
                let child = spawn().or_else(|e| {
                    if spawn_error_is_transient(&e) {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        spawn()
                    } else {
                        Err(e)
                    }
                });
                (ck.index, child)
            })
            .collect();
        let mut batch_err = None;
        for (index, child) in children {
            let out = match child {
                Ok(c) => c.wait_with_output(),
                Err(e) => {
                    batch_err
                        .get_or_insert(SampleError::Worker(format!("period {index}: spawn: {e}")));
                    continue;
                }
            };
            let out = match out {
                Ok(o) => o,
                Err(e) => {
                    batch_err
                        .get_or_insert(SampleError::Worker(format!("period {index}: wait: {e}")));
                    continue;
                }
            };
            if batch_err.is_some() {
                continue;
            }
            if !out.status.success() {
                let stderr = String::from_utf8_lossy(&out.stderr);
                batch_err = Some(SampleError::Worker(format!(
                    "period {index}: worker exited with {}: {}",
                    out.status,
                    stderr.trim().chars().take(300).collect::<String>()
                )));
                continue;
            }
            let stdout = String::from_utf8_lossy(&out.stdout);
            match PeriodResult::from_json(&stdout) {
                Some(p) if p.index == index => periods.push(p),
                Some(p) => {
                    batch_err = Some(SampleError::Worker(format!(
                        "period {index}: worker answered for period {}",
                        p.index
                    )));
                }
                None => {
                    batch_err = Some(SampleError::Worker(format!(
                        "period {index}: unparseable worker output: {:?}",
                        stdout.trim().chars().take(120).collect::<String>()
                    )));
                }
            }
        }
        if let Some(e) = batch_err {
            return Err(e);
        }
    }
    Ok(periods)
}

/// Builds the [`SimReport`] for a sampled result (successful or failed).
///
/// This is the single report-construction path shared by the sequential,
/// thread-parallel, and worker-process drivers, so everything except
/// `host_seconds` (set by the caller from its own clock) is a pure
/// function of the [`SampledRun`] — byte-identical across dispatch
/// modes.
pub fn sampled_report_from(
    workload: &Workload,
    cfg: &SimConfig,
    scfg: &SampleConfig,
    result: Result<SampledRun, SampleError>,
) -> SimReport {
    let scfg = scfg.with_max_instructions(cfg.max_instructions);
    let mut report = SimReport {
        technique: cfg.technique,
        workload: workload.name.clone(),
        core: Default::default(),
        mem: Default::default(),
        ipc: 0.0,
        mlp: 0.0,
        simulated_instructions: 0,
        host_seconds: 0.0,
        sampling: None,
        engine: EngineSummary::default(),
        outcome: RunOutcome::Complete,
        sanitizer: None,
        dvr_trace: None,
        taint_fills: None,
        spec_extents: None,
    };
    match result {
        Ok(run) => {
            let r = &run.report;
            report.ipc = r.ipc_mean;
            report.mlp = r.mlp_mean;
            report.simulated_instructions = r.total_retired;
            report.core = run.core;
            report.mem = run.mem;
            report.sampling = Some(SamplingSummary {
                intervals: r.interval_count(),
                interval_len: scfg.interval,
                warmup_len: scfg.warmup,
                period: scfg.period,
                placement: placement_name(scfg.placement),
                seed: scfg.seed,
                ipc_mean: r.ipc_mean,
                ipc_variance: r.ipc_variance,
                ipc_ci95: r.ipc_ci95,
                mlp_mean: r.mlp_mean,
                detailed_instructions: r.detailed_instructions,
                warmup_instructions: r.warmup_instructions,
                ffwd_instructions: r.ffwd_instructions,
            });
            report.engine.detail = format!(
                "sampled: {} intervals of {} instrs, fresh engine per interval",
                r.interval_count(),
                scfg.interval
            );
        }
        Err(e) => report.outcome = failed(e),
    }
    report
}

/// Runs one workload sampled under one configuration and returns a report.
///
/// The region of interest is [`SimConfig::max_instructions`] — it
/// overrides whatever `scfg` carries, so exact and sampled runs of the
/// same `SimConfig` always cover the same region. In the returned report:
///
/// - `ipc` is the mean of per-interval IPCs, `mlp` the mean of
///   per-interval MLPs;
/// - `core`/`mem` counters cover detailed execution only (functional
///   warming contributes no demand traffic by construction);
/// - `simulated_instructions` is the total instructions retired across
///   the region (fast-forward + detailed), the honest numerator for
///   [`SimReport::host_minstr_per_sec`];
/// - `sampling` carries the per-interval statistics
///   ([`SamplingSummary`]).
///
/// Engine activity counters reset with each interval's fresh engine, so
/// [`EngineSummary`] reports only a detail line for sampled runs.
///
/// Like [`simulate`](crate::simulate), failures come back as data: a
/// report with [`RunOutcome::Failed`] and zeroed statistics.
pub fn simulate_sampled(workload: &Workload, cfg: &SimConfig, scfg: &SampleConfig) -> SimReport {
    simulate_sampled_threads(workload, cfg, scfg, 1)
}

/// Like [`simulate_sampled`], but fanning the measure phase across
/// `threads` in-process workers (0 = all available cores).
///
/// Everything except `host_seconds` is byte-identical to
/// [`simulate_sampled`] for every thread count.
pub fn simulate_sampled_threads(
    workload: &Workload,
    cfg: &SimConfig,
    scfg: &SampleConfig,
    threads: usize,
) -> SimReport {
    let t0 = std::time::Instant::now();
    let result = run_sampled_threads(workload, cfg, scfg, threads);
    let mut report = sampled_report_from(workload, cfg, scfg, result);
    report.host_seconds = t0.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Benchmark, SizeClass};

    fn scfg() -> SampleConfig {
        SampleConfig::default().with_interval(2_000).with_warmup(1_000).with_period(20_000)
    }

    #[test]
    fn sampled_report_carries_statistics() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(200_000);
        let r = simulate_sampled(&wl, &cfg, &scfg());
        assert!(r.outcome.is_complete(), "{:?}", r.outcome);
        let s = r.sampling.as_ref().expect("sampling section");
        assert!(s.intervals >= 2, "{s:?}");
        assert!(r.ipc > 0.0 && (r.ipc - s.ipc_mean).abs() < 1e-12);
        assert!(s.ipc_ci95.is_finite());
        assert!(r.simulated_instructions >= s.detailed_instructions + s.warmup_instructions);
        assert!(r.to_json().contains("\"sampling\":{"));
    }

    #[test]
    fn sampled_run_is_deterministic_and_far_cheaper_in_detail() {
        let wl = Benchmark::Camel.build(None, SizeClass::Test, 3);
        let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(200_000);
        let a = simulate_sampled(&wl, &cfg, &scfg());
        let b = simulate_sampled(&wl, &cfg, &scfg());
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.sampling, b.sampling);
        // Detailed execution covers a small fraction of the region.
        let s = a.sampling.unwrap();
        assert!(s.detailed_instructions + s.warmup_instructions < a.simulated_instructions / 2);
    }

    #[test]
    fn thread_fanout_is_byte_identical_to_sequential() {
        let wl = Benchmark::Bfs.build(Some(workloads::GraphInput::Kr), SizeClass::Test, 2);
        let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(120_000);
        let mut seq = simulate_sampled(&wl, &cfg, &scfg());
        let mut par = simulate_sampled_threads(&wl, &cfg, &scfg(), 4);
        seq.host_seconds = 0.0;
        par.host_seconds = 0.0;
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn sampled_ci_contains_exact_ipc() {
        // Small size: the statistical contract is tuned for real working
        // sets (the tiny Test inputs are all transient, which no sampling
        // regime represents well).
        let wl = Benchmark::NasIs.build(None, SizeClass::Small, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(200_000);
        let exact = crate::simulate(&wl, &cfg);
        let sampled = simulate_sampled(&wl, &cfg, &scfg());
        let s = sampled.sampling.as_ref().unwrap();
        assert!(
            (exact.ipc - s.ipc_mean).abs() <= s.ipc_ci95,
            "exact {} outside sampled {} +/- {}",
            exact.ipc,
            s.ipc_mean,
            s.ipc_ci95
        );
    }

    #[test]
    fn invalid_config_comes_back_as_failed_outcome() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(50_000);
        let r = simulate_sampled(&wl, &cfg, &SampleConfig::default().with_interval(0));
        assert_eq!(r.outcome.kind(), "panic");
        assert!(r.outcome.error().unwrap().to_string().contains("sample config"));
        assert!(r.sampling.is_none());
    }

    #[test]
    fn engine_factory_matches_technique() {
        for t in [Technique::Baseline, Technique::Pre, Technique::Vr, Technique::Dvr] {
            // Factories must be constructible repeatedly (one per interval).
            let cfg = SimConfig::new(t);
            let _ = engine_factory(&cfg);
            let _ = engine_factory(&cfg);
        }
    }

    #[test]
    fn spawn_retry_classifier_separates_transient_from_permanent() {
        use std::io::{Error, ErrorKind};
        // EAGAIN both as a kind and as a raw errno.
        assert!(spawn_error_is_transient(&Error::from(ErrorKind::WouldBlock)));
        assert!(spawn_error_is_transient(&Error::from_raw_os_error(11)));
        // EMFILE: per-process fd table full while a sibling batch drains.
        assert!(spawn_error_is_transient(&Error::from_raw_os_error(24)));
        // A missing or non-executable worker binary never heals itself.
        assert!(!spawn_error_is_transient(&Error::from(ErrorKind::NotFound)));
        assert!(!spawn_error_is_transient(&Error::from(ErrorKind::PermissionDenied)));
    }

    #[test]
    fn missing_worker_binary_fails_without_retry_hang() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(100_000);
        let emit = sample_emit(&wl, &cfg, &scfg()).unwrap();
        let scratch =
            std::env::temp_dir().join(format!("dvrsim-no-exe-worker-{}", std::process::id()));
        let argv = vec!["/nonexistent/dvrsim-worker-binary".to_string()];
        let err = measure_periods_via_workers(&argv, &emit.checkpoints, 2, &scratch)
            .expect_err("unspawnable workers must fail");
        assert!(matches!(err, SampleError::Worker(ref m) if m.contains("spawn")), "{err}");
        let _ = std::fs::remove_dir(&scratch);
    }

    #[test]
    fn dead_worker_surfaces_a_typed_error_without_hanging() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(100_000);
        let emit = sample_emit(&wl, &cfg, &scfg()).unwrap();
        assert!(!emit.checkpoints.is_empty());
        let scratch =
            std::env::temp_dir().join(format!("dvrsim-dead-worker-{}", std::process::id()));
        let argv = vec!["/bin/sh".to_string(), "-c".to_string(), "kill -9 $$".to_string()];
        let err = measure_periods_via_workers(&argv, &emit.checkpoints, 2, &scratch)
            .expect_err("killed workers must fail, not hang");
        assert!(matches!(err, SampleError::Worker(_)), "{err}");
        let _ = std::fs::remove_dir(&scratch);
    }
}
