//! The simulation runner.

use dvr_core::{DvrConfig, DvrEngine, OracleEngine, PreEngine, VrEngine};
use sim_mem::MemoryHierarchy;
use sim_ooo::{NullEngine, OooCore};
use workloads::Workload;

use crate::config::{SimConfig, Technique};
use crate::report::{EngineSummary, SimReport};

/// Runs one workload under one configuration and returns the report.
///
/// The workload is not consumed: its memory image is cloned, so the same
/// built workload can be replayed under every technique (deterministically
/// identical initial state).
pub fn simulate(workload: &Workload, cfg: &SimConfig) -> SimReport {
    let t0 = std::time::Instant::now();
    let mut mem = workload.mem.clone();
    let mut hier = MemoryHierarchy::new(cfg.hierarchy);
    let mut core = OooCore::new(cfg.core);

    let engine_summary = match cfg.technique {
        Technique::Baseline | Technique::Imp => {
            let mut e = NullEngine;
            core.run(&workload.prog, &mut mem, &mut hier, &mut e, cfg.max_instructions);
            EngineSummary::default()
        }
        Technique::Pre => {
            let mut e = PreEngine::default();
            core.run(&workload.prog, &mut mem, &mut hier, &mut e, cfg.max_instructions);
            let s = *e.stats();
            EngineSummary {
                episodes: s.episodes,
                runahead_loads: s.prefetches,
                detail: format!(
                    "pre: {} instrs pre-executed, {} poisoned loads",
                    s.instructions, s.poisoned_loads
                ),
                ..EngineSummary::default()
            }
        }
        Technique::Vr => {
            let mut e = VrEngine::default();
            core.run(&workload.prog, &mut mem, &mut hier, &mut e, cfg.max_instructions);
            let s = *e.stats();
            EngineSummary {
                episodes: s.episodes,
                runahead_loads: s.lane_loads,
                lanes_lost: s.lanes_lost,
                detail: format!(
                    "vr: {} no-stride stalls, {} delayed-termination cycles",
                    s.no_stride_found, s.delayed_termination_cycles
                ),
                ..EngineSummary::default()
            }
        }
        Technique::Dvr | Technique::DvrOffload | Technique::DvrDiscovery => {
            let dcfg = match cfg.technique {
                Technique::DvrOffload => DvrConfig { discovery: false, nested: false, ..cfg.dvr },
                Technique::DvrDiscovery => DvrConfig { nested: false, ..cfg.dvr },
                _ => cfg.dvr,
            };
            let mut e = DvrEngine::new(dcfg);
            core.run(&workload.prog, &mut mem, &mut hier, &mut e, cfg.max_instructions);
            let s = *e.stats();
            EngineSummary {
                episodes: s.episodes,
                runahead_loads: s.lane_loads,
                nested_episodes: s.ndm_episodes,
                detail: format!(
                    "dvr: {} lanes spawned, {} diverged episodes, {} innermost switches, \
                     {} chains without dependent loads",
                    s.lanes_spawned,
                    s.diverged_episodes,
                    s.innermost_switches,
                    s.no_dependent_chain
                ),
                ..EngineSummary::default()
            }
        }
        Technique::Oracle => {
            let mut e = OracleEngine::new();
            core.run(&workload.prog, &mut mem, &mut hier, &mut e, cfg.max_instructions);
            let s = *e.stats();
            EngineSummary {
                detail: format!(
                    "oracle: {} misses hidden, {} natural hits",
                    s.hidden_misses, s.natural_hits
                ),
                ..EngineSummary::default()
            }
        }
    };

    let core_stats = *core.stats();
    let mem_stats = hier.stats().clone();
    let cycles = core_stats.cycles.max(1);
    SimReport {
        technique: cfg.technique,
        workload: workload.name.clone(),
        ipc: core_stats.ipc(),
        mlp: hier.mshr_busy_integral() as f64 / cycles as f64,
        host_seconds: t0.elapsed().as_secs_f64(),
        core: core_stats,
        mem: mem_stats,
        engine: engine_summary,
    }
}

/// Convenience: run one workload under several techniques, sharing the
/// built input.
pub fn simulate_all(workload: &Workload, cfgs: &[SimConfig]) -> Vec<SimReport> {
    cfgs.iter().map(|c| simulate(workload, c)).collect()
}

/// Resolves a user-facing thread-count knob: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        threads
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped OS threads (`0` = all
/// available cores) and returns the results **in index order**.
///
/// Work is distributed by an atomic work-stealing index, so threads that
/// draw short items move on to the next one immediately. Each worker
/// collects `(index, value)` pairs locally — no per-slot locking — and the
/// results are reassembled after the join. With deterministic `f` the
/// output is identical for every thread count, including `threads == 1`,
/// which runs inline without spawning.
///
/// # Panics
///
/// Panics (propagating the payload) if `f` panics on any worker.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in parts.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter().map(|v| v.expect("every index produced exactly once")).collect()
}

/// Like [`simulate_all`], but running configurations on OS threads
/// (simulations are independent and deterministic, so results are identical
/// to the serial version and returned in input order).
///
/// `threads = 0` uses the machine's available parallelism.
pub fn simulate_all_parallel(
    workload: &Workload,
    cfgs: &[SimConfig],
    threads: usize,
) -> Vec<SimReport> {
    parallel_map(cfgs.len(), threads, |i| simulate(workload, &cfgs[i]))
}
#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Benchmark, SizeClass};

    #[test]
    fn baseline_run_produces_sane_numbers() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(30_000));
        assert!(r.ipc > 0.05 && r.ipc < 5.0, "ipc {}", r.ipc);
        assert!(r.core.committed >= 29_000);
        assert!(r.mem.demand_loads > 0);
        assert!(r.mlp >= 0.0);
    }

    #[test]
    fn workload_is_reusable_across_techniques() {
        let wl = Benchmark::Camel.build(None, SizeClass::Test, 2);
        let a = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(20_000));
        let b = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(20_000));
        assert_eq!(a.core.cycles, b.core.cycles, "simulation must be deterministic");
    }

    #[test]
    fn parallel_matches_serial() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 4);
        let cfgs: Vec<SimConfig> = [Technique::Baseline, Technique::Vr, Technique::Dvr]
            .into_iter()
            .map(|t| SimConfig::new(t).with_max_instructions(10_000))
            .collect();
        let serial = simulate_all(&wl, &cfgs);
        let parallel = simulate_all_parallel(&wl, &cfgs, 3);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.core.cycles, p.core.cycles);
            assert_eq!(s.technique, p.technique);
            assert_eq!(s.mem.dram_reads(), p.mem.dram_reads());
        }
    }

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 7, 64] {
            let v = parallel_map(17, threads, |i| i * i);
            assert_eq!(v, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn simulation_reports_host_time() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(30_000));
        assert!(r.host_seconds > 0.0);
        assert!(r.sim_instrs_per_host_second() > 0.0);
    }

    #[test]
    fn dvr_reports_engine_activity() {
        let wl = Benchmark::Camel.build(None, SizeClass::Small, 3);
        let r = simulate(&wl, &SimConfig::new(Technique::Dvr).with_max_instructions(100_000));
        assert!(r.engine.episodes > 0, "DVR must trigger on Camel: {:?}", r.engine);
        assert!(r.engine.runahead_loads > 0);
    }
}
